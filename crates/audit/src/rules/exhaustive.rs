//! `RA04xx` — protocol/WAL variant exhaustiveness.
//!
//! Adding a [`Request`] or [`MutationOp`] variant is a three-file
//! change: the definition, the wire codec, and every dispatcher/replayer
//! that must handle it. `match` exhaustiveness catches the miss only
//! when the handler matches the enum directly; dispatchers that go
//! through a catch-all arm, a decode table, or string dispatch compile
//! fine and fail at runtime. This rule pins the full fan-out: for each
//! configured enum, every variant must be *referenced by name*
//! (`Enum::Variant`) in every configured handler file.
//!
//! * `RA0401` — a variant has no reference in a required handler file;
//! * `RA0402` — the enum definition (or a required handler file) is
//!   missing from the audited set — the configuration rotted.
//!
//! `RA0401` findings anchor to the variant's definition line, so an
//! `audit:allow(RA0401, reason)` sits next to the variant it excuses.

use repsim_check::{Analyzer, Diagnostic};

use super::{path_matches, AllowTracker, Source};
use crate::lexer::{Tok, TokKind};

/// One enum whose variant fan-out is audited.
pub struct EnumConfig {
    /// The enum's name as written in source.
    pub name: &'static str,
    /// File (path suffix) holding `enum <name> { … }`.
    pub defined_in: &'static str,
    /// Files that must reference every variant as `<name>::<variant>`.
    pub handlers: &'static [&'static str],
}

/// Runs the rule for each configured enum.
pub fn check(
    sources: &[Source],
    enums: &[EnumConfig],
    allows: &mut AllowTracker,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for cfg in enums {
        let Some(def_src) = sources
            .iter()
            .find(|s| path_matches(&s.path, cfg.defined_in))
        else {
            out.push(Diagnostic::error(
                "RA0402",
                Analyzer::Audit,
                format!(
                    "enum {} audit: defining file {} is not in the audited set",
                    cfg.name, cfg.defined_in
                ),
            ));
            continue;
        };
        let Some(variants) = variants_of(&def_src.lexed.tokens, cfg.name) else {
            out.push(Diagnostic::error(
                "RA0402",
                Analyzer::Audit,
                format!(
                    "enum {} audit: no `enum {}` definition found in {}",
                    cfg.name, cfg.name, def_src.path
                ),
            ));
            continue;
        };
        for handler in cfg.handlers {
            let Some(h_src) = sources.iter().find(|s| path_matches(&s.path, handler)) else {
                out.push(Diagnostic::error(
                    "RA0402",
                    Analyzer::Audit,
                    format!(
                        "enum {} audit: required handler file {handler} is not in \
                         the audited set",
                        cfg.name
                    ),
                ));
                continue;
            };
            for (variant, def_line) in &variants {
                if references(&h_src.lexed.tokens, cfg.name, variant) {
                    continue;
                }
                if allows.suppressed(def_src, "RA0401", *def_line) {
                    continue;
                }
                out.push(Diagnostic::error(
                    "RA0401",
                    Analyzer::Audit,
                    format!(
                        "{}:{}: variant {}::{} is never referenced in required \
                         handler {} — dispatch/replay there cannot be handling it",
                        def_src.path, def_line, cfg.name, variant, h_src.path
                    ),
                ));
            }
        }
    }
    out
}

/// The variant names (with definition lines) of `enum <name> { … }`, or
/// `None` when no such definition exists in the token stream.
fn variants_of(tokens: &[Tok], name: &str) -> Option<Vec<(String, u32)>> {
    let mut i = 0;
    let open = loop {
        if i + 2 >= tokens.len() {
            return None;
        }
        if tokens[i].is_ident("enum") && tokens[i + 1].is_ident(name) && tokens[i + 2].is_punct('{')
        {
            break i + 2;
        }
        i += 1;
    };
    let mut variants = Vec::new();
    let mut depth = 1usize;
    let mut expect_variant = true;
    let mut j = open + 1;
    while j < tokens.len() && depth > 0 {
        let t = &tokens[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
        } else if depth == 1 {
            if t.is_punct('#') && tokens.get(j + 1).is_some_and(|n| n.is_punct('[')) {
                // Skip `#[attr(...)]` so its idents are not variants.
                j += 2;
                let mut sq = 1usize;
                while j < tokens.len() && sq > 0 {
                    if tokens[j].is_punct('[') {
                        sq += 1;
                    } else if tokens[j].is_punct(']') {
                        sq -= 1;
                    }
                    j += 1;
                }
                continue;
            }
            if t.is_punct(',') {
                expect_variant = true;
            } else if expect_variant && t.kind == TokKind::Ident {
                variants.push((t.text.clone(), t.line));
                expect_variant = false;
            }
        }
        j += 1;
    }
    Some(variants)
}

/// Whether `tokens` contains `<enum_name> :: <variant>`.
fn references(tokens: &[Tok], enum_name: &str, variant: &str) -> bool {
    tokens.windows(4).any(|w| {
        w[0].is_ident(enum_name)
            && w[1].is_punct(':')
            && w[2].is_punct(':')
            && w[3].is_ident(variant)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEF: &str = "crates/x/src/proto.rs";
    const HANDLER: &str = "crates/x/src/server.rs";

    fn cfg() -> EnumConfig {
        EnumConfig {
            name: "Op",
            defined_in: DEF,
            handlers: &["crates/x/src/server.rs"],
        }
    }

    fn run(def_text: &str, handler_text: &str) -> Vec<Diagnostic> {
        let sources = vec![
            Source::new(DEF, def_text),
            Source::new(HANDLER, handler_text),
        ];
        let mut allows = AllowTracker::default();
        check(&sources, &[cfg()], &mut allows)
    }

    #[test]
    fn unhandled_variant_is_ra0401() {
        let ds = run(
            "pub enum Op { Get { k: u32 }, Put(String), Del }",
            "fn h(op: Op) { match op { Op::Get { k } => g(k), Op::Put(s) => p(s), _ => {} } }",
        );
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, "RA0401");
        assert!(ds[0].message.contains("Op::Del"), "{}", ds[0].message);
    }

    #[test]
    fn fully_handled_enum_passes() {
        let ds = run(
            "pub enum Op { Get, Put }",
            "fn h(op: Op) { match op { Op::Get => g(), Op::Put => p() } }",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn attributes_and_payload_fields_are_not_variants() {
        let ds = run(
            "pub enum Op { #[allow(dead_code)] Get { key: u32, val: u64 }, Put }",
            "fn h() { let _ = Op::Get; let _ = Op::Put; }",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn missing_definition_is_ra0402() {
        let ds = run("pub struct Op;", "fn h() {}");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "RA0402");
    }

    #[test]
    fn missing_handler_file_is_ra0402() {
        let sources = vec![Source::new(DEF, "pub enum Op { Get }")];
        let mut allows = AllowTracker::default();
        let ds = check(&sources, &[cfg()], &mut allows);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "RA0402");
        assert!(ds[0].message.contains("server.rs"));
    }

    #[test]
    fn allow_on_variant_definition_suppresses() {
        let ds = run(
            "pub enum Op {\n    Get,\n    // audit:allow(RA0401, replay intentionally drops Legacy)\n    Legacy,\n}",
            "fn h() { let _ = Op::Get; }",
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn references_in_comments_do_not_count() {
        let ds = run(
            "pub enum Op { Get }",
            "// Op::Get is handled elsewhere, honest\nfn h() {}",
        );
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "RA0401");
    }
}
