//! `RA03xx` — diagnostic-code registry consistency.
//!
//! `RS####`/`RA####` codes are a public contract: scripts grep for
//! them, DESIGN.md tables document them, and "never reused for a
//! different meaning" is what makes them stable. This rule keeps the
//! registry ([`crate::codes::REGISTRY`]) and the sources in lockstep:
//!
//! * `RA0301` — a code-shaped literal appears in source but is not
//!   registered (typo, or someone minted a code without shipping it);
//! * `RA0302` — an `Active` registry entry is used nowhere (warning:
//!   either dead registry weight or the feature it documents was lost);
//! * `RA0303` — the registry itself contains a code twice;
//! * `RA0304` — a `Retired` code reappears in source (numbers stay
//!   burned).
//!
//! The registry's own definition file is excluded from the usage scan,
//! otherwise every entry would count as "used" by its registration and
//! `RA0302`/`RA0304` would be vacuous.

use std::collections::BTreeSet;

use repsim_check::{Analyzer, Diagnostic};

use super::{path_matches, AllowTracker, Source};
use crate::codes::{is_code_shaped, spec, Status, REGISTRY};
use crate::lexer::TokKind;

/// The file whose literals register rather than use codes.
const REGISTRY_FILE: &str = "crates/audit/src/codes.rs";

/// Runs `RA0301`/`RA0303`/`RA0304` over `sources`; also `RA0302` when
/// `require_coverage` (workspace mode — fixture runs see too few files
/// for coverage to be meaningful).
pub fn check(
    sources: &[Source],
    require_coverage: bool,
    allows: &mut AllowTracker,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // RA0303: the registry must not register a code twice.
    for (i, a) in REGISTRY.iter().enumerate() {
        if REGISTRY[..i].iter().any(|b| b.code == a.code) {
            out.push(Diagnostic::error(
                "RA0303",
                Analyzer::Audit,
                format!("diagnostic code {} is registered more than once", a.code),
            ));
        }
    }

    let mut used: BTreeSet<&str> = BTreeSet::new();
    for src in sources {
        if path_matches(&src.path, REGISTRY_FILE) {
            continue;
        }
        // Code-shaped string literals plus the codes named by
        // audit:allow directives (a typo'd allow should not pass
        // silently as "unknown directive").
        let lits = src
            .lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str && is_code_shaped(&t.text))
            .map(|t| (t.text.as_str(), t.line, true));
        let allow_refs = src
            .lexed
            .allows
            .iter()
            .map(|a| (a.code.as_str(), a.comment_line, false));
        for (code, line, counts_as_use) in lits.chain(allow_refs) {
            match spec(code) {
                None => {
                    if !allows.suppressed(src, "RA0301", line) {
                        out.push(Diagnostic::error(
                            "RA0301",
                            Analyzer::Audit,
                            format!(
                                "{}:{}: diagnostic code {code} is not in the registry \
                                 (crates/audit/src/codes.rs)",
                                src.path, line
                            ),
                        ));
                    }
                }
                Some(s) if s.status == Status::Retired => {
                    if !allows.suppressed(src, "RA0304", line) {
                        out.push(Diagnostic::error(
                            "RA0304",
                            Analyzer::Audit,
                            format!(
                                "{}:{}: diagnostic code {code} is retired — the number \
                                 is burned and must not be resurrected",
                                src.path, line
                            ),
                        ));
                    }
                }
                Some(s) => {
                    if counts_as_use {
                        used.insert(s.code);
                    }
                }
            }
        }
    }

    if require_coverage {
        for s in REGISTRY {
            if s.status == Status::Active && !used.contains(s.code) {
                out.push(Diagnostic::warning(
                    "RA0302",
                    Analyzer::Audit,
                    format!(
                        "registered active code {} ({}) is used nowhere in the \
                         workspace",
                        s.code, s.description
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, text: &str) -> Vec<Diagnostic> {
        let src = Source::new(path, text);
        let mut allows = AllowTracker::default();
        check(&[src], false, &mut allows)
    }

    #[test]
    fn unregistered_code_is_ra0301() {
        let ds = run("crates/a/src/lib.rs", r#"let c = "RS9901";"#);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "RA0301");
        // audit:allow(RA0301, deliberately unregistered code exercising the rule)
        assert!(ds[0].message.contains("RS9901"));
    }

    #[test]
    fn retired_code_is_ra0304() {
        let ds = run("crates/a/src/lib.rs", r#"let c = "RA0000";"#);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "RA0304");
    }

    #[test]
    fn registered_active_codes_pass() {
        let ds = run(
            "crates/a/src/lib.rs",
            r#"let c = "RS0101"; let d = "RA0501";"#,
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn non_code_shaped_strings_are_ignored() {
        let ds = run(
            "crates/a/src/lib.rs",
            r#"let c = "RS10"; let d = "ABCDEF";"#,
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn registry_file_is_excluded_from_usage_scan() {
        let ds = run(REGISTRY_FILE, r#"retired("RA0000", "reserved")"#);
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn typoed_allow_directive_is_ra0301() {
        let ds = run(
            "crates/a/src/lib.rs",
            "// audit:allow(RA9999, no such rule)\nfn f() {}",
        );
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, "RA0301");
    }

    #[test]
    fn coverage_mode_flags_unused_active_codes() {
        // A single-file workspace uses almost nothing, so coverage mode
        // must warn about (at least) some active code it does not use.
        let src = Source::new("crates/a/src/lib.rs", r#"let c = "RS0101";"#);
        let mut allows = AllowTracker::default();
        let ds = check(&[src], true, &mut allows);
        assert!(ds.iter().any(|d| d.code == "RA0302"));
        assert!(!ds.iter().any(|d| d.message.contains("RS0101 ")));
    }
}
