//! The synchronization facade the serve layer builds against.
//!
//! In production these are *exactly* `std::sync` — pure re-exports, zero
//! cost, zero behavior change. The point of the indirection is
//! auditability: the serve layer's epoch/breaker/admission-queue code
//! imports its primitives from here, which gives the toolchain one
//! choke point —
//!
//! * the lexical lock-order rule (`RA05xx`) knows every faced file is
//!   in scope;
//! * the CI sanitize matrix compiles the faced crates under TSan so the
//!   real interleavings of this exact surface are raced;
//! * the deterministic model checker ([`crate::model`]) explores
//!   abstract schedules of the same protocol shapes (epoch publish,
//!   queue close/drain, breaker-class isolation) under a bounded
//!   scheduler.
//!
//! Keep imports of `Mutex`/`RwLock`/`Condvar`/atomics in the serve
//! layer pointed here rather than at `std::sync` directly, so new
//! concurrency code lands inside the audited surface by default.

pub use std::sync::atomic;
pub use std::sync::{
    Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
