//! The single registry of stable diagnostic codes.
//!
//! Every `RS####` (data/plan analyzers, `repsim-check`) and `RA####`
//! (source auditor, this crate) code ships here exactly once. Codes are
//! never reused for a different meaning: a withdrawn code is marked
//! [`Status::Retired`] and its number stays burned. The `RA03xx` rules
//! enforce the contract mechanically — an unregistered code in source is
//! `RA0301`, a registered-but-never-used active code is `RA0302`, a
//! duplicate registry entry is `RA0303`, and resurrecting a retired code
//! is `RA0304`.

/// Whether a code is live or permanently withdrawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// In active use; must appear in workspace sources.
    Active,
    /// Withdrawn; the number is burned and must not reappear in source.
    Retired,
}

/// One registry entry.
#[derive(Clone, Copy, Debug)]
pub struct CodeSpec {
    /// The stable code, e.g. `"RS0101"`.
    pub code: &'static str,
    /// Live or burned.
    pub status: Status,
    /// One-line meaning (mirrored in DESIGN.md's tables).
    pub description: &'static str,
}

const fn active(code: &'static str, description: &'static str) -> CodeSpec {
    CodeSpec {
        code,
        status: Status::Active,
        description,
    }
}

const fn retired(code: &'static str, description: &'static str) -> CodeSpec {
    CodeSpec {
        code,
        status: Status::Retired,
        description,
    }
}

/// Every shipped diagnostic code, in numeric order per family.
pub const REGISTRY: &[CodeSpec] = &[
    // RS01xx — §2.2 model-assumption lints (repsim-check::model).
    active("RS0101", "dangling relationship node (degree < 2)"),
    active(
        "RS0102",
        "relationship region touching < 2 distinct entities",
    ),
    active("RS0103", "isolated entity (degree 0)"),
    // RS02xx — meta-walk / plan checks (repsim-check::plan).
    active("RS0201", "meta-walk text malformed"),
    active(
        "RS0202",
        "consecutive labels never adjacent; no instances by construction",
    ),
    active(
        "RS0203",
        "well-formed walk denotes no informative instance (Def 4)",
    ),
    active(
        "RS0204",
        "adjacent entity labels repeat; Thm 4.2 hypothesis fails",
    ),
    active("RS0205", "asymmetric walk under a symmetry-assuming scorer"),
    // RS03xx — functional-dependency chain preconditions (Defs 8/9).
    active("RS0301", "asserted FD witness walk fails Definition 8"),
    active(
        "RS0302",
        "two labels functionally determine each other (cyclic order)",
    ),
    active(
        "RS0303",
        "FD component not totally ordered; no Definition 9 chain",
    ),
    active("RS0304", "FD witness walk contains a *-label"),
    // RS04xx — CSR structural invariants (repsim-check::matrix).
    active("RS0400", "matrix file unparseable"),
    active("RS0401", "row_ptr malformed (length, start, monotonicity)"),
    active("RS0402", "columns within a row unsorted or duplicated"),
    active("RS0403", "column index out of bounds"),
    active(
        "RS0404",
        "row_ptr end, column count and value count disagree",
    ),
    active(
        "RS0405",
        "consecutive chain factors have incompatible shapes",
    ),
    active(
        "RS0406",
        "compact record row_ptr malformed or part lengths disagree",
    ),
    active(
        "RS0407",
        "compact record column deltas decode out of bounds",
    ),
    active(
        "RS0408",
        "compact record shape ineligible for u16/u32 narrowing",
    ),
    // RS05xx — transformation applicability (repsim-check::transform).
    active(
        "RS0501",
        "transformation unknown or not applicable to this database",
    ),
    active("RS0502", "round trip through the inverse loses information"),
    active("RS0503", "transformation is not query preserving"),
    // RS06xx — mutation pre-flight (repsim-check::mutate).
    active(
        "RS0601",
        "mutate request malformed (missing/mistyped required field)",
    ),
    active("RS0602", "node reference text form invalid"),
    active("RS0603", "node reference does not resolve in the graph"),
    active("RS0604", "mutation precondition fails against the graph"),
    active(
        "RS0605",
        "unknown field in a mutate request (likely misnamed)",
    ),
    // RA00xx — reserved.
    retired(
        "RA0000",
        "reserved: registry self-test placeholder, never shipped",
    ),
    // RA01xx — budget coverage in kernel loops (repsim-audit).
    active(
        "RA0101",
        "loop in a budget-accepting kernel function never polls the budget",
    ),
    active("RA0102", "audit:allow directive suppresses nothing (stale)"),
    // RA02xx — observability-name consistency.
    active(
        "RA0201",
        "trace-schema pinned name missing from workspace sources",
    ),
    active(
        "RA0202",
        "observability name literal is malformed (not repsim.-namespaced)",
    ),
    active("RA0203", "metric handle name registered more than once"),
    active(
        "RA0204",
        "name in a pinned live-ops family is not pinned in the trace schema",
    ),
    // RA03xx — diagnostic-code registry consistency.
    active(
        "RA0301",
        "diagnostic code used in source but not registered",
    ),
    active("RA0302", "active registered code never used in source"),
    active("RA0303", "diagnostic code registered more than once"),
    active("RA0304", "retired diagnostic code used in source"),
    // RA04xx — protocol/WAL variant exhaustiveness.
    active(
        "RA0401",
        "enum variant not referenced in a required handler file",
    ),
    active(
        "RA0402",
        "audited enum definition or required handler file not found",
    ),
    // RA05xx — lock-order discipline in the serve layer.
    active(
        "RA0501",
        "lock acquired out of declared order (or while holding a leaf lock)",
    ),
    active(
        "RA0502",
        "lock-typed field not covered by the declared lock order",
    ),
];

/// Looks up one code.
pub fn spec(code: &str) -> Option<&'static CodeSpec> {
    REGISTRY.iter().find(|s| s.code == code)
}

/// Whether `s` has the shape of a diagnostic code (`RS`/`RA` + 4 digits).
pub fn is_code_shaped(s: &str) -> bool {
    s.len() == 6
        && (s.starts_with("RS") || s.starts_with("RA"))
        && s[2..].bytes().all(|b| b.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_duplicate_free_and_code_shaped() {
        for (i, a) in REGISTRY.iter().enumerate() {
            assert!(is_code_shaped(a.code), "{} is not code-shaped", a.code);
            for b in &REGISTRY[i + 1..] {
                assert_ne!(a.code, b.code, "duplicate registry entry");
            }
        }
    }

    #[test]
    fn shape_check_rejects_near_misses() {
        assert!(is_code_shaped("RS0101"));
        assert!(is_code_shaped("RA0501"));
        assert!(!is_code_shaped("RX0101"));
        assert!(!is_code_shaped("RS101"));
        assert!(!is_code_shaped("RS01011"));
        assert!(!is_code_shaped("RS01x1"));
    }
}
