//! Buildable descriptions of the study's algorithms.
//!
//! The robustness runner needs to construct "the same algorithm" over a
//! database and its transformation. For meta-walk algorithms the two sides
//! use *corresponding* meta-walks (e.g. `proc paper area paper proc` on
//! DBLP vs `proc area proc` on SIGMOD Record), so the spec carries the
//! meta-walk text per side.

use repsim_baselines::{
    CommonNeighbors, HeteSim, Katz, PathSim, Rwr, SimRank, SimRankMc, SimRankPlusPlus,
};
use repsim_core::{find_meta_walk_set, AggregatedScorer, CountingMode, RPathSim};
use repsim_graph::Graph;
use repsim_metawalk::{FdSet, MetaWalk};

use repsim_baselines::ranking::SimilarityAlgorithm;

/// A constructible algorithm description.
#[derive(Clone, Debug)]
pub enum AlgorithmSpec {
    /// Random walk with restart (restart 0.8).
    Rwr,
    /// Exact SimRank (damping 0.8, 10 iterations).
    SimRank,
    /// Monte-Carlo SimRank fingerprints.
    SimRankMc {
        /// Fingerprint sampling seed.
        seed: u64,
    },
    /// Truncated Katz-β.
    Katz,
    /// Evidence-weighted SimRank (SimRank++).
    SimRankPlusPlus,
    /// Common neighbors.
    CommonNeighbors,
    /// PathSim over a meta-walk given as parseable text.
    PathSim {
        /// The meta-walk, e.g. `"film actor film"`.
        meta_walk: String,
    },
    /// R-PathSim over a meta-walk given as parseable text (may use
    /// `*label` forms).
    RPathSim {
        /// The meta-walk, e.g. `"conf *paper dom kw dom *paper conf"`.
        meta_walk: String,
    },
    /// HeteSim over a symmetric, even-hop meta-walk.
    HeteSim {
        /// The meta-walk, e.g. `"film actor film"`.
        meta_walk: String,
    },
    /// Aggregated (R-)PathSim over the Algorithm-1 meta-walk set for the
    /// given query label.
    Aggregated {
        /// Plain (PathSim) or informative (R-PathSim) counting.
        mode: CountingMode,
        /// Query label name whose meta-walk set to generate.
        query_label: String,
        /// Maximum node-length of the simple meta-walks fed to Algorithm 1.
        max_len: usize,
        /// Maximum meta-walk node-length used for FD discovery.
        fd_max_len: usize,
    },
}

impl AlgorithmSpec {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> String {
        match self {
            AlgorithmSpec::Rwr => "RWR".into(),
            AlgorithmSpec::SimRank => "SimRank".into(),
            AlgorithmSpec::SimRankMc { .. } => "SimRank-MC".into(),
            AlgorithmSpec::Katz => "Katz".into(),
            AlgorithmSpec::SimRankPlusPlus => "SimRank++".into(),
            AlgorithmSpec::CommonNeighbors => "CommonNeighbors".into(),
            AlgorithmSpec::PathSim { .. } => "PathSim".into(),
            AlgorithmSpec::RPathSim { .. } => "R-PathSim".into(),
            AlgorithmSpec::HeteSim { .. } => "HeteSim".into(),
            AlgorithmSpec::Aggregated {
                mode: CountingMode::Plain,
                ..
            } => "PathSim-agg".into(),
            AlgorithmSpec::Aggregated {
                mode: CountingMode::Informative,
                ..
            } => "R-PathSim-agg".into(),
        }
    }

    /// Constructs the algorithm over a database.
    ///
    /// # Panics
    /// On unparseable meta-walks or unknown labels — specs are authored
    /// alongside the datasets they run on.
    pub fn build<'g>(&self, g: &'g Graph) -> Box<dyn SimilarityAlgorithm + 'g> {
        match self {
            AlgorithmSpec::Rwr => Box::new(Rwr::new(g)),
            AlgorithmSpec::SimRank => {
                // Bit-identical to serial, just faster on big graphs.
                // Honors --threads / REPSIM_THREADS like the sparse kernels.
                let threads = repsim_sparse::Parallelism::default().threads();
                Box::new(SimRank::with_threads(g, threads))
            }
            AlgorithmSpec::SimRankMc { seed } => Box::new(SimRankMc::new(g, *seed)),
            AlgorithmSpec::Katz => Box::new(Katz::new(g)),
            AlgorithmSpec::SimRankPlusPlus => Box::new(SimRankPlusPlus::new(g)),
            AlgorithmSpec::CommonNeighbors => Box::new(CommonNeighbors::new(g)),
            AlgorithmSpec::PathSim { meta_walk } => {
                Box::new(PathSim::new(g, parse_spec_walk(g, meta_walk)))
            }
            AlgorithmSpec::RPathSim { meta_walk } => {
                Box::new(RPathSim::new(g, parse_spec_walk(g, meta_walk)))
            }
            AlgorithmSpec::HeteSim { meta_walk } => {
                Box::new(HeteSim::new(g, parse_spec_walk(g, meta_walk)))
            }
            AlgorithmSpec::Aggregated {
                mode,
                query_label,
                max_len,
                fd_max_len,
            } => {
                #[allow(clippy::panic)] // specs are programmatic; a bad label is a caller bug
                let label = g
                    .labels()
                    .get(query_label)
                    .unwrap_or_else(|| panic!("unknown label {query_label:?}"));
                let fds = FdSet::discover(g, *fd_max_len);
                let mut set = find_meta_walk_set(g, &fds, label, *max_len);
                if *mode == CountingMode::Plain {
                    // Plain PathSim has no *-label semantics: strip stars
                    // (and dedupe the collapsed duplicates).
                    set = strip_stars(set);
                }
                Box::new(AggregatedScorer::new(g, *mode, set))
            }
        }
    }
}

fn strip_stars(set: Vec<MetaWalk>) -> Vec<MetaWalk> {
    use repsim_metawalk::Step;
    let mut out: Vec<MetaWalk> = Vec::new();
    for mw in set {
        let steps = mw
            .steps()
            .iter()
            .map(|s| match *s {
                Step::Entity { label, .. } => Step::Entity { label, star: false },
                rel => rel,
            })
            .collect();
        let plain = MetaWalk::new(steps);
        if !out.contains(&plain) {
            out.push(plain);
        }
    }
    out
}

/// Parses a meta-walk from a programmatic [`AlgorithmSpec`]; specs are
/// built by code (repro binaries, the CLI after its own validation), so a
/// walk that fails to parse is a caller bug.
fn parse_spec_walk(g: &Graph, text: &str) -> MetaWalk {
    #[allow(clippy::panic)] // precondition failure in a programmatic spec
    match MetaWalk::parse_in(g, text) {
        Some(mw) => mw,
        None => panic!("bad meta-walk {text:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repsim_graph::GraphBuilder;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        let film = b.entity_label("film");
        let actor = b.entity_label("actor");
        let f1 = b.entity(film, "f1");
        let f2 = b.entity(film, "f2");
        let a = b.entity(actor, "a");
        b.edge(f1, a).unwrap();
        b.edge(f2, a).unwrap();
        b.build()
    }

    #[test]
    fn every_spec_builds_and_ranks() {
        let g = graph();
        let film = g.labels().get("film").unwrap();
        let f1 = g.entity_by_name("film", "f1").unwrap();
        let specs = [
            AlgorithmSpec::Rwr,
            AlgorithmSpec::SimRank,
            AlgorithmSpec::SimRankMc { seed: 1 },
            AlgorithmSpec::Katz,
            AlgorithmSpec::SimRankPlusPlus,
            AlgorithmSpec::CommonNeighbors,
            AlgorithmSpec::PathSim {
                meta_walk: "film actor film".into(),
            },
            AlgorithmSpec::RPathSim {
                meta_walk: "film actor film".into(),
            },
            AlgorithmSpec::HeteSim {
                meta_walk: "film actor film".into(),
            },
            AlgorithmSpec::Aggregated {
                mode: CountingMode::Informative,
                query_label: "film".into(),
                max_len: 3,
                fd_max_len: 3,
            },
            AlgorithmSpec::Aggregated {
                mode: CountingMode::Plain,
                query_label: "film".into(),
                max_len: 3,
                fd_max_len: 3,
            },
        ];
        for spec in specs {
            let mut alg = spec.build(&g);
            let list = alg.rank(f1, film, 5);
            assert_eq!(list.nodes().len(), 1, "{} finds f2", spec.name());
        }
    }

    #[test]
    #[should_panic(expected = "bad meta-walk")]
    fn bad_meta_walk_panics() {
        let g = graph();
        let _ = AlgorithmSpec::PathSim {
            meta_walk: "ghost walk".into(),
        }
        .build(&g);
    }
}
