//! Summary statistics and the paired t-test.
//!
//! Tables 1–4 report "average ranking differences … variances shown in
//! parenthesis"; §6.2's third experiment reports significance "according
//! to the paired t-test at significance level of 0.05". The Student-t CDF
//! is computed from scratch via the regularized incomplete beta function
//! (continued fraction, Lentz's method) — no statistics crate needed.

/// A percentile-bootstrap confidence interval for the mean.
///
/// Tables 1–4 report mean (variance); a CI communicates the same
/// uncertainty more directly. Resamples `xs` with replacement
/// `resamples` times (seeded — deterministic reports) and returns the
/// `(alpha/2, 1 − alpha/2)` percentiles of the resampled means.
///
/// Returns `None` for fewer than two samples.
pub fn bootstrap_mean_ci(
    xs: &[f64],
    resamples: usize,
    alpha: f64,
    seed: u64,
) -> Option<(f64, f64)> {
    use rand::Rng;
    use rand::SeedableRng;
    if xs.len() < 2 || resamples == 0 || !(0.0..1.0).contains(&alpha) {
        return None;
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let total: f64 = (0..xs.len())
            .map(|_| xs[rng.random_range(0..xs.len())])
            .sum();
        means.push(total / xs.len() as f64);
    }
    // Means of finite samples are finite; a NaN would tie, not panic.
    means.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let lo_idx = ((alpha / 2.0) * resamples as f64) as usize;
    let hi_idx = (((1.0 - alpha / 2.0) * resamples as f64) as usize).min(resamples - 1);
    Some((means[lo_idx], means[hi_idx]))
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance (0 for fewer than two samples).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// The result of a paired t-test.
#[derive(Debug, Clone, PartialEq)]
pub struct PairedTTest {
    /// The t statistic of the paired differences.
    pub t: f64,
    /// Degrees of freedom (`n − 1`).
    pub df: usize,
    /// Two-tailed p-value.
    pub p_value: f64,
}

impl PairedTTest {
    /// Whether the difference is significant at the given level.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-tailed paired t-test of `a` against `b` (equal lengths ≥ 2).
///
/// Returns `None` for degenerate inputs (length < 2, mismatched lengths,
/// or zero variance of the differences with zero mean).
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Option<PairedTTest> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let n = diffs.len() as f64;
    let m = mean(&diffs);
    // Sample standard deviation of the differences.
    let var = diffs.iter().map(|d| (d - m) * (d - m)).sum::<f64>() / (n - 1.0);
    if var == 0.0 {
        return if m == 0.0 {
            None
        } else {
            Some(PairedTTest {
                t: f64::INFINITY,
                df: diffs.len() - 1,
                p_value: 0.0,
            })
        };
    }
    let t = m / (var / n).sqrt();
    let df = diffs.len() - 1;
    let p_value = two_tailed_t_p(t, df);
    Some(PairedTTest { t, df, p_value })
}

/// Two-tailed p-value of a t statistic with `df` degrees of freedom:
/// `p = I_{df/(df+t²)}(df/2, 1/2)`.
pub fn two_tailed_t_p(t: f64, df: usize) -> f64 {
    let dff = df as f64;
    let x = dff / (dff + t * t);
    regularized_incomplete_beta(dff / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// The regularized incomplete beta function `I_x(a, b)` via the standard
/// continued-fraction expansion (Numerical-Recipes-style `betacf` with
/// Lentz's method).
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-30;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    assert!(x > 0.0, "ln_gamma needs a positive argument");
    let mut ser = 1.000_000_000_190_015;
    let mut y = x;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    let tmp = x + 5.5;
    (2.506_628_274_631_000_5 * ser / x).ln() - tmp + (x + 0.5) * tmp.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean() {
        let xs: Vec<f64> = (0..40).map(|i| 0.3 + 0.01 * (i % 7) as f64).collect();
        let (lo, hi) = bootstrap_mean_ci(&xs, 500, 0.05, 9).unwrap();
        let m = mean(&xs);
        assert!(lo <= m && m <= hi, "{lo} ≤ {m} ≤ {hi}");
        assert!(hi - lo < 0.05, "tight data, tight interval: {lo}..{hi}");
        // Deterministic under the seed.
        assert_eq!(bootstrap_mean_ci(&xs, 500, 0.05, 9).unwrap(), (lo, hi));
    }

    #[test]
    fn bootstrap_ci_degenerate_inputs() {
        assert!(bootstrap_mean_ci(&[1.0], 100, 0.05, 1).is_none());
        assert!(bootstrap_mean_ci(&[1.0, 2.0], 0, 0.05, 1).is_none());
        assert!(bootstrap_mean_ci(&[1.0, 2.0], 100, 1.5, 1).is_none());
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24.
        assert!(ln_gamma(1.0).abs() < 1e-9);
        assert!(ln_gamma(2.0).abs() < 1e-9);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn incomplete_beta_boundaries_and_symmetry() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(1,1) = x.
        assert!((regularized_incomplete_beta(1.0, 1.0, 0.37) - 0.37).abs() < 1e-10);
        // Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
        let lhs = regularized_incomplete_beta(2.5, 1.5, 0.3);
        let rhs = 1.0 - regularized_incomplete_beta(1.5, 2.5, 0.7);
        assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn t_distribution_known_quantiles() {
        // For df=10, t=2.228 is the 97.5th percentile → two-tailed p ≈ .05.
        let p = two_tailed_t_p(2.228, 10);
        assert!((p - 0.05).abs() < 2e-3, "got {p}");
        // t = 0 → p = 1.
        assert!((two_tailed_t_p(0.0, 5) - 1.0).abs() < 1e-9);
        // Large t → tiny p.
        assert!(two_tailed_t_p(10.0, 30) < 1e-6);
    }

    #[test]
    fn paired_t_test_detects_shift() {
        let a = [1.0, 1.2, 0.9, 1.1, 1.05, 0.95, 1.15, 1.0];
        let b: Vec<f64> = a.iter().map(|x| x - 0.5).collect();
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.significant_at(0.05), "clear shift: {r:?}");
        assert!(r.t > 0.0);
    }

    #[test]
    fn paired_t_test_null_case() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.1, 1.9, 3.05, 3.95, 5.1, 5.9];
        let r = paired_t_test(&a, &b).unwrap();
        assert!(!r.significant_at(0.05), "noise only: {r:?}");
    }

    #[test]
    fn paired_t_test_degenerate_inputs() {
        assert!(paired_t_test(&[1.0], &[2.0]).is_none());
        assert!(paired_t_test(&[1.0, 2.0], &[1.0]).is_none());
        assert!(
            paired_t_test(&[1.0, 2.0], &[1.0, 2.0]).is_none(),
            "zero diffs"
        );
        let r = paired_t_test(&[2.0, 3.0], &[1.0, 2.0]).unwrap();
        assert_eq!(
            r.p_value, 0.0,
            "constant nonzero diff is infinitely significant"
        );
    }
}
