//! Query workloads (§6.1): random entities and top entities by degree.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use repsim_graph::stats::entities_by_degree;
use repsim_graph::{Graph, LabelId, NodeId};

/// `n` entities of `label` sampled uniformly without replacement,
/// deterministic in the seed. Sampling is done over the value-sorted node
/// list so the workload is identical across representations of the same
/// data.
pub fn random_entities(g: &Graph, label: LabelId, n: usize, seed: u64) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = g.nodes_of_label(label).to_vec();
    nodes.sort_by_key(|&a| g.sort_key(a));
    let mut rng = StdRng::seed_from_u64(seed);
    nodes.shuffle(&mut rng);
    nodes.truncate(n);
    nodes
}

/// The top `n` entities of `label` by degree (ties broken by value) — the
/// paper's "top queries" workload.
pub fn top_degree_entities(g: &Graph, label: LabelId, n: usize) -> Vec<NodeId> {
    let mut nodes = entities_by_degree(g, label);
    nodes.truncate(n);
    nodes
}

/// The two §6.1 workloads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Workload {
    /// Uniformly sampled queries.
    Random {
        /// Sampling seed.
        seed: u64,
    },
    /// Highest-degree queries.
    TopDegree,
}

impl Workload {
    /// Materializes the workload over a database.
    pub fn queries(&self, g: &Graph, label: LabelId, n: usize) -> Vec<NodeId> {
        match *self {
            Workload::Random { seed } => random_entities(g, label, n, seed),
            Workload::TopDegree => top_degree_entities(g, label, n),
        }
    }

    /// Display name matching the paper's table headers.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Random { .. } => "random queries",
            Workload::TopDegree => "top queries",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repsim_graph::GraphBuilder;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        let film = b.entity_label("film");
        let actor = b.entity_label("actor");
        let films: Vec<_> = (0..10).map(|i| b.entity(film, &format!("f{i}"))).collect();
        let a = b.entity(actor, "a");
        // f0 the hub, everything else degree 1.
        for (i, &f) in films.iter().enumerate() {
            b.edge(f, a).unwrap();
            if i > 0 {
                b.edge(films[0], f).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn random_is_deterministic_and_sized() {
        let g = graph();
        let film = g.labels().get("film").unwrap();
        let w1 = random_entities(&g, film, 4, 9);
        let w2 = random_entities(&g, film, 4, 9);
        assert_eq!(w1, w2);
        assert_eq!(w1.len(), 4);
        let w3 = random_entities(&g, film, 4, 10);
        assert_ne!(w1, w3, "different seed, different sample");
        // Oversampling returns everything.
        assert_eq!(random_entities(&g, film, 100, 9).len(), 10);
    }

    #[test]
    fn top_degree_puts_hub_first() {
        let g = graph();
        let film = g.labels().get("film").unwrap();
        let top = top_degree_entities(&g, film, 3);
        assert_eq!(g.value_of(top[0]), Some("f0"));
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn workload_enum_dispatch() {
        let g = graph();
        let film = g.labels().get("film").unwrap();
        assert_eq!(Workload::TopDegree.queries(&g, film, 2).len(), 2);
        assert_eq!(Workload::Random { seed: 1 }.queries(&g, film, 2).len(), 2);
        assert_eq!(Workload::TopDegree.name(), "top queries");
    }

    #[test]
    fn random_workload_matches_across_representations() {
        // Same values in different node orders must sample the same values.
        let g1 = graph();
        let mut b = GraphBuilder::new();
        let film = b.entity_label("film");
        let actor = b.entity_label("actor");
        let a = b.entity(actor, "a");
        // Reverse insertion order.
        let films: Vec<_> = (0..10)
            .rev()
            .map(|i| b.entity(film, &format!("f{i}")))
            .collect();
        for &f in &films {
            b.edge(f, a).unwrap();
        }
        let g2 = b.build();
        let l1 = g1.labels().get("film").unwrap();
        let l2 = g2.labels().get("film").unwrap();
        let v1: Vec<_> = random_entities(&g1, l1, 5, 3)
            .iter()
            .map(|&n| g1.value_of(n).unwrap().to_owned())
            .collect();
        let v2: Vec<_> = random_entities(&g2, l2, 5, 3)
            .iter()
            .map(|&n| g2.value_of(n).unwrap().to_owned())
            .collect();
        assert_eq!(v1, v2);
    }
}
