#![warn(missing_docs)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::indexing_slicing
    )
)]

//! Evaluation machinery for the §6 experiments.
//!
//! * [`kendall`] — normalized Kendall's tau with ties over top-k lists
//!   (Fagin, Kumar, Mahdian, Sivakumar & Vee, PODS 2004 — the paper's
//!   ranking-difference metric, penalty ½ for ties, normalized to [0,1]);
//! * [`ndcg`] — normalized discounted cumulative gain with graded
//!   relevance (§6.2's effectiveness metric);
//! * [`ir_metrics`] — precision@k and MAP (extension metrics beyond the
//!   paper's nDCG);
//! * [`stats`] — means, variances, and the paired t-test (significance at
//!   0.05, §6.2's third experiment) with a from-scratch regularized
//!   incomplete beta for the Student-t CDF;
//! * [`workload`] — the paper's two query workloads: random entities and
//!   top entities by degree;
//! * [`spec`] — a buildable description of every algorithm in the study,
//!   so experiments can construct the same algorithm over a database and
//!   its transformation;
//! * [`runner`] — the robustness experiment: per-query top-k ranking
//!   differences of an algorithm across a transformation, aggregated as
//!   mean (variance) exactly as Tables 1–4 report them;
//! * [`report`] — plain-text table formatting for the repro binaries.

pub mod ir_metrics;
pub mod kendall;
pub mod ndcg;
pub mod report;
pub mod runner;
pub mod spec;
pub mod stats;
pub mod workload;

pub use kendall::top_k_kendall;
pub use ndcg::ndcg_at_k;
pub use runner::{RobustnessResult, RobustnessRunner};
pub use spec::AlgorithmSpec;
