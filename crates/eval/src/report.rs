//! Plain-text table formatting for the reproduction binaries.

/// A simple aligned-text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A titled table with the given column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (RFC-4180-style quoting: fields containing
    /// commas, quotes, or newlines are double-quoted with quotes doubled).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Table 1", &["alg", "k=3", "k=5"]);
        t.row(&["RWR".into(), ".205 (.026)".into(), ".193".into()]);
        t.row(&["SimRank".into(), ".190".into(), ".226".into()]);
        let s = t.render();
        assert!(s.contains("== Table 1 =="));
        assert!(s.contains("RWR      .205 (.026)"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_export_quotes_when_needed() {
        let mut t = Table::new("x", &["alg", "note"]);
        t.row(&["RWR".into(), "mean, variance".into()]);
        t.row(&["Path\"Sim\"".into(), "plain".into()]);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("alg,note"));
        assert_eq!(lines.next(), Some("RWR,\"mean, variance\""));
        assert_eq!(lines.next(), Some("\"Path\"\"Sim\"\"\",plain"));
    }

    #[test]
    fn rows_padded_to_header() {
        let mut t = Table::new("", &["a", "b", "c"]);
        t.row(&["1".into()]);
        let s = t.render();
        assert!(s.contains('1'));
    }
}
