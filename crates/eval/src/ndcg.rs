//! Normalized discounted cumulative gain (§6.2's effectiveness metric).

/// DCG of a relevance sequence in rank order:
/// `Σ_i rel_i / log₂(i + 1)` with ranks starting at 1.
pub fn dcg(relevances: &[u8]) -> f64 {
    relevances
        .iter()
        .enumerate()
        .map(|(i, &r)| r as f64 / ((i + 2) as f64).log2())
        .sum()
}

/// nDCG@k: the DCG of the top-k returned relevances divided by the DCG of
/// the ideal ordering of the *whole* candidate pool's relevances.
///
/// `returned` is the relevance of each returned answer in rank order;
/// `pool` is the relevance of every candidate (used to form the ideal).
/// Returns 0 when the ideal DCG is 0 (no relevant candidates exist).
pub fn ndcg_at_k(returned: &[u8], pool: &[u8], k: usize) -> f64 {
    let got: Vec<u8> = returned.iter().copied().take(k).collect();
    let mut ideal: Vec<u8> = pool.to_vec();
    ideal.sort_unstable_by(|a, b| b.cmp(a));
    ideal.truncate(k);
    let denom = dcg(&ideal);
    if denom == 0.0 {
        0.0
    } else {
        dcg(&got) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcg_hand_computed() {
        // 2/log2(2) + 1/log2(3) + 0 = 2 + 0.6309…
        let d = dcg(&[2, 1, 0]);
        assert!((d - (2.0 + 1.0 / 3f64.log2())).abs() < 1e-12);
        assert_eq!(dcg(&[]), 0.0);
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let pool = [2, 2, 1, 1, 0, 0];
        assert_eq!(ndcg_at_k(&[2, 2, 1], &pool, 3), 1.0);
    }

    #[test]
    fn worst_ranking_scores_zero() {
        let pool = [2, 2, 1, 0, 0, 0];
        assert_eq!(ndcg_at_k(&[0, 0, 0], &pool, 3), 0.0);
    }

    #[test]
    fn partial_ranking_in_between() {
        let pool = [2, 1, 0];
        let v = ndcg_at_k(&[1, 2, 0], &pool, 3);
        assert!(v > 0.0 && v < 1.0);
        // Swapping the top two must hurt.
        assert!(v < ndcg_at_k(&[2, 1, 0], &pool, 3));
    }

    #[test]
    fn k_truncates_both_sides() {
        let pool = [2, 2, 2, 2];
        // Only the first k entries of the returned list matter.
        assert_eq!(ndcg_at_k(&[2, 2, 0, 0], &pool, 2), 1.0);
    }

    #[test]
    fn empty_pool_yields_zero() {
        assert_eq!(ndcg_at_k(&[0, 0], &[0, 0], 2), 0.0);
        assert_eq!(ndcg_at_k(&[], &[], 5), 0.0);
    }
}
