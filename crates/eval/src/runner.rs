//! The robustness experiment runner (Tables 1–4).
//!
//! For each query, run the algorithm over the database and over its
//! transformation (meta-walk algorithms get the corresponding meta-walk on
//! each side), compare the value-keyed top-k answer lists with the
//! normalized Kendall tau, and aggregate mean (variance) per k — the cell
//! format of Tables 1–4.

use repsim_graph::{Graph, NodeId};
use repsim_transform::EntityMap;

use crate::kendall::top_k_kendall;
use crate::spec::AlgorithmSpec;
use crate::stats::{bootstrap_mean_ci, mean, variance};

/// Per-(algorithm, transformation, workload) robustness measurements.
#[derive(Debug, Clone)]
pub struct RobustnessResult {
    /// Algorithm display name.
    pub algorithm: String,
    /// `(k, per-query tau values)` for each requested cutoff.
    pub per_k: Vec<(usize, Vec<f64>)>,
}

impl RobustnessResult {
    /// Mean ranking difference at cutoff `k`.
    pub fn mean_at(&self, k: usize) -> Option<f64> {
        self.per_k
            .iter()
            .find(|&&(kk, _)| kk == k)
            .map(|(_, v)| mean(v))
    }

    /// Variance of the ranking difference at cutoff `k`.
    pub fn variance_at(&self, k: usize) -> Option<f64> {
        self.per_k
            .iter()
            .find(|&&(kk, _)| kk == k)
            .map(|(_, v)| variance(v))
    }

    /// A seeded 95% percentile-bootstrap CI for the mean at cutoff `k`.
    pub fn ci_at(&self, k: usize) -> Option<(f64, f64)> {
        self.per_k
            .iter()
            .find(|&&(kk, _)| kk == k)
            .and_then(|(_, v)| bootstrap_mean_ci(v, 1000, 0.05, 0xC1))
    }

    /// `mean (variance)` cell text, three decimals like the paper.
    pub fn cell(&self, k: usize) -> String {
        match (self.mean_at(k), self.variance_at(k)) {
            (Some(m), Some(v)) => format!("{m:.3} ({v:.3})"),
            _ => "-".into(),
        }
    }
}

/// Runs robustness experiments between one database and one of its
/// transformations.
pub struct RobustnessRunner<'a> {
    g: &'a Graph,
    tg: &'a Graph,
    map: &'a EntityMap,
}

impl<'a> RobustnessRunner<'a> {
    /// Binds the runner to a `(D, T(D), M)` triple.
    pub fn new(g: &'a Graph, tg: &'a Graph, map: &'a EntityMap) -> Self {
        RobustnessRunner { g, tg, map }
    }

    /// Measures one algorithm over a query workload at the given top-k
    /// cutoffs. `spec_d` runs over the original database, `spec_t` over
    /// the transformed one (they differ only for meta-walk algorithms,
    /// which need corresponding meta-walks).
    pub fn run(
        &self,
        spec_d: &AlgorithmSpec,
        spec_t: &AlgorithmSpec,
        queries: &[NodeId],
        ks: &[usize],
    ) -> RobustnessResult {
        let mut alg_d = spec_d.build(self.g);
        let mut alg_t = spec_t.build(self.tg);
        let kmax = ks.iter().copied().max().unwrap_or(0);
        let mut per_k: Vec<(usize, Vec<f64>)> = ks
            .iter()
            .map(|&k| (k, Vec::with_capacity(queries.len())))
            .collect();
        for &q in queries {
            // Query-preserving transformations map every entity; an
            // unmapped query (caught separately by `check_query_preserving`)
            // is excluded from the correlation rather than panicking.
            let Some(tq) = self.map.map(q) else { continue };
            let label = self.g.label_of(q);
            let tlabel = self.tg.label_of(tq);
            let list_d = alg_d.rank(q, label, kmax).keyed(self.g);
            let list_t = alg_t.rank(tq, tlabel, kmax).keyed(self.tg);
            for (k, taus) in &mut per_k {
                let a: Vec<((String, String), f64)> = list_d
                    .iter()
                    .take(*k)
                    .map(|(l, v, s)| ((l.clone(), v.clone()), *s))
                    .collect();
                let b: Vec<((String, String), f64)> = list_t
                    .iter()
                    .take(*k)
                    .map(|(l, v, s)| ((l.clone(), v.clone()), *s))
                    .collect();
                taus.push(top_k_kendall(&a, &b));
            }
        }
        RobustnessResult {
            algorithm: spec_d.name(),
            per_k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use repsim_datasets::citations::{self, CitationConfig};
    use repsim_transform::{apply_with_map, catalog};

    #[test]
    fn rpathsim_measures_zero_difference() {
        let cfg = CitationConfig::tiny();
        let g = citations::dblp(&cfg);
        let (tg, map) = apply_with_map(&*catalog::dblp2snap(), &g).unwrap();
        let runner = RobustnessRunner::new(&g, &tg, &map);
        let paper = g.labels().get("paper").unwrap();
        let queries = Workload::Random { seed: 5 }.queries(&g, paper, 10);
        let r = runner.run(
            &AlgorithmSpec::RPathSim {
                meta_walk: "paper cite paper cite paper".into(),
            },
            &AlgorithmSpec::RPathSim {
                meta_walk: "paper paper paper".into(),
            },
            &queries,
            &[3, 5, 10],
        );
        for k in [3, 5, 10] {
            assert_eq!(r.mean_at(k), Some(0.0), "Theorem 4.3 at k={k}");
            assert_eq!(r.variance_at(k), Some(0.0));
            assert_eq!(r.ci_at(k), Some((0.0, 0.0)), "zero data, zero interval");
        }
        assert_eq!(r.cell(3), "0.000 (0.000)");
        assert_eq!(r.cell(99), "-");
    }

    #[test]
    fn pathsim_measures_nonzero_difference() {
        let cfg = CitationConfig::tiny();
        let g = citations::dblp(&cfg);
        let (tg, map) = apply_with_map(&*catalog::dblp2snap(), &g).unwrap();
        let runner = RobustnessRunner::new(&g, &tg, &map);
        let paper = g.labels().get("paper").unwrap();
        let queries = Workload::TopDegree.queries(&g, paper, 15);
        let r = runner.run(
            &AlgorithmSpec::PathSim {
                meta_walk: "paper cite paper cite paper".into(),
            },
            &AlgorithmSpec::PathSim {
                meta_walk: "paper paper paper".into(),
            },
            &queries,
            &[3],
        );
        assert!(
            r.mean_at(3).unwrap() > 0.0,
            "PathSim is not robust under DBLP-SNAP (Figure 4)"
        );
    }
}
