//! Normalized Kendall's tau with ties over top-k lists.
//!
//! The paper compares the top 3/5/10 answers of an algorithm over a
//! database and its transformation with the Fagin et al. tau: sum, over
//! every pair of items in the union of the two lists, a disagreement
//! penalty — 1 when the pair is ordered oppositely, ½ when it is tied in
//! exactly one list — and divide by the maximum possible number of
//! disagreements (`|U|·(|U|−1)/2`). Items absent from a list rank below
//! all its members and tie with each other. 0 means identical rankings;
//! 1 means one list reverses the other.

use std::collections::HashMap;
use std::hash::Hash;

/// Relative order of a pair within one list.
#[derive(PartialEq, Clone, Copy, Debug)]
enum Order {
    Before,
    After,
    Tied,
}

/// The normalized Kendall tau distance between two score-ranked top-k
/// lists with the paper's tie penalty of ½. Each list is `(item, score)`
/// in rank order; equal scores count as ties.
///
/// Returns 0.0 for two empty lists.
///
/// ```
/// use repsim_eval::top_k_kendall;
///
/// let a = vec![("x", 3.0), ("y", 2.0)];
/// let reversed = vec![("y", 3.0), ("x", 2.0)];
/// assert_eq!(top_k_kendall(&a, &a), 0.0);
/// assert_eq!(top_k_kendall(&a, &reversed), 1.0);
/// ```
pub fn top_k_kendall<T: Eq + Hash + Clone>(a: &[(T, f64)], b: &[(T, f64)]) -> f64 {
    top_k_kendall_with_penalty(a, b, 0.5)
}

/// Fagin et al.'s `K^(p)` family: the tie penalty is a parameter in
/// `[0, 1]` — 0 is the optimistic variant, 1 the pessimistic one, ½ the
/// neutral one the paper uses.
pub fn top_k_kendall_with_penalty<T: Eq + Hash + Clone>(
    a: &[(T, f64)],
    b: &[(T, f64)],
    penalty_p: f64,
) -> f64 {
    assert!((0.0..=1.0).contains(&penalty_p), "penalty must be in [0,1]");
    let score_a: HashMap<&T, f64> = a.iter().map(|(t, s)| (t, *s)).collect();
    let score_b: HashMap<&T, f64> = b.iter().map(|(t, s)| (t, *s)).collect();
    let mut universe: Vec<&T> = a.iter().map(|(t, _)| t).collect();
    for (t, _) in b {
        if !score_a.contains_key(t) {
            universe.push(t);
        }
    }
    let n = universe.len();
    if n < 2 {
        return 0.0;
    }

    let order_in = |scores: &HashMap<&T, f64>, i: &T, j: &T| -> Order {
        match (scores.get(i), scores.get(j)) {
            (Some(si), Some(sj)) => {
                if si > sj {
                    Order::Before
                } else if si < sj {
                    Order::After
                } else {
                    Order::Tied
                }
            }
            (Some(_), None) => Order::Before,
            (None, Some(_)) => Order::After,
            (None, None) => Order::Tied,
        }
    };

    let mut penalty = 0.0;
    for x in 0..n {
        for y in (x + 1)..n {
            let oa = order_in(&score_a, universe[x], universe[y]);
            let ob = order_in(&score_b, universe[x], universe[y]);
            penalty += match (oa, ob) {
                (Order::Tied, Order::Tied) => 0.0,
                (Order::Tied, _) | (_, Order::Tied) => penalty_p,
                (x, y) if x == y => 0.0,
                _ => 1.0,
            };
        }
    }
    penalty / (n * (n - 1)) as f64 * 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(items: &[(&str, f64)]) -> Vec<(String, f64)> {
        items.iter().map(|&(s, v)| (s.to_owned(), v)).collect()
    }

    #[test]
    fn identical_lists_score_zero() {
        let a = list(&[("x", 3.0), ("y", 2.0), ("z", 1.0)]);
        assert_eq!(top_k_kendall(&a, &a), 0.0);
    }

    #[test]
    fn reversed_lists_score_one() {
        let a = list(&[("x", 3.0), ("y", 2.0), ("z", 1.0)]);
        let b = list(&[("z", 3.0), ("y", 2.0), ("x", 1.0)]);
        assert_eq!(top_k_kendall(&a, &b), 1.0);
    }

    #[test]
    fn single_swap() {
        let a = list(&[("x", 3.0), ("y", 2.0), ("z", 1.0)]);
        let b = list(&[("y", 3.0), ("x", 2.0), ("z", 1.0)]);
        // One of three pairs disagrees.
        assert!((top_k_kendall(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tie_in_one_list_counts_half() {
        let a = list(&[("x", 2.0), ("y", 2.0)]);
        let b = list(&[("x", 2.0), ("y", 1.0)]);
        assert_eq!(top_k_kendall(&a, &b), 0.5);
        // Tied in both: no penalty.
        assert_eq!(top_k_kendall(&a, &a), 0.0);
    }

    #[test]
    fn disjoint_lists() {
        // x,y in a only; u,v in b only. Pairs: (x,y): ordered in a, tied
        // (both absent) in b → ½; (u,v) likewise ½; (x,u),(x,v),(y,u),
        // (y,v): opposite orders → 1 each. Total 5 over 6 pairs.
        let a = list(&[("x", 2.0), ("y", 1.0)]);
        let b = list(&[("u", 2.0), ("v", 1.0)]);
        assert!((top_k_kendall(&a, &b) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap() {
        // a: x>y ; b: y>z. Pairs: (x,y): a says x<y... a: x before y;
        // b: x absent → y before x → disagree 1. (x,z): a: x before z
        // (z absent); b: z before x (x absent) → 1. (y,z): a: y before z;
        // b: y before z → 0. Total 2/3.
        let a = list(&[("x", 2.0), ("y", 1.0)]);
        let b = list(&[("y", 2.0), ("z", 1.0)]);
        assert!((top_k_kendall(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<(String, f64)> = vec![];
        assert_eq!(top_k_kendall(&empty, &empty), 0.0);
        let one = list(&[("x", 1.0)]);
        assert_eq!(top_k_kendall(&one, &one), 0.0);
        assert_eq!(top_k_kendall(&one, &empty), 0.0, "one item, no pairs");
    }

    #[test]
    fn penalty_parameter_bounds_the_neutral_variant() {
        let a = list(&[("x", 2.0), ("y", 2.0)]);
        let b = list(&[("x", 2.0), ("y", 1.0)]);
        let optimistic = top_k_kendall_with_penalty(&a, &b, 0.0);
        let neutral = top_k_kendall(&a, &b);
        let pessimistic = top_k_kendall_with_penalty(&a, &b, 1.0);
        assert_eq!(optimistic, 0.0);
        assert_eq!(neutral, 0.5);
        assert_eq!(pessimistic, 1.0);
        assert!(optimistic <= neutral && neutral <= pessimistic);
    }

    #[test]
    #[should_panic(expected = "penalty must be in")]
    fn penalty_out_of_range_rejected() {
        let a = list(&[("x", 1.0)]);
        let _ = top_k_kendall_with_penalty(&a, &a, 1.5);
    }

    #[test]
    fn symmetric() {
        let a = list(&[("x", 3.0), ("y", 2.0), ("z", 1.0)]);
        let b = list(&[("y", 9.0), ("w", 5.0), ("x", 1.0)]);
        assert_eq!(top_k_kendall(&a, &b), top_k_kendall(&b, &a));
    }
}
