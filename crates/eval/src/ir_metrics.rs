//! Additional retrieval metrics beyond the paper's nDCG: precision@k and
//! (mean) average precision, using binarized relevance (level ≥ 1 counts
//! as relevant). Extensions for richer effectiveness reporting; the §6.2
//! reproduction itself uses [`crate::ndcg`].

/// Precision@k over graded relevances (binarized at ≥ `threshold`).
pub fn precision_at_k(returned: &[u8], k: usize, threshold: u8) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = returned.iter().take(k).filter(|&&r| r >= threshold).count();
    hits as f64 / k.min(returned.len()).max(1) as f64
}

/// Average precision of one ranking: the mean of precision@i over the
/// ranks `i` holding relevant items, normalized by the total number of
/// relevant items in the pool.
pub fn average_precision(returned: &[u8], total_relevant: usize, threshold: u8) -> f64 {
    if total_relevant == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, &r) in returned.iter().enumerate() {
        if r >= threshold {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / total_relevant as f64
}

/// Mean average precision over a workload of `(returned, total_relevant)`
/// pairs.
pub fn mean_average_precision(runs: &[(Vec<u8>, usize)], threshold: u8) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter()
        .map(|(ret, total)| average_precision(ret, *total, threshold))
        .sum::<f64>()
        / runs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_hand_computed() {
        let returned = [2, 0, 1, 0];
        assert_eq!(precision_at_k(&returned, 1, 1), 1.0);
        assert_eq!(precision_at_k(&returned, 2, 1), 0.5);
        assert_eq!(precision_at_k(&returned, 4, 1), 0.5);
        // Threshold 2 keeps only the "similar" level.
        assert_eq!(precision_at_k(&returned, 4, 2), 0.25);
        assert_eq!(precision_at_k(&returned, 0, 1), 0.0);
    }

    #[test]
    fn precision_with_short_lists() {
        assert_eq!(precision_at_k(&[2], 5, 1), 1.0, "normalize by list length");
        assert_eq!(precision_at_k(&[], 5, 1), 0.0);
    }

    #[test]
    fn average_precision_hand_computed() {
        // Relevant at ranks 1 and 3 of 2 total: (1/1 + 2/3)/2.
        let ap = average_precision(&[1, 0, 1, 0], 2, 1);
        assert!((ap - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
        // Missing one relevant item halves the score.
        let ap2 = average_precision(&[1, 0, 0, 0], 2, 1);
        assert!((ap2 - 0.5).abs() < 1e-12);
        assert_eq!(average_precision(&[1, 1], 0, 1), 0.0);
    }

    #[test]
    fn map_averages() {
        let runs = vec![(vec![1, 0], 1), (vec![0, 1], 1)];
        // AP₁ = 1.0, AP₂ = 0.5 → MAP = 0.75.
        assert!((mean_average_precision(&runs, 1) - 0.75).abs() < 1e-12);
        assert_eq!(mean_average_precision(&[], 1), 0.0);
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let ap = average_precision(&[2, 2, 1, 0, 0], 3, 1);
        assert!((ap - 1.0).abs() < 1e-12);
    }
}
