#![warn(missing_docs)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::indexing_slicing
    )
)]

//! `repsim-obs` — the workspace's dependency-free observability substrate.
//!
//! The paper's headline claims are *performance* claims (Table 6 /
//! Figures 6–7: query time across database representations), so every
//! hot layer of the workspace needs to be measurable without reaching
//! for crates.io (`tracing`, `metrics`, …) — the build is offline. This
//! crate provides the three primitives everything else instruments with:
//!
//! * **Spans** ([`span`]) — RAII guards with monotonic timing and
//!   parent nesting (thread-local stack). A span emits a start and an
//!   end event to the installed sinks; attributes attach typed values
//!   (`nnz`, chain order, …) to the end event.
//! * **Metrics** ([`metrics`]) — atomic counters and gauges plus
//!   fixed-bucket log₂ histograms (nanosecond latencies, nnz sizes),
//!   held in a process-wide [`metrics::Registry`] keyed by name. The
//!   naming convention is `repsim.<crate>.<unit>[.<detail>]`
//!   (`repsim.sparse.spgemm.symbolic_ns`).
//! * **Sinks** ([`sink`]) — pluggable event consumers: an in-memory
//!   collector (tests, `repsim profile`), a JSON-lines writer
//!   (`--trace-out`), and a discarding [`sink::NullSink`] whose only
//!   job is to flip the metrics on.
//!
//! **Zero cost when disabled.** Nothing records until a sink is
//! installed: [`enabled`] is one relaxed atomic load, and every span,
//! counter and histogram handle checks it first. With no sink the
//! instrumented kernels run the exact same instruction stream as before
//! plus a handful of predictable branches — the acceptance bar for this
//! crate is `< 2%` SpGEMM regression with observability off, and the
//! disabled path is pinned by tests (`counters untouched when no sink
//! is installed`).
//!
//! Leveled stderr logging ([`log`]) rides on the same infrastructure:
//! `REPSIM_LOG=error|warn|info|debug` (default `warn`) filters what
//! prints, and every emitted record is also forwarded to the sinks as a
//! point event so diagnostics interleave with the trace.
//!
//! [`json`] is a minimal JSON value parser used by the trace-schema
//! tests and the round-trip tests of the JSON-lines sink; it exists so
//! the workspace can *validate* its own machine-readable output without
//! a serde dependency.

pub mod json;
pub mod log;
pub mod metrics;
pub mod sink;
pub mod span;

pub use log::Level;
pub use metrics::{
    CounterHandle, DeltaBaseline, GaugeHandle, Histogram, HistogramHandle, HistogramSummary,
    Registry, Snapshot,
};
pub use sink::{
    clear_sinks, enabled, event_to_json, exclusive, install, remove_sink, render_tree, AttrValue,
    CollectSink, EventKind, JsonLinesSink, NullSink, Sink, TraceEvent,
};
pub use span::{point, span, SpanGuard};

use std::sync::OnceLock;
use std::time::Instant;

/// The process-wide monotonic epoch: every event timestamp is
/// nanoseconds since the first observability call in the process.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    // u64 nanoseconds cover ~584 years of process uptime.
    epoch.elapsed().as_nanos() as u64
}
