//! Leveled stderr logging (`REPSIM_LOG=error|warn|info|debug`).
//!
//! Replaces the ad-hoc `eprintln!` diagnostics scattered through the
//! CLI, repro bins and bench harness. A record at or below the active
//! level prints to **stderr** as `<level>: <message>` — machine-read
//! stdout (figure/table output) is never touched — and is additionally
//! forwarded to the installed sinks as a point event so diagnostics
//! interleave with the trace.
//!
//! The default level is `warn`, which keeps the pre-existing
//! `eprintln!("warning: …")` stderr output byte-identical.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or user-visible failures.
    Error = 0,
    /// Suspicious but non-fatal conditions (default threshold).
    Warn = 1,
    /// Progress and configuration notes.
    Info = 2,
    /// High-volume diagnostics (per-iteration residuals, …).
    Debug = 3,
}

impl Level {
    /// The lowercase name used in `REPSIM_LOG` and the JSON trace.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// The stderr prefix (`warning:` keeps historical output stable).
    fn prefix(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warning",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// 0..=3 = cached Level, UNSET = consult REPSIM_LOG on first use.
const UNSET: u8 = u8::MAX;
static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNSET);

/// The active threshold: records above it are dropped. Reads
/// `REPSIM_LOG` once (default `warn`); [`set_max_level`] overrides.
pub fn max_level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        3 => Level::Debug,
        _ => {
            let level = std::env::var("REPSIM_LOG")
                .ok()
                .as_deref()
                .and_then(Level::parse)
                .unwrap_or(Level::Warn);
            MAX_LEVEL.store(level as u8, Ordering::Relaxed);
            level
        }
    }
}

/// Overrides the threshold for the rest of the process (used by
/// `repsim --trace`, which implies `info`, and by tests).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether a record at `level` would be emitted — gate expensive
/// message formatting on this.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    level <= max_level()
}

/// Emits a log record: `<level>: <args>` to stderr (if `level` passes
/// the threshold) and a point event named `target` to the sinks (if
/// any are installed). Prefer the `log_*!` macros.
pub fn log(level: Level, target: &'static str, args: fmt::Arguments<'_>) {
    let to_stderr = log_enabled(level);
    let to_sinks = crate::sink::enabled();
    if !to_stderr && !to_sinks {
        return;
    }
    let message = args.to_string();
    if to_stderr {
        eprintln!("{}: {message}", level.prefix());
    }
    if to_sinks {
        crate::span::point(target, level, message);
    }
}

/// Logs at [`Level::Error`]: `log_error!("repsim.cli", "bad input: {e}")`.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($crate::Level::Error, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($crate::Level::Warn, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($crate::Level::Info, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($crate::Level::Debug, $target, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse(" debug "), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn set_max_level_overrides() {
        let _x = crate::sink::exclusive();
        set_max_level(Level::Debug);
        assert!(log_enabled(Level::Debug));
        set_max_level(Level::Error);
        assert!(!log_enabled(Level::Warn));
        set_max_level(Level::Warn);
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
    }

    #[test]
    fn records_forward_to_sinks_as_points() {
        let _x = crate::sink::exclusive();
        set_max_level(Level::Error); // silence stderr for this test
        let collect = std::sync::Arc::new(crate::sink::CollectSink::new());
        crate::sink::install(collect.clone());
        log_warn!("repsim.test.log", "n={}", 42);
        crate::sink::clear_sinks();
        set_max_level(Level::Warn);
        let events = collect.events();
        assert_eq!(events.len(), 1);
        match &events[0].kind {
            crate::sink::EventKind::Point {
                name,
                level,
                message,
            } => {
                assert_eq!(*name, "repsim.test.log");
                assert_eq!(*level, Level::Warn);
                assert_eq!(message, "n=42");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
}
