//! RAII timing spans with thread-local parent nesting.
//!
//! `let _s = span("repsim.sparse.spgemm");` opens a span: start time is
//! taken from [`crate::now_ns`], the parent is whatever span is open on
//! the same thread, and dropping the guard emits a `SpanEnd` carrying
//! the duration and any attached attributes. When no sink is installed
//! ([`crate::enabled`] is false) the guard is inert: no allocation, no
//! events, no thread-local traffic beyond one relaxed load.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::sink::{self, AttrValue, EventKind, TraceEvent};

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of open span ids on this thread; the top is the parent of
    /// the next span opened here. Spans opened inside `thread::scope`
    /// workers start fresh stacks — their parent linkage is the worker
    /// thread's, by design (the tree renderer attaches orphans as
    /// roots, and aggregate metrics stay deterministic regardless).
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Opens a span named `name` (`repsim.<crate>.<unit>`); the returned
/// guard closes it on drop. Inert when observability is disabled.
#[must_use = "a span measures the time until the guard is dropped"]
pub fn span(name: &'static str) -> SpanGuard {
    if !sink::enabled() {
        return SpanGuard { inner: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    let start_ns = crate::now_ns();
    sink::record(&TraceEvent {
        t_ns: start_ns,
        thread: sink::thread_ordinal(),
        kind: EventKind::SpanStart { id, parent, name },
    });
    SpanGuard {
        inner: Some(ActiveSpan {
            id,
            parent,
            name,
            start_ns,
            attrs: Vec::new(),
        }),
    }
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start_ns: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// RAII guard returned by [`span`]; emits the `SpanEnd` event on drop.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Attaches a typed attribute, reported on the span's end event.
    /// No-op on an inert guard.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(a) = self.inner.as_mut() {
            a.attrs.push((key, value.into()));
        }
    }

    /// Whether this guard is actually recording (a sink was installed
    /// when it was opened). Lets callers skip expensive attribute
    /// construction.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.inner.take() else { return };
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards are dropped in reverse open order on a thread, so
            // the top of the stack is this span; be defensive anyway.
            match s.last() {
                Some(&top) if top == a.id => {
                    s.pop();
                }
                _ => s.retain(|&x| x != a.id),
            }
        });
        let end_ns = crate::now_ns();
        sink::record(&TraceEvent {
            t_ns: end_ns,
            thread: sink::thread_ordinal(),
            kind: EventKind::SpanEnd {
                id: a.id,
                parent: a.parent,
                name: a.name,
                dur_ns: end_ns.saturating_sub(a.start_ns),
                attrs: a.attrs,
            },
        });
    }
}

/// Emits a point event (budget trip, failpoint, tier transition, …) to
/// the installed sinks. Callers should gate message construction on
/// [`crate::enabled`]; this function re-checks and is a no-op when
/// disabled.
pub fn point(name: &'static str, level: crate::Level, message: String) {
    if !sink::enabled() {
        return;
    }
    sink::record(&TraceEvent {
        t_ns: crate::now_ns(),
        thread: sink::thread_ordinal(),
        kind: EventKind::Point {
            name,
            level,
            message,
        },
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use std::sync::Arc;

    #[test]
    fn disabled_span_is_inert() {
        let _x = sink::exclusive();
        let mut g = span("repsim.test.inert");
        assert!(!g.is_active());
        g.attr("k", 1u64);
        drop(g);
        // Nothing to assert against — the contract is that no event was
        // recorded, which the enabled test below verifies by contrast.
    }

    #[test]
    fn spans_nest_and_carry_attrs() {
        let _x = sink::exclusive();
        let collect = Arc::new(CollectSink::new());
        sink::install(collect.clone());
        {
            let mut outer = span("repsim.test.outer");
            outer.attr("rows", 3usize);
            {
                let _inner = span("repsim.test.inner");
            }
            point("repsim.test.note", crate::Level::Info, "hi".to_owned());
        }
        sink::clear_sinks();
        let events = collect.events();
        assert_eq!(events.len(), 5, "{events:?}");
        let (mut outer_id, mut inner_parent) = (None, None);
        for ev in &events {
            match &ev.kind {
                EventKind::SpanStart { id, parent, name } => {
                    if *name == "repsim.test.outer" {
                        outer_id = Some(*id);
                        assert_eq!(*parent, None);
                    } else if *name == "repsim.test.inner" {
                        inner_parent = Some(*parent);
                    }
                }
                EventKind::SpanEnd { name, attrs, .. } => {
                    if *name == "repsim.test.outer" {
                        assert_eq!(attrs, &[("rows", AttrValue::U64(3))]);
                    }
                }
                EventKind::Point { message, .. } => assert_eq!(message, "hi"),
            }
        }
        assert_eq!(inner_parent, Some(outer_id), "inner nests under outer");
    }

    #[test]
    fn end_order_is_child_before_parent() {
        let _x = sink::exclusive();
        let collect = Arc::new(CollectSink::new());
        sink::install(collect.clone());
        {
            let _a = span("repsim.test.a");
            let _b = span("repsim.test.b");
        }
        sink::clear_sinks();
        let ends: Vec<&str> = collect
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::SpanEnd { name, .. } => Some(*name),
                _ => None,
            })
            .collect();
        assert_eq!(ends, vec!["repsim.test.b", "repsim.test.a"]);
    }
}
