//! Atomic counters, gauges and log₂ histograms in a global registry.
//!
//! Metric names follow `repsim.<crate>.<unit>[.<detail>]` — e.g.
//! `repsim.sparse.spgemm.calls`, `repsim.metawalk.cache.hit`,
//! `repsim.sparse.spgemm.symbolic_ns`. Instrumented code declares a
//! `static` handle ([`CounterHandle`] / [`HistogramHandle`]) and calls
//! `add`/`record`; the handle resolves its registry slot once and is a
//! no-op while observability is disabled (see [`crate::enabled`]).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// A monotonically increasing counter.
#[derive(Default, Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A settable signed gauge (last-write-wins).
#[derive(Default, Debug)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: one per power of two of a `u64`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log₂ histogram over `u64` samples (nanosecond
/// latencies, nnz sizes). Bucket `i` counts samples in
/// `[2^i, 2^{i+1})`, except bucket 0 which also absorbs zero — so the
/// boundaries are `[0,2), [2,4), [4,8), …` and no sample is ever out of
/// range. Recording is two relaxed atomic adds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// The bucket index a value lands in: `floor(log2(v))`, with 0 and
    /// 1 both in bucket 0.
    pub fn bucket_index(v: u64) -> usize {
        if v < 2 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// The half-open `[lo, hi)` range of bucket `i` (bucket 63's upper
    /// bound saturates at `u64::MAX`).
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        let lo = if i == 0 { 0 } else { 1u64 << i };
        let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
        (lo, hi)
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (saturating only at `u64` wrap).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The per-bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// The process-wide metric registry: named slots created on first use,
/// never removed (handles hold `Arc`s, so [`Registry::reset`] zeroes
/// values in place instead of dropping slots).
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// The global registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::default)
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(lock(&self.counters).entry(name).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(lock(&self.gauges).entry(name).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(lock(&self.histograms).entry(name).or_default())
    }

    /// Zeroes every metric in place (handles stay valid). Used between
    /// benchmark phases to take deltas and by tests.
    pub fn reset(&self) {
        for c in lock(&self.counters).values() {
            c.reset();
        }
        for g in lock(&self.gauges).values() {
            g.reset();
        }
        for h in lock(&self.histograms).values() {
            h.reset();
        }
    }

    /// A point-in-time snapshot of every metric with a nonzero value,
    /// sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(&k, v)| (k, v.get()))
                .filter(|&(_, v)| v != 0)
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(&k, v)| (k, v.get()))
                .filter(|&(_, v)| v != 0)
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(&k, v)| (k, HistogramSummary::from_parts(v.buckets(), v.sum())))
                .filter(|(_, s)| s.count != 0)
                .collect(),
        }
    }

    /// A snapshot of what changed since the previous call with the same
    /// `base`: counters and histograms report the *increase* since then
    /// (monotonic deltas), gauges report their current value (they are
    /// last-write-wins, so a delta would be meaningless). The baseline
    /// is advanced in place. If a metric went backwards — the registry
    /// was [`Registry::reset`] between calls — the delta saturates to
    /// zero and the baseline re-anchors at the new value.
    pub fn delta_snapshot(&self, base: &mut DeltaBaseline) -> Snapshot {
        Snapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(&k, v)| {
                    let now = v.get();
                    let prev = base.counters.insert(k, now).unwrap_or(0);
                    (k, now.saturating_sub(prev))
                })
                .filter(|&(_, v)| v != 0)
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(&k, v)| (k, v.get()))
                .filter(|&(_, v)| v != 0)
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(&k, v)| {
                    let buckets = v.buckets();
                    let sum = v.sum();
                    let prev = base
                        .histograms
                        .insert(k, (buckets, sum))
                        .unwrap_or(([0; HISTOGRAM_BUCKETS], 0));
                    let delta: [u64; HISTOGRAM_BUCKETS] =
                        std::array::from_fn(|i| buckets[i].saturating_sub(prev.0[i]));
                    (
                        k,
                        HistogramSummary::from_parts(delta, sum.saturating_sub(prev.1)),
                    )
                })
                .filter(|(_, s)| s.count != 0)
                .collect(),
        }
    }
}

/// Remembered previous metric values for [`Registry::delta_snapshot`].
/// One baseline per consumer (stats stream, metrics journal) — deltas
/// are relative to *this* baseline, so independent consumers don't
/// steal each other's increments.
#[derive(Default)]
pub struct DeltaBaseline {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, ([u64; HISTOGRAM_BUCKETS], u64)>,
}

/// Aggregates of one histogram at snapshot time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Recorded samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Mean sample.
    pub mean: f64,
    /// Per-bucket counts (log₂ buckets, see [`Histogram::bucket_bounds`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSummary {
    /// A summary from raw bucket counts and a sample sum; `count` and
    /// `mean` are derived.
    pub fn from_parts(buckets: [u64; HISTOGRAM_BUCKETS], sum: u64) -> HistogramSummary {
        let count: u64 = buckets.iter().sum();
        let mean = if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        };
        HistogramSummary {
            count,
            sum,
            mean,
            buckets,
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) estimated from the log₂ buckets:
    /// nearest-rank to find the bucket, then linear interpolation inside
    /// its `[lo, hi)` range. Exact to within one bucket width; 0 when
    /// the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut below = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 && below + c >= target {
                let (lo, hi) = Histogram::bucket_bounds(i);
                let frac = (target - below) as f64 / c as f64;
                return lo + ((hi - lo) as f64 * frac) as u64;
            }
            below += c;
        }
        // count and buckets disagree (concurrent recording mid-read);
        // report the top boundary rather than a phantom value.
        Histogram::bucket_bounds(HISTOGRAM_BUCKETS - 1).1
    }
}

/// A rendered view of the registry (see [`Registry::snapshot`]).
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` per nonzero counter.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` per nonzero gauge.
    pub gauges: Vec<(&'static str, i64)>,
    /// `(name, summary)` per non-empty histogram.
    pub histograms: Vec<(&'static str, HistogramSummary)>,
}

impl Snapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// A fixed-width human-readable table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("(no metrics recorded)\n");
            return out;
        }
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        for &(name, v) in &self.counters {
            let _ = writeln!(out, "  {name:<width$}  {v}");
        }
        for &(name, v) in &self.gauges {
            let _ = writeln!(out, "  {name:<width$}  {v}");
        }
        for &(name, s) in &self.histograms {
            let _ = writeln!(
                out,
                "  {name:<width$}  count {}  sum {}  mean {:.1}  p50 {}  p99 {}",
                s.count,
                s.sum,
                s.mean,
                s.quantile(0.50),
                s.quantile(0.99)
            );
        }
        out
    }

    /// The snapshot as a JSON object (one `metrics` trace line / the
    /// timing files' `metrics` field).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, &(name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, &(name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, &(name, s)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"sum\":{},\"mean\":{:.3},\
                 \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                s.count,
                s.sum,
                s.mean,
                s.quantile(0.50),
                s.quantile(0.90),
                s.quantile(0.99)
            );
            let mut first = true;
            for (b, &c) in s.buckets.iter().enumerate() {
                if c != 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(out, "[{b},{c}]");
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// A lazily resolved counter slot, declared `static` at the call site.
/// All operations are no-ops while observability is disabled.
pub struct CounterHandle {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl CounterHandle {
    /// A handle for the counter named `name`.
    pub const fn new(name: &'static str) -> CounterHandle {
        CounterHandle {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` if observability is enabled.
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.resolve().add(n);
        }
    }

    fn resolve(&self) -> &Arc<Counter> {
        self.cell
            .get_or_init(|| Registry::global().counter(self.name))
    }
}

/// A lazily resolved gauge slot, declared `static` at the call site.
/// All operations are no-ops while observability is disabled.
pub struct GaugeHandle {
    name: &'static str,
    cell: OnceLock<Arc<Gauge>>,
}

impl GaugeHandle {
    /// A handle for the gauge named `name`.
    pub const fn new(name: &'static str) -> GaugeHandle {
        GaugeHandle {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sets the gauge if observability is enabled.
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.resolve().set(v);
        }
    }

    fn resolve(&self) -> &Arc<Gauge> {
        self.cell
            .get_or_init(|| Registry::global().gauge(self.name))
    }
}

/// A lazily resolved histogram slot, declared `static` at the call
/// site. All operations are no-ops while observability is disabled.
pub struct HistogramHandle {
    name: &'static str,
    cell: OnceLock<Arc<Histogram>>,
}

impl HistogramHandle {
    /// A handle for the histogram named `name`.
    pub const fn new(name: &'static str) -> HistogramHandle {
        HistogramHandle {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records `v` if observability is enabled.
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.resolve().record(v);
        }
    }

    fn resolve(&self) -> &Arc<Histogram> {
        self.cell
            .get_or_init(|| Registry::global().histogram(self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 absorbs 0 and 1; from there, [2^i, 2^{i+1}).
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(7), 2);
        assert_eq!(Histogram::bucket_index(8), 3);
        assert_eq!(Histogram::bucket_index(1023), 9);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
        assert_eq!(Histogram::bucket_bounds(0), (0, 2));
        assert_eq!(Histogram::bucket_bounds(10), (1024, 2048));
        assert_eq!(Histogram::bucket_bounds(63), (1 << 63, u64::MAX));
        // Every boundary value lands in the bucket whose lower bound it is.
        for i in 1..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lower bound of {i}");
            if i < 63 {
                assert_eq!(Histogram::bucket_index(hi - 1), i, "upper bound of {i}");
                assert_eq!(Histogram::bucket_index(hi), i + 1, "first of {}", i + 1);
            }
        }
    }

    #[test]
    fn histogram_records_count_sum_buckets() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        let b = h.buckets();
        assert_eq!(b[0], 2);
        assert_eq!(b[1], 2);
        assert_eq!(b[10], 1);
        assert_eq!(b.iter().sum::<u64>(), 5);
        assert!((h.mean() - 206.0).abs() < 1e-9);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn registry_slots_are_shared_and_resettable() {
        let r = Registry::default();
        r.counter("repsim.test.calls").add(2);
        r.counter("repsim.test.calls").add(3);
        assert_eq!(r.counter("repsim.test.calls").get(), 5);
        r.gauge("repsim.test.level").set(-7);
        r.histogram("repsim.test.ns").record(100);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("repsim.test.calls", 5)]);
        assert_eq!(snap.gauges, vec![("repsim.test.level", -7)]);
        assert_eq!(snap.histograms.len(), 1);
        assert!(!snap.is_empty());
        let table = snap.render_table();
        assert!(table.contains("repsim.test.calls"), "{table}");
        let json = snap.render_json();
        assert!(json.contains("\"repsim.test.ns\":{\"count\":1"), "{json}");
        r.reset();
        assert!(r.snapshot().is_empty());
        // The slot survives the reset (handles keep their Arcs).
        assert_eq!(r.counter("repsim.test.calls").get(), 0);
    }

    #[test]
    fn quantiles_on_known_distributions() {
        // Uniform 1..=1000: true p50 = 500 (bucket [256,512)), true
        // p99 = 990 (bucket [512,1024)). Log₂ resolution bounds the
        // estimate to the true value's bucket.
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = HistogramSummary::from_parts(h.buckets(), h.sum());
        assert_eq!(s.count, 1000);
        let p50 = s.quantile(0.50);
        assert!((256..=512).contains(&p50), "p50 {p50}");
        let p99 = s.quantile(0.99);
        assert!((512..=1024).contains(&p99), "p99 {p99}");
        assert!(s.quantile(0.0) <= s.quantile(0.5));
        assert!(s.quantile(0.5) <= s.quantile(1.0));
        assert!(s.quantile(1.0) <= 1024);

        // A point mass: every quantile stays inside that one bucket.
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(100);
        }
        let s = HistogramSummary::from_parts(h.buckets(), h.sum());
        for q in [0.01, 0.5, 0.9, 0.99, 1.0] {
            let v = s.quantile(q);
            assert!((64..=128).contains(&v), "q {q} -> {v}");
        }

        // Empty histogram.
        let s = HistogramSummary::from_parts([0; HISTOGRAM_BUCKETS], 0);
        assert_eq!(s.quantile(0.99), 0);

        // Bimodal: 90 fast samples at ~8, 10 slow at ~4096. p50 in the
        // fast mode's bucket, p99 in the slow mode's.
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(8);
        }
        for _ in 0..10 {
            h.record(4096);
        }
        let s = HistogramSummary::from_parts(h.buckets(), h.sum());
        let p50 = s.quantile(0.50);
        assert!((8..=16).contains(&p50), "p50 {p50}");
        let p99 = s.quantile(0.99);
        assert!((4096..=8192).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn delta_snapshot_reports_increments_and_reanchors() {
        let r = Registry::default();
        let mut base = DeltaBaseline::default();
        r.counter("repsim.test.delta.calls").add(5);
        r.histogram("repsim.test.delta.ns").record(100);
        r.histogram("repsim.test.delta.ns").record(200);
        r.gauge("repsim.test.delta.depth").set(3);

        let d1 = r.delta_snapshot(&mut base);
        assert_eq!(d1.counters, vec![("repsim.test.delta.calls", 5)]);
        assert_eq!(d1.gauges, vec![("repsim.test.delta.depth", 3)]);
        assert_eq!(d1.histograms.len(), 1);
        assert_eq!(d1.histograms[0].1.count, 2);
        assert_eq!(d1.histograms[0].1.sum, 300);

        // Nothing changed: counters/histograms vanish, gauges persist.
        let d2 = r.delta_snapshot(&mut base);
        assert!(d2.counters.is_empty());
        assert!(d2.histograms.is_empty());
        assert_eq!(d2.gauges, vec![("repsim.test.delta.depth", 3)]);

        // New activity shows up as its own delta.
        r.counter("repsim.test.delta.calls").add(2);
        r.histogram("repsim.test.delta.ns").record(50);
        let d3 = r.delta_snapshot(&mut base);
        assert_eq!(d3.counters, vec![("repsim.test.delta.calls", 2)]);
        assert_eq!(d3.histograms[0].1.count, 1);
        assert_eq!(d3.histograms[0].1.sum, 50);

        // A reset sends values backwards: saturate to zero, re-anchor.
        r.reset();
        let d4 = r.delta_snapshot(&mut base);
        assert!(d4.counters.is_empty());
        assert!(d4.histograms.is_empty());
        r.counter("repsim.test.delta.calls").add(1);
        let d5 = r.delta_snapshot(&mut base);
        assert_eq!(d5.counters, vec![("repsim.test.delta.calls", 1)]);
    }

    #[test]
    fn render_json_carries_quantiles_and_sparse_buckets() {
        let r = Registry::default();
        r.histogram("repsim.test.render.ns").record(3);
        r.histogram("repsim.test.render.ns").record(1000);
        let json = r.snapshot().render_json();
        assert!(json.contains("\"p50\":"), "{json}");
        assert!(json.contains("\"p90\":"), "{json}");
        assert!(json.contains("\"p99\":"), "{json}");
        // Sparse bucket pairs: [index, count] only for nonzero buckets.
        assert!(json.contains("\"buckets\":[[1,1],[9,1]]"), "{json}");
    }

    #[test]
    fn handles_are_noops_while_disabled() {
        static CALLS: CounterHandle = CounterHandle::new("repsim.test.disabled.calls");
        static NS: HistogramHandle = HistogramHandle::new("repsim.test.disabled.ns");
        let _x = crate::sink::exclusive();
        assert!(!crate::enabled());
        CALLS.add(10);
        NS.record(10);
        assert_eq!(
            Registry::global()
                .counter("repsim.test.disabled.calls")
                .get(),
            0
        );
        assert_eq!(
            Registry::global()
                .histogram("repsim.test.disabled.ns")
                .count(),
            0
        );
    }
}
