//! A minimal JSON value parser.
//!
//! Exists so the workspace can *validate* its own machine-readable
//! output (the `--trace-out` JSON-lines stream, repro timing files,
//! `BENCH_spgemm.json`) without a serde dependency — the build is
//! offline. Supports the full JSON grammar the emitters use: objects,
//! arrays, strings with `\uXXXX` escapes, numbers, booleans, null.
//! Not a general-purpose parser: numbers are held as `f64`, and input
//! is expected to be well-formed machine output, not hostile.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup: `v.get("attrs")` on an object, else `None`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// A parse failure: byte offset + message.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing whitespace is allowed,
/// trailing content is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError {
            at: pos,
            msg: "trailing content",
        });
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while let Some(&c) = b.get(*pos) {
        if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn err(at: usize, msg: &'static str) -> ParseError {
    ParseError { at, msg }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_num(b, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &'static str, v: Json) -> Result<Json, ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while b
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| err(start, "invalid number"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs are not emitted by our own
                        // writers; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar. Find its byte length from
                // the leading byte; input is valid UTF-8 (from &str).
                let len = match b[*pos] {
                    c if c < 0x80 => 1,
                    c if c < 0xE0 => 2,
                    c if c < 0xF0 => 3,
                    _ => 4,
                };
                let slice = b
                    .get(*pos..*pos + len)
                    .ok_or_else(|| err(*pos, "truncated utf-8"))?;
                out.push_str(std::str::from_utf8(slice).map_err(|_| err(*pos, "bad utf-8"))?);
                *pos += len;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':'"));
        }
        *pos += 1;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".to_owned()));
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".to_owned()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert!(v.get("d").unwrap().as_obj().unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn roundtrips_sink_event_json() {
        use crate::log::Level;
        use crate::sink::{event_to_json, AttrValue, EventKind, TraceEvent};
        let ev = TraceEvent {
            t_ns: 123,
            thread: 1,
            kind: EventKind::SpanEnd {
                id: 9,
                parent: Some(4),
                name: "repsim.sparse.spgemm",
                dur_ns: 77,
                attrs: vec![
                    ("nnz", AttrValue::U64(42)),
                    ("est_flops", AttrValue::F64(2.5)),
                    ("order", AttrValue::Str("((0 1) 2)".to_owned())),
                ],
            },
        };
        let v = parse(&event_to_json(&ev)).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("span_end"));
        assert_eq!(v.get("id").unwrap().as_num(), Some(9.0));
        assert_eq!(v.get("parent").unwrap().as_num(), Some(4.0));
        assert_eq!(v.get("dur_ns").unwrap().as_num(), Some(77.0));
        let attrs = v.get("attrs").unwrap();
        assert_eq!(attrs.get("nnz").unwrap().as_num(), Some(42.0));
        assert_eq!(attrs.get("est_flops").unwrap().as_num(), Some(2.5));
        assert_eq!(attrs.get("order").unwrap().as_str(), Some("((0 1) 2)"));

        let pt = TraceEvent {
            t_ns: 5,
            thread: 0,
            kind: EventKind::Point {
                name: "repsim.sparse.budget.trip",
                level: Level::Warn,
                message: "deadline \"now\"".to_owned(),
            },
        };
        let v = parse(&event_to_json(&pt)).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("event"));
        assert_eq!(v.get("level").unwrap().as_str(), Some("warn"));
        assert_eq!(v.get("message").unwrap().as_str(), Some("deadline \"now\""));
    }
}
