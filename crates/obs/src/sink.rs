//! Pluggable trace-event sinks and the global enable switch.
//!
//! Observability is **off** until a sink is installed: [`enabled`] is
//! one relaxed atomic load, checked first by every span, counter and
//! histogram handle, so uninstrumented runs pay only that branch.
//! Multiple sinks may be live at once (e.g. `repsim profile` collects
//! in memory while `--trace-out` streams JSON lines to a file).

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use crate::log::Level;

/// A typed span attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// An unsigned integer (counts, sizes, ids).
    U64(u64),
    /// A float (estimates, scores).
    F64(f64),
    /// A string (chain orders, walk texts).
    Str(String),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> AttrValue {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> AttrValue {
        AttrValue::U64(v as u64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> AttrValue {
        AttrValue::F64(v)
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_owned())
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> AttrValue {
        AttrValue::U64(u64::from(v))
    }
}

/// One observability event, timestamped against [`crate::now_ns`].
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the process epoch.
    pub t_ns: u64,
    /// Small per-process thread ordinal (not the OS thread id).
    pub thread: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The event payload.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A span opened.
    SpanStart {
        /// Process-unique span id.
        id: u64,
        /// The enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Span name (`repsim.<crate>.<unit>`).
        name: &'static str,
    },
    /// A span closed.
    SpanEnd {
        /// Process-unique span id.
        id: u64,
        /// The enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Span name (`repsim.<crate>.<unit>`).
        name: &'static str,
        /// Wall-clock duration.
        dur_ns: u64,
        /// Attributes attached while the span was open.
        attrs: Vec<(&'static str, AttrValue)>,
    },
    /// A point event: a budget trip, a failpoint firing, a degradation
    /// tier transition, a convergence residual, a log record.
    Point {
        /// Event name (`repsim.<crate>.<unit>`).
        name: &'static str,
        /// Severity.
        level: Level,
        /// Human-readable payload.
        message: String,
    },
}

/// A consumer of [`TraceEvent`]s. Implementations must tolerate
/// concurrent `record` calls (instrumented kernels emit from scoped
/// worker threads).
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn record(&self, ev: &TraceEvent);
    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
}

static ANY_SINK: AtomicBool = AtomicBool::new(false);

fn sinks() -> &'static RwLock<Vec<Arc<dyn Sink>>> {
    static SINKS: std::sync::OnceLock<RwLock<Vec<Arc<dyn Sink>>>> = std::sync::OnceLock::new();
    SINKS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Whether any sink is installed. One relaxed load — the gate every
/// instrumentation site checks first.
#[inline]
pub fn enabled() -> bool {
    ANY_SINK.load(Ordering::Relaxed)
}

/// Installs a sink; events flow to it until [`remove_sink`] (or
/// [`clear_sinks`]) drops it. Installing the first sink flips
/// [`enabled`] on.
pub fn install(sink: Arc<dyn Sink>) {
    let mut s = sinks().write().unwrap_or_else(|e| e.into_inner());
    s.push(sink);
    ANY_SINK.store(true, Ordering::Relaxed);
}

/// Removes a previously installed sink (matched by `Arc` identity) and
/// flushes it.
pub fn remove_sink(sink: &Arc<dyn Sink>) {
    let mut s = sinks().write().unwrap_or_else(|e| e.into_inner());
    s.retain(|x| !Arc::ptr_eq(x, sink));
    ANY_SINK.store(!s.is_empty(), Ordering::Relaxed);
    sink.flush();
}

/// Removes and flushes every installed sink, flipping [`enabled`] off.
pub fn clear_sinks() {
    let drained: Vec<Arc<dyn Sink>> = {
        let mut s = sinks().write().unwrap_or_else(|e| e.into_inner());
        ANY_SINK.store(false, Ordering::Relaxed);
        std::mem::take(&mut *s)
    };
    for s in drained {
        s.flush();
    }
}

/// Records `ev` to every installed sink. Callers should check
/// [`enabled`] first and build the event only when it returns true.
pub fn record(ev: &TraceEvent) {
    let s = sinks().read().unwrap_or_else(|e| e.into_inner());
    for sink in s.iter() {
        sink.record(ev);
    }
}

/// A small per-process ordinal for the calling thread (stable within
/// the thread's lifetime; used instead of the unstable OS thread id).
pub fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

/// Serializes tests (and other exclusive users) that install sinks:
/// the global sink list is process state, so concurrent tests would
/// see each other's events. Clears all sinks on acquisition *and* on
/// drop.
pub fn exclusive() -> ExclusiveObs {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    clear_sinks();
    ExclusiveObs { _guard: guard }
}

/// RAII guard from [`exclusive`].
pub struct ExclusiveObs {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for ExclusiveObs {
    fn drop(&mut self) {
        clear_sinks();
    }
}

/// Discards every event. Its only effect is flipping [`enabled`] on,
/// which turns on metric recording — the cheapest way to collect
/// counters/histograms (bench runs, repro timing files) without
/// buffering a trace.
#[derive(Default, Debug)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _ev: &TraceEvent) {}
}

/// Buffers every event in memory; used by tests and `repsim profile`.
#[derive(Default)]
pub struct CollectSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> CollectSink {
        CollectSink::default()
    }

    /// A copy of everything recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Drops everything recorded so far.
    pub fn clear(&self) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

impl Sink for CollectSink {
    fn record(&self, ev: &TraceEvent) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(ev.clone());
    }
}

/// Streams one JSON object per event to a writer (the `--trace-out`
/// format). Lines are self-contained; a truncated file loses only its
/// tail. See `tests/trace_schema.rs` for the schema the workspace
/// holds itself to.
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    /// Creates (truncates) `path` and streams events to it.
    pub fn create(path: &str) -> std::io::Result<JsonLinesSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonLinesSink::from_writer(Box::new(
            std::io::BufWriter::new(file),
        )))
    }

    /// Streams events to an arbitrary writer.
    pub fn from_writer(out: Box<dyn Write + Send>) -> JsonLinesSink {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }

    /// Writes one raw (already-JSON) line — the CLI appends a final
    /// `{"type":"metrics",…}` snapshot line through this.
    pub fn write_line(&self, json_object: &str) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{json_object}");
    }
}

impl Sink for JsonLinesSink {
    fn record(&self, ev: &TraceEvent) {
        self.write_line(&event_to_json(ev));
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn attr_to_json(v: &AttrValue) -> String {
    match v {
        AttrValue::U64(n) => n.to_string(),
        AttrValue::F64(f) if f.is_finite() => format!("{f}"),
        AttrValue::F64(_) => "null".to_owned(),
        AttrValue::Str(s) => format!("\"{}\"", json_escape(s)),
    }
}

/// Renders one event as a single-line JSON object.
pub fn event_to_json(ev: &TraceEvent) -> String {
    let mut out = String::with_capacity(128);
    match &ev.kind {
        EventKind::SpanStart { id, parent, name } => {
            out.push_str(&format!(
                "{{\"type\":\"span_start\",\"id\":{id},\"parent\":{},\"name\":\"{}\"",
                parent.map_or("null".to_owned(), |p| p.to_string()),
                json_escape(name),
            ));
        }
        EventKind::SpanEnd {
            id,
            parent,
            name,
            dur_ns,
            attrs,
        } => {
            out.push_str(&format!(
                "{{\"type\":\"span_end\",\"id\":{id},\"parent\":{},\"name\":\"{}\",\"dur_ns\":{dur_ns},\"attrs\":{{",
                parent.map_or("null".to_owned(), |p| p.to_string()),
                json_escape(name),
            ));
            for (i, (k, v)) in attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", json_escape(k), attr_to_json(v)));
            }
            out.push('}');
        }
        EventKind::Point {
            name,
            level,
            message,
        } => {
            out.push_str(&format!(
                "{{\"type\":\"event\",\"name\":\"{}\",\"level\":\"{}\",\"message\":\"{}\"",
                json_escape(name),
                level.name(),
                json_escape(message),
            ));
        }
    }
    out.push_str(&format!(",\"t_ns\":{},\"thread\":{}}}", ev.t_ns, ev.thread));
    out
}

/// Renders the span tree of a collected event stream: spans indented
/// under their parents in start order, point events listed after. The
/// human-readable half of `repsim profile` and `--trace`.
pub fn render_tree(events: &[TraceEvent]) -> String {
    struct Node {
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
        attrs: Vec<(&'static str, AttrValue)>,
        children: Vec<usize>,
    }
    let mut nodes: Vec<Node> = Vec::new();
    let mut parents: Vec<Option<u64>> = Vec::new();
    let mut by_id: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    let mut points: Vec<&TraceEvent> = Vec::new();
    for ev in events {
        match &ev.kind {
            EventKind::SpanEnd {
                id,
                parent,
                name,
                dur_ns,
                attrs,
            } => {
                let idx = nodes.len();
                nodes.push(Node {
                    name,
                    start_ns: ev.t_ns.saturating_sub(*dur_ns),
                    dur_ns: *dur_ns,
                    attrs: attrs.clone(),
                    children: Vec::new(),
                });
                parents.push(*parent);
                by_id.insert(*id, idx);
            }
            EventKind::Point { .. } => points.push(ev),
            EventKind::SpanStart { .. } => {}
        }
    }
    // Children close (and are thus indexed) before their parents, so
    // linking needs a second pass; spans whose parent never closed (or
    // workers spawned outside any span) attach as roots.
    for (idx, parent) in parents.iter().enumerate() {
        match parent.and_then(|p| by_id.get(&p).copied()) {
            Some(p) => nodes[p].children.push(idx),
            None => roots.push(idx),
        }
    }
    // Sort every child list (and the roots) by start time.
    let starts: Vec<u64> = nodes.iter().map(|n| n.start_ns).collect();
    for n in &mut nodes {
        n.children.sort_by_key(|&c| starts[c]);
    }
    roots.sort_by_key(|&r| starts[r]);

    fn fmt_dur(ns: u64) -> String {
        if ns >= 1_000_000 {
            format!("{:.2} ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            format!("{:.1} µs", ns as f64 / 1e3)
        } else {
            format!("{ns} ns")
        }
    }
    fn emit(nodes: &[Node], idx: usize, depth: usize, out: &mut String) {
        let n = &nodes[idx];
        let indent = "  ".repeat(depth);
        out.push_str(&format!("{indent}{} [{}]", n.name, fmt_dur(n.dur_ns)));
        if !n.attrs.is_empty() {
            let rendered: Vec<String> = n.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!("  {{{}}}", rendered.join(", ")));
        }
        out.push('\n');
        for &c in &n.children {
            emit(nodes, c, depth + 1, out);
        }
    }
    let mut out = String::new();
    for &r in &roots {
        emit(&nodes, r, 0, &mut out);
    }
    if !points.is_empty() {
        out.push_str("events:\n");
        for ev in points {
            if let EventKind::Point {
                name,
                level,
                message,
            } = &ev.kind
            {
                out.push_str(&format!("  [{}] {name}: {message}\n", level.name()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_flips_enabled_and_clear_restores() {
        let _x = exclusive();
        assert!(!enabled());
        let sink: Arc<dyn Sink> = Arc::new(NullSink);
        install(Arc::clone(&sink));
        assert!(enabled());
        remove_sink(&sink);
        assert!(!enabled());
        install(Arc::new(NullSink));
        clear_sinks();
        assert!(!enabled());
    }

    #[test]
    fn collect_sink_buffers_events() {
        let c = CollectSink::new();
        let ev = TraceEvent {
            t_ns: 5,
            thread: 0,
            kind: EventKind::Point {
                name: "repsim.test.point",
                level: Level::Info,
                message: "hello".to_owned(),
            },
        };
        c.record(&ev);
        assert_eq!(c.events(), vec![ev]);
        c.clear();
        assert!(c.events().is_empty());
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn tree_renders_nesting_and_attrs() {
        let events = vec![
            TraceEvent {
                t_ns: 30,
                thread: 0,
                kind: EventKind::SpanEnd {
                    id: 2,
                    parent: Some(1),
                    name: "child",
                    dur_ns: 10,
                    attrs: vec![("nnz", AttrValue::U64(7))],
                },
            },
            TraceEvent {
                t_ns: 50,
                thread: 0,
                kind: EventKind::SpanEnd {
                    id: 1,
                    parent: None,
                    name: "root",
                    dur_ns: 40,
                    attrs: vec![],
                },
            },
            TraceEvent {
                t_ns: 60,
                thread: 0,
                kind: EventKind::Point {
                    name: "note",
                    level: Level::Warn,
                    message: "tripped".to_owned(),
                },
            },
        ];
        let tree = render_tree(&events);
        assert!(tree.contains("root [40 ns]"), "{tree}");
        assert!(tree.contains("  child [10 ns]  {nnz=7}"), "{tree}");
        assert!(tree.contains("[warn] note: tripped"), "{tree}");
    }
}
