//! Shared plumbing for the reproduction binaries.
//!
//! Every binary accepts a `--scale {tiny|small|paper}` argument (default
//! `small`). `small` keeps each experiment within laptop memory/time while
//! preserving the paper datasets' schemas, FDs, cardinality ratios and
//! degree skew; `paper` uses the published cardinalities (expect exact
//! SimRank to be replaced by the Monte-Carlo estimator there — the
//! original authors likewise capped their database sizes because of
//! SimRank's cubic cost).

use repsim_eval::spec::AlgorithmSpec;
use repsim_graph::Graph;

/// Experiment scale selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Fixture-sized; seconds end to end.
    Tiny,
    /// Default; preserves shape at laptop cost.
    Small,
    /// The paper's cardinalities.
    Paper,
}

impl Scale {
    /// Parses `--scale X` / `--scale=X` from `std::env::args`, defaulting
    /// to [`Scale::Small`].
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for (i, a) in args.iter().enumerate() {
            let value = if let Some(v) = a.strip_prefix("--scale=") {
                Some(v.to_owned())
            } else if a == "--scale" {
                args.get(i + 1).cloned()
            } else {
                None
            };
            if let Some(v) = value {
                return match v.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}; using small");
                        Scale::Small
                    }
                };
            }
        }
        Scale::Small
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Paper => "paper",
        }
    }

    /// Number of queries per workload at this scale (the paper uses 100).
    pub fn queries(self) -> usize {
        match self {
            Scale::Tiny => 15,
            Scale::Small => 100,
            Scale::Paper => 100,
        }
    }
}

/// Picks exact SimRank when the graph is small enough for the dense
/// quadratic iteration, otherwise the seeded Monte-Carlo estimator
/// (documented in the output).
pub fn simrank_spec(g: &Graph, tg: &Graph) -> AlgorithmSpec {
    const DENSE_LIMIT: usize = 4_600;
    if g.num_nodes().max(tg.num_nodes()) <= DENSE_LIMIT {
        AlgorithmSpec::SimRank
    } else {
        AlgorithmSpec::SimRankMc { seed: 7 }
    }
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;
    use repsim_datasets::citations::{self, CitationConfig};

    #[test]
    fn scale_names_and_queries() {
        assert_eq!(Scale::Small.name(), "small");
        assert_eq!(Scale::Paper.queries(), 100);
        assert_eq!(Scale::Tiny.queries(), 15);
    }

    #[test]
    fn simrank_spec_picks_exact_for_small_graphs() {
        let g = citations::snap(&CitationConfig::tiny());
        match simrank_spec(&g, &g) {
            AlgorithmSpec::SimRank => {}
            other => panic!("expected exact SimRank, got {other:?}"),
        }
    }
}
