#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::indexing_slicing
    )
)]
//! Shared plumbing for the reproduction binaries.
//!
//! Every binary accepts a `--scale {tiny|small|paper}` argument (default
//! `small`). `small` keeps each experiment within laptop memory/time while
//! preserving the paper datasets' schemas, FDs, cardinality ratios and
//! degree skew; `paper` uses the published cardinalities (expect exact
//! SimRank to be replaced by the Monte-Carlo estimator there — the
//! original authors likewise capped their database sizes because of
//! SimRank's cubic cost).
//!
//! The binaries also honor the global budget flags `--deadline-ms` and
//! `--max-nnz` (precedence: flag > `REPSIM_DEADLINE_MS` / `REPSIM_MAX_NNZ`
//! environment variables > unlimited, the same ladder as the CLI), and
//! their `main` functions return [`ReproError`] so a bad flag or a failed
//! step exits nonzero with a one-line diagnostic instead of panicking.

use std::fmt;

use repsim_eval::spec::AlgorithmSpec;
use repsim_graph::Graph;

/// A one-line failure from a reproduction binary, formatted like the
/// CLI's errors: just the message, no wrapping. Returned from
/// `main() -> Result<(), ReproError>` so the process exits nonzero.
#[derive(Clone, PartialEq, Eq)]
pub struct ReproError(String);

impl ReproError {
    /// Wraps a message.
    pub fn new(msg: impl Into<String>) -> ReproError {
        ReproError(msg.into())
    }
}

impl fmt::Display for ReproError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

// `main() -> Result` renders its error through `Debug`; delegating to
// `Display` keeps the diagnostic a single clean line.
impl fmt::Debug for ReproError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for ReproError {}

/// The value of `--name v` / `--name=v` in `args`, if present.
fn flag_value(args: &[String], name: &str) -> Option<String> {
    let long = format!("--{name}");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&format!("{long}=")) {
            return Some(v.to_owned());
        }
        if a == &long {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// Parses the shared reproduction flags from `std::env::args`: validates
/// `--scale` and installs the `--deadline-ms` / `--max-nnz` budget
/// overrides process-wide (routed to every budget-aware build through
/// [`repsim_sparse::Budget::from_env`]). Call once at the top of each
/// binary's `main`.
pub fn init_from_args() -> Result<Scale, ReproError> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(v) = flag_value(&args, "deadline-ms") {
        match v.parse::<u64>() {
            Ok(n) if n > 0 => repsim_sparse::Budget::set_global_deadline_ms(n),
            _ => {
                return Err(ReproError::new(format!(
                    "--deadline-ms expects a positive number of milliseconds, got {v:?}"
                )))
            }
        }
    }
    if let Some(v) = flag_value(&args, "max-nnz") {
        match v.parse::<usize>() {
            Ok(n) if n > 0 => repsim_sparse::Budget::set_global_max_nnz(n),
            _ => {
                return Err(ReproError::new(format!(
                    "--max-nnz expects a positive number of entries, got {v:?}"
                )))
            }
        }
    }
    Scale::parse(&args)
}

/// Experiment scale selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Fixture-sized; seconds end to end.
    Tiny,
    /// Default; preserves shape at laptop cost.
    Small,
    /// The paper's cardinalities.
    Paper,
}

impl Scale {
    /// Parses `--scale X` / `--scale=X` from an argv, defaulting to
    /// [`Scale::Small`]; an unknown scale is an error.
    fn parse(args: &[String]) -> Result<Scale, ReproError> {
        match flag_value(args, "scale").as_deref() {
            None => Ok(Scale::Small),
            Some("tiny") => Ok(Scale::Tiny),
            Some("small") => Ok(Scale::Small),
            Some("paper") => Ok(Scale::Paper),
            Some(other) => Err(ReproError::new(format!(
                "--scale expects tiny|small|paper, got {other:?}"
            ))),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Paper => "paper",
        }
    }

    /// Number of queries per workload at this scale (the paper uses 100).
    pub fn queries(self) -> usize {
        match self {
            Scale::Tiny => 15,
            Scale::Small => 100,
            Scale::Paper => 100,
        }
    }
}

/// Parses a meta-walk, turning a bad walk into a one-line error naming
/// the walk text.
pub fn parse_walk(g: &Graph, text: &str) -> Result<repsim_metawalk::MetaWalk, ReproError> {
    repsim_metawalk::MetaWalk::parse_in(g, text)
        .ok_or_else(|| ReproError::new(format!("bad meta-walk {text:?}")))
}

/// Runs the `repsim-check` §2.2 model lints over a freshly generated
/// dataset, printing each finding to stderr as a warning. Never fails:
/// a reproduction run should proceed even on a lint-dirty dataset, but
/// the operator should see what the static analyzer sees (the CLI's
/// `repsim check` applies the same analyzers gating-style).
pub fn lint_dataset(name: &str, g: &Graph) {
    for d in repsim_check::model::check_model(g) {
        // Leveled: stderr output stays `warning: dataset …`, and the
        // record lands in the trace when a sink is installed.
        repsim_obs::log_warn!("repsim.repro.lint", "dataset {name}: {d}");
    }
}

/// RAII per-binary timing. When `REPSIM_TIMING_DIR` is set, metric
/// collection is switched on (via a [`repsim_obs::NullSink`]) for the
/// guard's lifetime and, on drop, `TIMING_<bin>.json` is written into
/// that directory: wall-clock milliseconds plus the full metrics
/// snapshot (per-phase SpGEMM timings, chain/cache counters, …). With
/// the variable unset the guard is inert and the binary pays nothing.
pub struct TimingGuard {
    bin: &'static str,
    dir: Option<String>,
    start: std::time::Instant,
    sink: Option<std::sync::Arc<dyn repsim_obs::Sink>>,
}

/// Starts the per-binary [`TimingGuard`]; call once at the top of each
/// reproduction `main`, binding the guard for the whole run.
pub fn timing_guard(bin: &'static str) -> TimingGuard {
    let dir = std::env::var("REPSIM_TIMING_DIR").ok();
    let sink = dir.as_ref().map(|_| {
        repsim_obs::Registry::global().reset();
        let sink: std::sync::Arc<dyn repsim_obs::Sink> = std::sync::Arc::new(repsim_obs::NullSink);
        repsim_obs::install(std::sync::Arc::clone(&sink));
        sink
    });
    TimingGuard {
        bin,
        dir,
        start: std::time::Instant::now(),
        sink,
    }
}

impl Drop for TimingGuard {
    fn drop(&mut self) {
        let Some(dir) = self.dir.take() else { return };
        if let Some(sink) = self.sink.take() {
            repsim_obs::remove_sink(&sink);
        }
        let wall_ms = self.start.elapsed().as_secs_f64() * 1e3;
        let json = format!(
            "{{\"type\":\"timing\",\"bin\":\"{}\",\"wall_ms\":{wall_ms:.3},\"metrics\":{}}}\n",
            self.bin,
            repsim_obs::Registry::global().snapshot().render_json()
        );
        let path = std::path::Path::new(&dir).join(format!("TIMING_{}.json", self.bin));
        if let Err(e) = std::fs::write(&path, json) {
            repsim_obs::log_warn!(
                "repsim.repro.timing",
                "cannot write {}: {e}",
                path.display()
            );
        }
    }
}

/// Picks exact SimRank when the graph is small enough for the dense
/// quadratic iteration, otherwise the seeded Monte-Carlo estimator
/// (documented in the output).
pub fn simrank_spec(g: &Graph, tg: &Graph) -> AlgorithmSpec {
    const DENSE_LIMIT: usize = 4_600;
    if g.num_nodes().max(tg.num_nodes()) <= DENSE_LIMIT {
        AlgorithmSpec::SimRank
    } else {
        AlgorithmSpec::SimRankMc { seed: 7 }
    }
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;
    use repsim_datasets::citations::{self, CitationConfig};

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn scale_names_and_queries() {
        assert_eq!(Scale::Small.name(), "small");
        assert_eq!(Scale::Paper.queries(), 100);
        assert_eq!(Scale::Tiny.queries(), 15);
    }

    #[test]
    fn scale_parses_and_rejects_unknown() {
        assert_eq!(
            Scale::parse(&argv("bin --scale tiny")).unwrap(),
            Scale::Tiny
        );
        assert_eq!(
            Scale::parse(&argv("bin --scale=paper")).unwrap(),
            Scale::Paper
        );
        assert_eq!(Scale::parse(&argv("bin")).unwrap(), Scale::Small);
        let err = Scale::parse(&argv("bin --scale huge")).unwrap_err();
        assert_eq!(
            format!("{err}"),
            "--scale expects tiny|small|paper, got \"huge\""
        );
        // Debug renders the same single line (what `main() -> Result` prints).
        assert_eq!(format!("{err:?}"), format!("{err}"));
    }

    #[test]
    fn flag_values_support_both_spellings() {
        let args = argv("bin --deadline-ms 500 --max-nnz=9");
        assert_eq!(flag_value(&args, "deadline-ms").as_deref(), Some("500"));
        assert_eq!(flag_value(&args, "max-nnz").as_deref(), Some("9"));
        assert_eq!(flag_value(&args, "scale"), None);
    }

    #[test]
    fn simrank_spec_picks_exact_for_small_graphs() {
        let g = citations::snap(&CitationConfig::tiny());
        match simrank_spec(&g, &g) {
            AlgorithmSpec::SimRank => {}
            other => panic!("expected exact SimRank, got {other:?}"),
        }
    }
}
