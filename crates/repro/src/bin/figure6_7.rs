//! Figures 6–7: the DBLP↔SIGMOD-Record and WSU↔Alchemy entity
//! rearrangements, with their functional dependencies discovered from the
//! instances (Definition 8).

// Benchmark/reproduction binaries are operator-run tools, not library
// surface: a failed setup step should abort loudly, so the workspace
// panic-freedom lints are relaxed for this file.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use repsim_datasets::bibliographic::{self, BibliographicConfig};
use repsim_datasets::courses::{self, CourseConfig};
use repsim_graph::Graph;
use repsim_metawalk::FdSet;
use repsim_repro::{banner, ReproError};
use repsim_transform::{catalog, verify};

fn show_fds(g: &Graph, name: &str) {
    let fds = FdSet::discover(g, 3);
    println!("{name}: discovered FDs (meta-walks up to 3 labels):");
    for fd in fds.fds() {
        println!(
            "  {} → {}   via ({})",
            g.labels().name(fd.lhs()),
            g.labels().name(fd.rhs()),
            fd.via().display(g.labels())
        );
    }
    for chain in fds.chains() {
        let names: Vec<&str> = chain.labels.iter().map(|&l| g.labels().name(l)).collect();
        println!(
            "  maximal chain: {} (l_min = {})",
            names.join(" ≺ "),
            names[0]
        );
    }
}

fn main() -> Result<(), ReproError> {
    repsim_repro::init_from_args()?;
    let _timing = repsim_repro::timing_guard("figure6_7");
    banner("Figure 6: DBLP (paper–area) vs SIGMOD Record (proc–area)");
    let dblp = bibliographic::dblp(&BibliographicConfig::tiny());
    let sigm = catalog::dblp2sigm()
        .apply(&dblp)
        .map_err(|e| ReproError::new(format!("dblp2sigm: {e}")))?;
    println!(
        "DBLP: {} nodes / {} edges; SIGMOD Record: {} nodes / {} edges\n",
        dblp.num_nodes(),
        dblp.num_edges(),
        sigm.num_nodes(),
        sigm.num_edges()
    );
    show_fds(&dblp, "DBLP form (Fig 6a)");
    println!();
    show_fds(&sigm, "SIGMOD Record form (Fig 6b)");
    let invertible =
        verify::check_invertible(&*catalog::dblp2sigm(), &*catalog::sigm2dblp(), &dblp)
            .map_err(|e| ReproError::new(format!("dblp2sigm round trip: {e}")))?;
    println!("\nDBLP2SIGM round-trips losslessly (Theorem 5.1): {invertible}");
    assert!(invertible);

    banner("Figure 7: WSU (offer–subject) vs Alchemy UW-CSE (course–subject)");
    let wsu = courses::wsu(&CourseConfig::tiny());
    let alch = catalog::wsu2alch()
        .apply(&wsu)
        .map_err(|e| ReproError::new(format!("wsu2alch: {e}")))?;
    println!(
        "WSU: {} nodes / {} edges; Alchemy: {} nodes / {} edges\n",
        wsu.num_nodes(),
        wsu.num_edges(),
        alch.num_nodes(),
        alch.num_edges()
    );
    show_fds(&wsu, "WSU form (Fig 7a)");
    println!();
    show_fds(&alch, "Alchemy form (Fig 7b)");
    let invertible = verify::check_invertible(&*catalog::wsu2alch(), &*catalog::alch2wsu(), &wsu)
        .map_err(|e| ReproError::new(format!("wsu2alch round trip: {e}")))?;
    println!("\nWSU2ALCH round-trips losslessly (Theorem 5.1): {invertible}");
    assert!(invertible);
    Ok(())
}
