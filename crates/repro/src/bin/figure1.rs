//! Figure 1: the motivating example — RWR and SimRank rank *Star Wars V*
//! vs *Jumper* differently across the IMDb and Freebase representations
//! of the same facts.

// Benchmark/reproduction binaries are operator-run tools, not library
// surface: a failed setup step should abort loudly, so the workspace
// panic-freedom lints are relaxed for this file.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use repsim_baselines::{Rwr, SimRank};
use repsim_graph::{Graph, GraphBuilder};
use repsim_repro::{banner, ReproError};
use repsim_transform::catalog;

/// A Figure-1a-style IMDb fragment. Star Wars III and V share the Darth
/// Vader character; Star Wars III and Jumper share two actors.
fn imdb_fragment() -> Graph {
    let mut b = GraphBuilder::new();
    let actor = b.entity_label("actor");
    let film = b.entity_label("film");
    let ch = b.entity_label("char");
    let hc = b.entity(actor, "H. Christensen");
    let slj = b.entity(actor, "S. L. Jackson");
    let hf = b.entity(actor, "H. Ford");
    let dp = b.entity(actor, "D. Prowse");
    let sw3 = b.entity(film, "Star Wars III");
    let sw5 = b.entity(film, "Star Wars V");
    let jumper = b.entity(film, "Jumper");
    for (a, c, f) in [
        (hc, "Anakin Skywalker", sw3),
        (hc, "Darth Vader", sw3),
        (slj, "Mace Windu", sw3),
        (hf, "Han Solo", sw5),
        (dp, "Darth Vader", sw5),
        (hc, "David Rice", jumper),
        (slj, "Roland Cox", jumper),
    ] {
        let cn = b.entity(ch, c);
        b.edge_dedup(a, cn).expect("valid");
        b.edge_dedup(cn, f).expect("valid");
        b.edge_dedup(a, f).expect("valid");
    }
    b.build()
}

fn report(g: &Graph, name: &str) -> (f64, f64, f64, f64) {
    let sw3 = g.entity_by_name("film", "Star Wars III").expect("present");
    let sw5 = g.entity_by_name("film", "Star Wars V").expect("present");
    let jumper = g.entity_by_name("film", "Jumper").expect("present");
    let rwr = Rwr::new(g);
    let scores = rwr.scores(sw3);
    let (r5, rj) = (scores[sw5.index()], scores[jumper.index()]);
    let mut sr = SimRank::new(g);
    let (s5, sj) = (sr.score(sw3, sw5), sr.score(sw3, jumper));
    println!("{name}:");
    println!("  RWR(SW3 → SW5)     = {r5:.4}   RWR(SW3 → Jumper)     = {rj:.4}");
    println!("  SimRank(SW3, SW5)  = {s5:.4}   SimRank(SW3, Jumper)  = {sj:.4}");
    println!(
        "  RWR prefers {}; SimRank prefers {}",
        if r5 > rj { "Star Wars V" } else { "Jumper" },
        if s5 > sj { "Star Wars V" } else { "Jumper" },
    );
    (r5, rj, s5, sj)
}

fn main() -> Result<(), ReproError> {
    repsim_repro::init_from_args()?;
    let _timing = repsim_repro::timing_guard("figure1");
    banner("Figure 1: IMDb vs Freebase representations of the same facts");
    let imdb = imdb_fragment();
    repsim_repro::lint_dataset("imdb fragment", &imdb);
    let fb = catalog::imdb2fb()
        .apply(&imdb)
        .map_err(|e| ReproError::new(format!("imdb2fb: {e}")))?;
    repsim_repro::lint_dataset("freebase fragment", &fb);
    println!(
        "IMDb fragment: {} nodes, {} edges; Freebase fragment: {} nodes, {} edges\n",
        imdb.num_nodes(),
        imdb.num_edges(),
        fb.num_nodes(),
        fb.num_edges()
    );
    let (ar5, arj, as5, asj) = report(&imdb, "IMDb representation (Figure 1a)");
    println!();
    let (br5, brj, bs5, bsj) = report(&fb, "Freebase representation (Figure 1b)");

    println!();
    let rwr_flip = (ar5 > arj) != (br5 > brj);
    let sr_flip = (as5 > asj) != (bs5 > bsj);
    println!(
        "RWR ranking {} across representations; SimRank ranking {}.",
        if rwr_flip { "FLIPS" } else { "is unchanged" },
        if sr_flip { "FLIPS" } else { "is unchanged" },
    );
    println!(
        "(The paper reports both flip on its IMDb/Freebase excerpts; whether a\n\
         hand-sized fragment tips is incidental — the point is that random-walk\n\
         scores depend on the chosen structure. At dataset scale the instability\n\
         is unmistakable:)"
    );
    dataset_scale_flips()
}

/// How often the top answer changes across IMDb↔Freebase on the tiny
/// movies dataset.
fn dataset_scale_flips() -> Result<(), ReproError> {
    use repsim_baselines::ranking::SimilarityAlgorithm;
    use repsim_datasets::movies::{self, MoviesConfig};
    use repsim_transform::EntityMap;

    let g = movies::imdb(&MoviesConfig::tiny());
    let fb = catalog::imdb2fb()
        .apply(&g)
        .map_err(|e| ReproError::new(format!("imdb2fb: {e}")))?;
    let map = EntityMap::between(&g, &fb);
    let film = g.labels().get("film").expect("films");
    let film_fb = fb.labels().get("film").expect("films");
    let mut rwr_d = Rwr::new(&g);
    let mut rwr_t = Rwr::new(&fb);
    let mut sr_d = SimRank::new(&g);
    let mut sr_t = SimRank::new(&fb);
    let queries: Vec<_> = g.nodes_of_label(film).to_vec();
    let mut rwr_changed = 0;
    let mut sr_changed = 0;
    for &q in &queries {
        let tq = map.map(q).expect("entity bijection");
        let top = |list: repsim_baselines::RankedList, gr: &Graph| -> Vec<(String, String)> {
            list.nodes().iter().map(|&n| gr.sort_key(n)).collect()
        };
        if top(rwr_d.rank(q, film, 3), &g) != top(rwr_t.rank(tq, film_fb, 3), &fb) {
            rwr_changed += 1;
        }
        if top(sr_d.rank(q, film, 3), &g) != top(sr_t.rank(tq, film_fb, 3), &fb) {
            sr_changed += 1;
        }
    }
    println!(
        "\nOver all {} film queries on the tiny movies dataset (IMDB2FB):\n\
         RWR's top-3 answers change for {} queries; SimRank's change for {}.",
        queries.len(),
        rwr_changed,
        sr_changed
    );
    Ok(())
}
