//! Figure 5: the MAS entity rearrangement and the \*-label fix — R-PathSim
//! with plain meta-walks disagrees across the two representations; with
//! \*-labels it agrees exactly (Theorem 5.2).

// Benchmark/reproduction binaries are operator-run tools, not library
// surface: a failed setup step should abort loudly, so the workspace
// panic-freedom lints are relaxed for this file.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use repsim_core::RPathSim;
use repsim_graph::{Graph, GraphBuilder};
use repsim_repro::{banner, parse_walk, ReproError};
use repsim_transform::catalog;

/// The Figure 5a fragment: confs a, b, c; papers p,q,r,s,t; domains with
/// keywords. Conference b has more papers than c — the multiplicity that
/// fools the plain meta-walk.
fn mas_fragment() -> Graph {
    let mut b = GraphBuilder::new();
    let paper = b.entity_label("paper");
    let conf = b.entity_label("conf");
    let dom = b.entity_label("dom");
    let kw = b.entity_label("kw");
    let ca = b.entity(conf, "a");
    let cb = b.entity(conf, "b");
    let cc = b.entity(conf, "c");
    let d1 = b.entity(dom, "d1");
    let d2 = b.entity(dom, "d2");
    let k1 = b.entity(kw, "k1");
    let k2 = b.entity(kw, "k2");
    let kshared = b.entity(kw, "kshared");
    for (d, k) in [(d1, k1), (d2, k2), (d1, kshared), (d2, kshared)] {
        b.edge(d, k).expect("valid");
    }
    // a: 1 paper in d1; b: 3 papers in d1; c: 1 paper in d2.
    for (name, c, d) in [
        ("p", ca, d1),
        ("q", cb, d1),
        ("r", cb, d1),
        ("s", cb, d1),
        ("t", cc, d2),
    ] {
        let p = b.entity(paper, name);
        b.edge(p, c).expect("valid");
        b.edge(p, d).expect("valid");
    }
    b.build()
}

fn scores(g: &Graph, mw_text: &str) -> Result<(f64, f64), ReproError> {
    let mw = parse_walk(g, mw_text)?;
    let rp = RPathSim::new(g, mw);
    let cb = g.entity_by_name("conf", "b").expect("present");
    let ca = g.entity_by_name("conf", "a").expect("present");
    let cc = g.entity_by_name("conf", "c").expect("present");
    Ok((rp.score(cb, ca), rp.score(cb, cc)))
}

fn main() -> Result<(), ReproError> {
    repsim_repro::init_from_args()?;
    let _timing = repsim_repro::timing_guard("figure5");
    banner("Figure 5: MAS original (5a) vs rearranged (5b) representations");
    let g5a = mas_fragment();
    let g5b = catalog::mas2alt()
        .apply(&g5a)
        .map_err(|e| ReproError::new(format!("mas2alt: {e}")))?;
    println!(
        "5a: {} nodes / {} edges; 5b: {} nodes / {} edges\n",
        g5a.num_nodes(),
        g5a.num_edges(),
        g5b.num_nodes(),
        g5b.num_edges()
    );

    println!("Similarity of conf:b to a and c by common domain keywords.\n");
    let (pa, pc) = scores(&g5a, "conf paper dom kw dom paper conf")?;
    println!(
        "plain meta-walk on 5a   (conf paper dom kw dom paper conf): b~a={pa:.4}  b~c={pc:.4}"
    );
    let (qa, qc) = scores(&g5b, "conf dom kw dom conf")?;
    println!(
        "plain meta-walk on 5b   (conf dom kw dom conf):             b~a={qa:.4}  b~c={qc:.4}"
    );
    println!("  → the plain walks disagree: paper multiplicities leak into 5a's scores.\n");

    let (sa, sc) = scores(&g5a, "conf *paper dom kw dom *paper conf")?;
    println!(
        "*-label meta-walk on 5a (conf *paper dom kw dom *paper conf): b~a={sa:.4}  b~c={sc:.4}"
    );
    println!(
        "plain meta-walk on 5b   (conf dom kw dom conf):               b~a={qa:.4}  b~c={qc:.4}"
    );
    assert_eq!(
        (sa, sc),
        (qa, qc),
        "Theorem 5.2: *-labels equalize the counts"
    );
    println!("  → identical: the *-label collapses the paper hop to connection-existence.");
    Ok(())
}
