//! Figures 2–3: the Niagara `cast` grouping representation and a
//! relationship reorganization of it, shown as meta-walk content
//! equivalence (Definitions 5–7 in action).

// Benchmark/reproduction binaries are operator-run tools, not library
// surface: a failed setup step should abort loudly, so the workspace
// panic-freedom lints are relaxed for this file.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use repsim_graph::{Graph, GraphBuilder};
use repsim_metawalk::enumerate::{includes, maximal_meta_walks};
use repsim_metawalk::equivalence::sufficiently_content_equivalent;
use repsim_repro::{banner, parse_walk, ReproError};
use repsim_transform::grouping::Ungroup;
use repsim_transform::Transformation;

/// Figure 2's fragment: a film with grouped cast and a reified director.
fn niagara() -> Graph {
    let mut b = GraphBuilder::new();
    let film = b.entity_label("film");
    let actor = b.entity_label("actor");
    let director = b.entity_label("director");
    let cast = b.relationship_label("cast");
    let directedby = b.relationship_label("directedby");
    for f_idx in 0..2 {
        let f = b.entity(film, &format!("film{f_idx}"));
        let c = b.relationship(cast);
        b.edge(f, c).expect("valid");
        for a_idx in 0..3 {
            let a = b.entity(actor, &format!("actor{}", (f_idx * 2 + a_idx) % 4));
            b.edge_dedup(c, a).expect("valid");
        }
        let d = b.entity(director, &format!("director{f_idx}"));
        let r = b.relationship(directedby);
        b.edge(f, r).expect("valid");
        b.edge(r, d).expect("valid");
    }
    b.build()
}

fn main() -> Result<(), ReproError> {
    repsim_repro::init_from_args()?;
    let _timing = repsim_repro::timing_guard("figure2_3");
    banner("Figures 2-3: Niagara's cast grouping and its reorganization");
    let ng = niagara();
    // Figure 3's variant: cast dissolved into direct film-actor edges.
    let flat = Ungroup {
        group_label: "cast".into(),
        center_label: "film".into(),
    }
    .apply(&ng)
    .map_err(|e| ReproError::new(format!("ungroup cast: {e}")))?;
    println!(
        "Niagara: {} nodes / {} edges; reorganized: {} nodes / {} edges\n",
        ng.num_nodes(),
        ng.num_edges(),
        flat.num_nodes(),
        flat.num_edges()
    );

    // Definition 6: (actor,cast,film,cast,actor) includes (actor,cast,actor).
    let sub = parse_walk(&ng, "actor cast actor")?;
    let sup = parse_walk(&ng, "actor cast film cast actor")?;
    println!(
        "includes((actor cast film cast actor), (actor cast actor)) = {}",
        includes(&ng, &sup, &sub)
    );

    // The maximal meta-walks of the fragment (bounded enumeration).
    println!("\nMaximal meta-walks of the Niagara fragment (length ≤ 5):");
    for mw in maximal_meta_walks(&ng, 5) {
        println!("  {}", mw.display(ng.labels()));
    }

    // Definition 5 across the two representations.
    let p_ng = parse_walk(&ng, "film cast actor")?;
    let p_flat = parse_walk(&flat, "film actor")?;
    let equiv = sufficiently_content_equivalent(&ng, &p_ng, &flat, &p_flat);
    println!(
        "\n(film cast actor) over Niagara ≜c.e. (film actor) over the reorganized\nform: {equiv}"
    );
    assert!(equiv);
    Ok(())
}
