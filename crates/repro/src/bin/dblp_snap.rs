//! §6.1.1's DBLP-SNAP experiment and appendix Table 3: ranking differences
//! of PathSim (and, in the appendix, RWR and SimRank) across the citation
//! representations; R-PathSim shows zero difference (Theorem 4.3).

// Benchmark/reproduction binaries are operator-run tools, not library
// surface: a failed setup step should abort loudly, so the workspace
// panic-freedom lints are relaxed for this file.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use repsim_datasets::citations::{self, CitationConfig};
use repsim_eval::report::Table;
use repsim_eval::runner::RobustnessRunner;
use repsim_eval::spec::AlgorithmSpec;
use repsim_eval::workload::Workload;
use repsim_repro::{banner, simrank_spec, ReproError, Scale};
use repsim_transform::EntityMap;

fn main() -> Result<(), ReproError> {
    let scale = repsim_repro::init_from_args()?;
    let _timing = repsim_repro::timing_guard("dblp_snap");
    let cfg = match scale {
        Scale::Tiny => CitationConfig::tiny(),
        Scale::Small => CitationConfig::small(),
        Scale::Paper => CitationConfig::paper_scale(),
    };
    banner(&format!(
        "Table 3 / §6.1.1: DBLP-SNAP transformation (citations, scale={})",
        scale.name()
    ));

    // Both representations come straight from the generator (the catalog's
    // dblp2snap produces the same graph; asserted in integration tests).
    let dblp = citations::dblp(&cfg);
    let snap = citations::snap(&cfg);
    repsim_repro::lint_dataset("dblp", &dblp);
    repsim_repro::lint_dataset("snap", &snap);
    let map = EntityMap::between(&dblp, &snap);
    let runner = RobustnessRunner::new(&dblp, &snap, &map);
    let paper = dblp
        .labels()
        .get("paper")
        .ok_or_else(|| ReproError::new("citations dataset lost its paper label"))?;
    let queries = Workload::Random { seed: 13 }.queries(&dblp, paper, scale.queries());
    let ks = [3usize, 5, 10];

    let pathsim_d = AlgorithmSpec::PathSim {
        meta_walk: "paper cite paper cite paper".into(),
    };
    let pathsim_s = AlgorithmSpec::PathSim {
        meta_walk: "paper paper paper".into(),
    };
    let rpathsim_d = AlgorithmSpec::RPathSim {
        meta_walk: "paper cite paper cite paper".into(),
    };
    let rpathsim_s = AlgorithmSpec::RPathSim {
        meta_walk: "paper paper paper".into(),
    };
    let sr = simrank_spec(&dblp, &snap);

    let rows: Vec<(&str, _, _)> = vec![
        ("RWR", AlgorithmSpec::Rwr, AlgorithmSpec::Rwr),
        ("SimRank", sr.clone(), sr),
        ("PathSim", pathsim_d, pathsim_s),
        ("R-PathSim", rpathsim_d, rpathsim_s),
    ];
    let mut table = Table::new(
        &format!("{} random paper queries", queries.len()),
        &["algorithm", "TOP 3", "TOP 5", "TOP 10"],
    );
    for (name, spec_d, spec_s) in rows {
        let r = runner.run(&spec_d, &spec_s, &queries, &ks);
        table.row(&[name.to_string(), r.cell(3), r.cell(5), r.cell(10)]);
        if name == "R-PathSim" {
            for k in ks {
                assert_eq!(r.mean_at(k), Some(0.0), "Theorem 4.3 must hold at k={k}");
            }
        }
    }
    println!("{}", table.render());
    println!(
        "Paper reports (random queries, top 3/5/10): PathSim .357/.327/.296,\n\
         RWR .126/.134/.141, SimRank .634/.578/.493, R-PathSim exactly 0."
    );
    Ok(())
}
