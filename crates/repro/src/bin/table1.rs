//! Table 1: average ranking differences of RWR and SimRank under the
//! relationship reorganizing transformations FB2IMDB, FB2NG, IMDB2NG and
//! IMDB2NG+, for 100 random and 100 top film queries at top 3/5/10.
//!
//! PathSim and R-PathSim are omitted exactly as in the paper: they
//! provably deliver identical rankings over these transformations
//! (Theorems 4.2/4.3) — the integration tests assert the zeros.

// Benchmark/reproduction binaries are operator-run tools, not library
// surface: a failed setup step should abort loudly, so the workspace
// panic-freedom lints are relaxed for this file.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use repsim_datasets::movies::{self, MoviesConfig};
use repsim_eval::report::Table;
use repsim_eval::runner::RobustnessRunner;
use repsim_eval::spec::AlgorithmSpec;
use repsim_eval::workload::Workload;
use repsim_graph::Graph;
use repsim_repro::{banner, simrank_spec, ReproError, Scale};
use repsim_transform::{apply_with_map, catalog, Transformation};

fn movies_config(scale: Scale) -> MoviesConfig {
    match scale {
        Scale::Tiny => MoviesConfig::tiny(),
        Scale::Small => MoviesConfig::small(),
        Scale::Paper => MoviesConfig::paper_scale(),
    }
}

/// `(column name, original database, transformation)` per Table 1 column.
type Columns = Vec<(&'static str, Graph, Box<dyn Transformation>)>;

fn columns(cfg: &MoviesConfig) -> Result<Columns, ReproError> {
    let imdb = movies::imdb(cfg);
    let imdb_nc = movies::imdb_no_chars(cfg);
    repsim_repro::lint_dataset("imdb", &imdb);
    repsim_repro::lint_dataset("imdb-nochar", &imdb_nc);
    let fb = catalog::imdb2fb()
        .apply(&imdb)
        .map_err(|e| ReproError::new(format!("imdb2fb: {e}")))?;
    let fb_nc = catalog::imdb2fb_no_chars()
        .apply(&imdb_nc)
        .map_err(|e| ReproError::new(format!("imdb2fb-no-chars: {e}")))?;
    Ok(vec![
        ("FB2IMDB", fb, catalog::fb2imdb()),
        ("FB2NG", fb_nc, catalog::fb2ng()),
        ("IMDB2NG", imdb_nc.clone(), catalog::imdb2ng()),
        ("IMDB2NG+", imdb_nc, catalog::imdb2ng_plus()),
    ])
}

fn main() -> Result<(), ReproError> {
    let scale = repsim_repro::init_from_args()?;
    let _timing = repsim_repro::timing_guard("table1");
    let cfg = movies_config(scale);
    banner(&format!(
        "Table 1: relationship reorganizing transformations (movies, scale={})",
        scale.name()
    ));
    let ks = [3usize, 5, 10];
    let workloads = [Workload::Random { seed: 11 }, Workload::TopDegree];

    for workload in workloads {
        let mut table = Table::new(
            &format!("{} {}", scale.queries(), workload.name()),
            &["k", "algorithm", "FB2IMDB", "FB2NG", "IMDB2NG", "IMDB2NG+"],
        );
        // cells[k][alg] = column cells.
        let mut cells: Vec<Vec<Vec<String>>> = vec![vec![Vec::new(); 2]; ks.len()];
        for (name, g, t) in columns(&cfg)? {
            let (tg, map) = apply_with_map(t.as_ref(), &g)
                .map_err(|e| ReproError::new(format!("{name}: {e}")))?;
            let runner = RobustnessRunner::new(&g, &tg, &map);
            let film = g
                .labels()
                .get("film")
                .ok_or_else(|| ReproError::new("movies database lost its film label"))?;
            let queries = workload.queries(&g, film, scale.queries());
            let specs = [AlgorithmSpec::Rwr, simrank_spec(&g, &tg)];
            for (ai, spec) in specs.iter().enumerate() {
                let r = runner.run(spec, spec, &queries, &ks);
                for (ki, &k) in ks.iter().enumerate() {
                    cells[ki][ai].push(r.cell(k));
                }
            }
        }
        let alg_names = ["RWR", "SimRank"];
        for (ki, &k) in ks.iter().enumerate() {
            for (ai, name) in alg_names.iter().enumerate() {
                let mut row = vec![format!("TOP {k}"), name.to_string()];
                row.extend(cells[ki][ai].clone());
                table.row(&row);
            }
        }
        println!("{}", table.render());
    }
    println!(
        "PathSim and R-PathSim rows are identically 0.000 (0.000) by Theorems\n\
         4.2/4.3 and are asserted in tests/theorems.rs, matching the paper's\n\
         decision to omit them from Table 1."
    );
    Ok(())
}
