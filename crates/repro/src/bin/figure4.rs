//! Figure 4: PathSim disagrees across the DBLP and SNAP citation
//! representations; R-PathSim does not.

// Benchmark/reproduction binaries are operator-run tools, not library
// surface: a failed setup step should abort loudly, so the workspace
// panic-freedom lints are relaxed for this file.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use repsim_baselines::PathSim;
use repsim_core::RPathSim;
use repsim_graph::{Graph, GraphBuilder, NodeId};
use repsim_repro::{banner, parse_walk, ReproError};

fn dblp() -> (Graph, [NodeId; 4]) {
    let mut b = GraphBuilder::new();
    let paper = b.entity_label("paper");
    let cite = b.relationship_label("cite");
    let p: Vec<NodeId> = (1..=4).map(|i| b.entity(paper, &format!("p{i}"))).collect();
    for (a, bb) in [(0, 2), (1, 2), (2, 3)] {
        let c = b.relationship(cite);
        b.edge(p[a], c).expect("valid");
        b.edge(c, p[bb]).expect("valid");
    }
    (b.build(), [p[0], p[1], p[2], p[3]])
}

fn snap() -> (Graph, [NodeId; 4]) {
    let mut b = GraphBuilder::new();
    let paper = b.entity_label("paper");
    let p: Vec<NodeId> = (1..=4).map(|i| b.entity(paper, &format!("p{i}"))).collect();
    for (a, bb) in [(0, 2), (1, 2), (2, 3)] {
        b.edge(p[a], p[bb]).expect("valid");
    }
    (b.build(), [p[0], p[1], p[2], p[3]])
}

fn main() -> Result<(), ReproError> {
    repsim_repro::init_from_args()?;
    let _timing = repsim_repro::timing_guard("figure4");
    banner("Figure 4: citation database in DBLP (cite nodes) vs SNAP (edges) form");
    let (gd, [d1, d2, d3, d4]) = dblp();
    let (gs, [s1, s2, s3, s4]) = snap();
    let mwd = parse_walk(&gd, "paper cite paper cite paper")?;
    let mws = parse_walk(&gs, "paper paper paper")?;

    let psd = PathSim::new(&gd, mwd.clone());
    let pss = PathSim::new(&gs, mws.clone());
    let rpd = RPathSim::new(&gd, mwd);
    let rps = RPathSim::new(&gs, mws);

    println!("Query p3 against every other paper (meta-walk: two citation hops):\n");
    println!(
        "{:>10} {:>14} {:>14} {:>16} {:>16}",
        "pair", "PathSim/DBLP", "PathSim/SNAP", "R-PathSim/DBLP", "R-PathSim/SNAP"
    );
    for (name, (dn, sn)) in [
        ("p3~p1", (d1, s1)),
        ("p3~p2", (d2, s2)),
        ("p3~p4", (d4, s4)),
    ] {
        println!(
            "{:>10} {:>14.4} {:>14.4} {:>16.4} {:>16.4}",
            name,
            psd.score(d3, dn),
            pss.score(s3, sn),
            rpd.score(d3, dn),
            rps.score(s3, sn)
        );
    }
    println!(
        "\nPathSim counts the non-informative back-and-forth walks that only the\n\
         DBLP form has (e.g. (p3,cite,p4,cite,p4)), so its p3~p4 score differs\n\
         across the representations; R-PathSim drops them and agrees exactly\n\
         (Theorem 4.3)."
    );
    assert_eq!(rpd.score(d3, d4), rps.score(s3, s4));
    assert_eq!(rpd.score(d3, d1), rps.score(s3, s1));
    assert_ne!(psd.score(d3, d4), pss.score(s3, s4));
    Ok(())
}
