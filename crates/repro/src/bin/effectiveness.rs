//! §6.2: effectiveness of R-PathSim vs PathSim on the MAS-shaped
//! bibliographic database, measured with nDCG@5/@10 against the
//! generator's domain ground truth, plus the paired t-test for the
//! aggregated-score experiment.

// Benchmark/reproduction binaries are operator-run tools, not library
// surface: a failed setup step should abort loudly, so the workspace
// panic-freedom lints are relaxed for this file.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use repsim_core::CountingMode;
use repsim_datasets::mas::{self, MasConfig, MasGroundTruth};
use repsim_eval::ndcg::ndcg_at_k;
use repsim_eval::report::Table;
use repsim_eval::spec::AlgorithmSpec;
use repsim_eval::stats::{mean, paired_t_test};
use repsim_eval::workload::Workload;
use repsim_graph::{Graph, NodeId};
use repsim_repro::{banner, ReproError, Scale};

/// Per-query nDCG@5 and nDCG@10 of one algorithm.
fn ndcg_scores(
    g: &Graph,
    truth: &MasGroundTruth,
    spec: &AlgorithmSpec,
    queries: &[NodeId],
) -> (Vec<f64>, Vec<f64>) {
    let conf = g.labels().get("conf").expect("conf label");
    let mut alg = spec.build(g);
    let mut at5 = Vec::with_capacity(queries.len());
    let mut at10 = Vec::with_capacity(queries.len());
    for &q in queries {
        let qv = g.value_of(q).expect("entity").to_owned();
        let list = alg.rank(q, conf, 10);
        let returned: Vec<u8> = list
            .nodes()
            .iter()
            .map(|&n| truth.relevance(&qv, g.value_of(n).expect("entity")))
            .collect();
        let pool: Vec<u8> = g
            .nodes_of_label(conf)
            .iter()
            .filter(|&&c| c != q)
            .map(|&c| truth.relevance(&qv, g.value_of(c).expect("entity")))
            .collect();
        at5.push(ndcg_at_k(&returned, &pool, 5));
        at10.push(ndcg_at_k(&returned, &pool, 10));
    }
    (at5, at10)
}

fn main() -> Result<(), ReproError> {
    let scale = repsim_repro::init_from_args()?;
    let _timing = repsim_repro::timing_guard("effectiveness");
    let cfg = match scale {
        Scale::Tiny => MasConfig::tiny(),
        Scale::Small => MasConfig::small(),
        Scale::Paper => MasConfig::paper_scale(),
    };
    banner(&format!(
        "§6.2: effectiveness on the MAS database (scale={})",
        scale.name()
    ));
    let (g, truth) = mas::mas(&cfg);
    println!(
        "MAS: {} nodes / {} edges ({} conferences, {} domains)\n",
        g.num_nodes(),
        g.num_edges(),
        truth.conf_values().count(),
        cfg.domains
    );
    let conf = g
        .labels()
        .get("conf")
        .ok_or_else(|| ReproError::new("MAS database lost its conf label"))?;
    let n_queries = if scale == Scale::Tiny { 8 } else { 50 };
    let queries = Workload::Random { seed: 23 }.queries(&g, conf, n_queries);

    let mut table = Table::new(
        &format!("nDCG over {} random conference queries", queries.len()),
        &["experiment", "algorithm", "nDCG@5", "nDCG@10"],
    );

    // Experiment 1: similarity by papers' citations. Adjacent equal entity
    // labels make PathSim and R-PathSim genuinely different here.
    let citation_walk = "conf paper citation paper citation paper conf";
    let exp1 = [
        (
            "R-PathSim",
            AlgorithmSpec::RPathSim {
                meta_walk: citation_walk.into(),
            },
        ),
        (
            "PathSim",
            AlgorithmSpec::PathSim {
                meta_walk: citation_walk.into(),
            },
        ),
    ];
    let mut exp1_scores = Vec::new();
    for (name, spec) in &exp1 {
        let (a5, a10) = ndcg_scores(&g, &truth, spec, &queries);
        table.row(&[
            "1: citations".into(),
            (*name).into(),
            format!("{:.3}", mean(&a5)),
            format!("{:.3}", mean(&a10)),
        ]);
        exp1_scores.push((a5, a10));
    }

    // Experiment 2: similarity by domain keywords, with vs without
    // *-labels — the paper's headline 1.0 vs 0.640 gap.
    let exp2 = [
        (
            "R-PathSim",
            AlgorithmSpec::RPathSim {
                meta_walk: "conf *paper dom kw dom *paper conf".into(),
            },
        ),
        (
            "PathSim",
            AlgorithmSpec::PathSim {
                meta_walk: "conf paper dom kw dom paper conf".into(),
            },
        ),
    ];
    let mut exp2_scores = Vec::new();
    for (name, spec) in &exp2 {
        let (a5, a10) = ndcg_scores(&g, &truth, spec, &queries);
        table.row(&[
            "2: keywords (*-labels)".into(),
            (*name).into(),
            format!("{:.3}", mean(&a5)),
            format!("{:.3}", mean(&a10)),
        ]);
        exp2_scores.push((a5, a10));
    }

    // Experiment 3: aggregated scores over Algorithm 1's meta-walk set.
    let exp3 = [
        (
            "R-PathSim-agg",
            AlgorithmSpec::Aggregated {
                mode: CountingMode::Informative,
                query_label: "conf".into(),
                max_len: 4,
                fd_max_len: 3,
            },
        ),
        (
            "PathSim-agg",
            AlgorithmSpec::Aggregated {
                mode: CountingMode::Plain,
                query_label: "conf".into(),
                max_len: 4,
                fd_max_len: 3,
            },
        ),
    ];
    let mut exp3_scores = Vec::new();
    for (name, spec) in &exp3 {
        let (a5, a10) = ndcg_scores(&g, &truth, spec, &queries);
        table.row(&[
            "3: aggregated (Alg. 1)".into(),
            (*name).into(),
            format!("{:.3}", mean(&a5)),
            format!("{:.3}", mean(&a10)),
        ]);
        exp3_scores.push((a5, a10));
    }
    println!("{}", table.render());

    for (label, scores) in [
        ("1 (citations)", &exp1_scores),
        ("3 (aggregated)", &exp3_scores),
    ] {
        for (kname, pick) in [("nDCG@5", 0usize), ("nDCG@10", 1)] {
            let (a, b) = if pick == 0 {
                (&scores[0].0, &scores[1].0)
            } else {
                (&scores[0].1, &scores[1].1)
            };
            if let Some(t) = paired_t_test(a, b) {
                println!(
                    "Experiment {label}: paired t-test on {kname}, t={:.3}, p={:.4} → {} at 0.05",
                    t.t,
                    t.p_value,
                    if t.significant_at(0.05) {
                        "significant"
                    } else {
                        "not significant"
                    }
                );
            } else {
                println!(
                    "Experiment {label}: paired t-test on {kname} degenerate (identical scores)"
                );
            }
        }
    }
    println!(
        "\nPaper reports: exp 1 — .264/.315 vs .261/.313 (not significant);\n\
         exp 2 — 1.0/1.0 vs .640/.616; exp 3 — .658/.625 vs .630/.564\n\
         (significant at 0.05)."
    );
    Ok(())
}
