//! Runs every reproduction binary in sequence (same `--scale` flag).

// Benchmark/reproduction binaries are operator-run tools, not library
// surface: a failed setup step should abort loudly, so the workspace
// panic-freedom lints are relaxed for this file.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::process::Command;

use repsim_repro::ReproError;

fn main() -> Result<(), ReproError> {
    let _timing = repsim_repro::timing_guard("all");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "figure1",
        "figure2_3",
        "figure4",
        "figure5",
        "figure6_7",
        "table1",
        "dblp_snap",
        "table2_4",
        "effectiveness",
    ];
    let exe = std::env::current_exe()
        .map_err(|e| ReproError::new(format!("cannot locate own executable: {e}")))?;
    let dir = exe
        .parent()
        .ok_or_else(|| ReproError::new("own executable has no parent directory"))?;
    let mut failures = Vec::new();
    for bin in bins {
        let path = dir.join(bin);
        let status = Command::new(&path)
            .args(&args)
            .status()
            .map_err(|e| ReproError::new(format!("cannot run {}: {e}", path.display())))?;
        if !status.success() {
            failures.push(bin);
        }
    }
    if failures.is_empty() {
        println!("\nAll experiments completed.");
        Ok(())
    } else {
        Err(ReproError::new(format!("failed experiments: {failures:?}")))
    }
}
