//! Runs every reproduction binary in sequence (same `--scale` flag).

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "figure1",
        "figure2_3",
        "figure4",
        "figure5",
        "figure6_7",
        "table1",
        "dblp_snap",
        "table2_4",
        "effectiveness",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin directory");
    let mut failures = Vec::new();
    for bin in bins {
        let path = dir.join(bin);
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        if !status.success() {
            failures.push(bin);
        }
    }
    if failures.is_empty() {
        println!("\nAll experiments completed.");
    } else {
        eprintln!("\nFailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
