//! Tables 2 and 4: average ranking differences of RWR, SimRank and
//! PathSim under the entity rearranging transformations DBLP2SIGM and
//! WSU2ALCH — Table 2 on top queries, Table 4 (appendix C) on random
//! queries. R-PathSim's zero rows (with corresponding \*-label meta-walks,
//! Theorem 5.2) are printed for completeness; the paper omits them.

// Benchmark/reproduction binaries are operator-run tools, not library
// surface: a failed setup step should abort loudly, so the workspace
// panic-freedom lints are relaxed for this file.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use repsim_datasets::bibliographic::{self, BibliographicConfig};
use repsim_datasets::courses::{self, CourseConfig};
use repsim_eval::report::Table;
use repsim_eval::runner::RobustnessRunner;
use repsim_eval::spec::AlgorithmSpec;
use repsim_eval::workload::Workload;
use repsim_graph::Graph;
use repsim_repro::{banner, simrank_spec, ReproError, Scale};
use repsim_transform::{apply_with_map, catalog, Transformation};

struct Column {
    name: &'static str,
    g: Graph,
    t: Box<dyn Transformation>,
    /// Label ranked by the queries.
    query_label: &'static str,
    /// (PathSim over D, PathSim over T(D)) meta-walks — Table 2's choices.
    pathsim: (&'static str, &'static str),
    /// Corresponding R-PathSim meta-walks (with \*-labels on the D side).
    rpathsim: (&'static str, &'static str),
}

fn columns(scale: Scale) -> Vec<Column> {
    let bib_cfg = match scale {
        Scale::Tiny => BibliographicConfig::tiny(),
        Scale::Small => BibliographicConfig::small(),
        Scale::Paper => BibliographicConfig::paper_scale(),
    };
    let course_cfg = match scale {
        Scale::Tiny => CourseConfig::tiny(),
        _ => CourseConfig::paper_scale(), // WSU is naturally small
    };
    vec![
        Column {
            name: "DBLP2SIGM",
            g: bibliographic::dblp(&bib_cfg),
            t: catalog::dblp2sigm(),
            query_label: "proc",
            pathsim: ("proc paper area paper proc", "proc area proc"),
            rpathsim: ("proc *paper area *paper proc", "proc area proc"),
        },
        Column {
            name: "WSU2ALCH",
            g: courses::wsu(&course_cfg),
            t: catalog::wsu2alch(),
            query_label: "course",
            pathsim: ("course offer subject offer course", "course subject course"),
            rpathsim: (
                "course *offer subject *offer course",
                "course subject course",
            ),
        },
    ]
}

fn main() -> Result<(), ReproError> {
    let scale = repsim_repro::init_from_args()?;
    let _timing = repsim_repro::timing_guard("table2_4");
    banner(&format!(
        "Tables 2 and 4: entity rearranging transformations (scale={})",
        scale.name()
    ));
    let ks = [3usize, 5, 10];
    let workloads = [
        ("Table 2", Workload::TopDegree),
        ("Table 4", Workload::Random { seed: 17 }),
    ];
    for (table_name, workload) in workloads {
        let mut table = Table::new(
            &format!("{table_name}: {} {}", scale.queries(), workload.name()),
            &["k", "algorithm", "DBLP2SIGM", "WSU2ALCH"],
        );
        let alg_names = ["RWR", "SimRank", "PathSim", "R-PathSim"];
        let mut cells: Vec<Vec<Vec<String>>> = vec![vec![Vec::new(); alg_names.len()]; ks.len()];
        for col in columns(scale) {
            let (tg, map) = apply_with_map(col.t.as_ref(), &col.g)
                .map_err(|e| ReproError::new(format!("{}: {e}", col.name)))?;
            let runner = RobustnessRunner::new(&col.g, &tg, &map);
            let label = col.g.labels().get(col.query_label).ok_or_else(|| {
                ReproError::new(format!(
                    "{} database lost its {} label",
                    col.name, col.query_label
                ))
            })?;
            let queries = workload.queries(&col.g, label, scale.queries());
            let sr = simrank_spec(&col.g, &tg);
            let specs: Vec<(AlgorithmSpec, AlgorithmSpec)> = vec![
                (AlgorithmSpec::Rwr, AlgorithmSpec::Rwr),
                (sr.clone(), sr),
                (
                    AlgorithmSpec::PathSim {
                        meta_walk: col.pathsim.0.into(),
                    },
                    AlgorithmSpec::PathSim {
                        meta_walk: col.pathsim.1.into(),
                    },
                ),
                (
                    AlgorithmSpec::RPathSim {
                        meta_walk: col.rpathsim.0.into(),
                    },
                    AlgorithmSpec::RPathSim {
                        meta_walk: col.rpathsim.1.into(),
                    },
                ),
            ];
            for (ai, (spec_d, spec_t)) in specs.iter().enumerate() {
                let r = runner.run(spec_d, spec_t, &queries, &ks);
                for (ki, &k) in ks.iter().enumerate() {
                    cells[ki][ai].push(r.cell(k));
                }
                if ai == 3 {
                    for k in ks {
                        assert_eq!(
                            r.mean_at(k),
                            Some(0.0),
                            "Theorem 5.2 must hold for {} at k={k}",
                            col.name
                        );
                    }
                }
            }
        }
        for (ki, &k) in ks.iter().enumerate() {
            for (ai, name) in alg_names.iter().enumerate() {
                let mut row = vec![format!("TOP {k}"), name.to_string()];
                row.extend(cells[ki][ai].clone());
                table.row(&row);
            }
        }
        println!("{}", table.render());
    }
    println!(
        "Paper's Table 2 (top queries): e.g. TOP 3 — RWR .540/.349, SimRank\n\
         .446/.505, PathSim .671/.566; R-PathSim identically 0 (omitted there)."
    );
    Ok(())
}
