//! Single-flight deduplication of engine builds.
//!
//! Concurrent rank requests that miss the seed cache for the same
//! `(graph fingerprint, meta-walk)` key would each queue on the state
//! lock and redundantly re-verify the commuting cache. [`SingleFlight`]
//! elects the first such request the *leader*; followers block on a
//! condvar until the leader's build completes (installing the shared
//! engine seed), then answer from the seed without any matrix work.
//!
//! The flight key includes the fingerprint, so a build for a stale
//! epoch never absorbs requests targeting the post-mutation graph.
//! Waits are bounded: a follower that outlives `max_wait` (or the
//! leader's failure) simply falls back to its own build — single-flight
//! is a throughput optimization, never a correctness gate.

use repsim_audit::sync::{Condvar, Mutex};
use std::collections::HashSet;
use std::time::Duration;

use repsim_metawalk::MetaWalk;
use repsim_obs::CounterHandle;

static LEADER: CounterHandle = CounterHandle::new("repsim.serve.singleflight.leader");
static WAITED: CounterHandle = CounterHandle::new("repsim.serve.singleflight.waited");

/// The in-flight build registry. One per service instance.
#[derive(Default)]
pub struct SingleFlight {
    flights: Mutex<HashSet<(u64, MetaWalk)>>,
    done: Condvar,
}

/// What [`SingleFlight::join`] decided for this request.
pub enum Entry<'a> {
    /// No build in flight for the key: this request leads. The guard
    /// completes the flight (and wakes followers) when dropped — on
    /// success *and* on failure, so a failed leader never wedges its
    /// followers.
    Leader(FlightGuard<'a>),
    /// A leader was in flight and has since completed. The caller
    /// should re-check the seed cache before building.
    Waited,
    /// The leader did not complete within `max_wait`; the caller
    /// proceeds with its own build.
    TimedOut,
}

impl SingleFlight {
    /// A registry with no flights.
    pub fn new() -> SingleFlight {
        SingleFlight::default()
    }

    /// Joins the flight for `(fp, mw)`: leads when none is active,
    /// otherwise blocks until the active one completes (bounded by
    /// `max_wait`).
    pub fn join(&self, fp: u64, mw: &MetaWalk, max_wait: Duration) -> Entry<'_> {
        let key = (fp, mw.clone());
        let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
        if !flights.contains(&key) {
            flights.insert(key.clone());
            LEADER.add(1);
            return Entry::Leader(FlightGuard { sf: self, key });
        }
        WAITED.add(1);
        let deadline = std::time::Instant::now() + max_wait;
        while flights.contains(&key) {
            let now = std::time::Instant::now();
            if now >= deadline {
                return Entry::TimedOut;
            }
            let (guard, timeout) = self
                .done
                .wait_timeout(flights, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            flights = guard;
            if timeout.timed_out() && flights.contains(&key) {
                return Entry::TimedOut;
            }
        }
        Entry::Waited
    }
}

/// Completes a flight on drop; see [`Entry::Leader`].
pub struct FlightGuard<'a> {
    sf: &'a SingleFlight,
    key: (u64, MetaWalk),
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let mut flights = self.sf.flights.lock().unwrap_or_else(|e| e.into_inner());
        flights.remove(&self.key);
        drop(flights);
        self.sf.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repsim_graph::GraphBuilder;

    fn walk() -> MetaWalk {
        let mut b = GraphBuilder::new();
        let a = b.entity_label("a");
        let g = b.build();
        MetaWalk::parse_in(&g, "a").unwrap_or_else(|| {
            let _ = a;
            unreachable!("single-label walk parses")
        })
    }

    #[test]
    fn first_joiner_leads_and_completion_releases_followers() {
        let sf = SingleFlight::new();
        let mw = walk();
        let lead = match sf.join(7, &mw, Duration::from_millis(10)) {
            Entry::Leader(g) => g,
            _ => panic!("empty registry must elect a leader"),
        };
        // While the flight is active a second joiner times out...
        match sf.join(7, &mw, Duration::from_millis(20)) {
            Entry::TimedOut => {}
            _ => panic!("active flight must block the follower"),
        }
        // ...a different key still leads...
        match sf.join(8, &mw, Duration::from_millis(10)) {
            Entry::Leader(_) => {}
            _ => panic!("other fingerprints are independent flights"),
        }
        // ...and completion lets the next joiner lead again.
        drop(lead);
        match sf.join(7, &mw, Duration::from_millis(10)) {
            Entry::Leader(_) => {}
            _ => panic!("completed flight must clear the key"),
        };
    }

    #[test]
    fn followers_wake_when_the_leader_finishes() {
        let sf = std::sync::Arc::new(SingleFlight::new());
        let mw = walk();
        let lead = match sf.join(1, &mw, Duration::from_millis(10)) {
            Entry::Leader(g) => g,
            _ => panic!("leader"),
        };
        let sf2 = std::sync::Arc::clone(&sf);
        let mw2 = mw.clone();
        let follower = std::thread::spawn(move || {
            matches!(sf2.join(1, &mw2, Duration::from_secs(5)), Entry::Waited)
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(lead);
        assert!(
            follower.join().unwrap_or(false),
            "follower must observe the completed flight, not time out"
        );
    }
}
