//! Write-ahead delta log for live graph mutations.
//!
//! Every accepted mutation is appended — and fsynced — to the log
//! *before* it is acknowledged, so an acknowledged write survives any
//! crash. The file layout is append-only:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"RSIMWAL1"
//! 8       4     version (u32 LE, currently 1)
//! 12      8     base graph fingerprint (u64 LE)
//! 20      …     records, back to back
//! ```
//!
//! Each record is `len: u32 LE` (body length), `checksum: u64 LE`
//! (FNV-1a over the body), then the body: `seq: u64 LE` (1-based,
//! gap-free), `fp_after: u64 LE` (the graph fingerprint *after* the
//! mutation), and the [`MutationOp`] in its binary encoding.
//!
//! **Recovery** ([`Wal::recover`]) replays the log against the boot
//! graph, re-applying each mutation and checking the recomputed
//! fingerprint against the recorded `fp_after` — the log is not
//! trusted, it is re-derived. Two failure shapes are distinguished:
//!
//! * a **torn tail** (the file ends mid-record — the classic
//!   crash-during-append): the partial record was never acknowledged,
//!   so it is truncated away with a Warn event and
//!   `repsim.graph.wal.torn_truncations` tick;
//! * a **corrupt suffix** (checksum, sequence, decode, apply or
//!   fingerprint failure): the bytes from the first bad record onward
//!   are quarantined through the bounded [`crate::quarantine`]
//!   rotation, then truncated, and `repsim.graph.wal.quarantined`
//!   ticks. Everything before the bad record is kept — prefix
//!   durability is exactly what the per-record checksum buys.
//!
//! The `wal.append` failpoint fails an append before any byte is
//! written (clean typed error, log unchanged); `wal.torn_tail` writes
//! half a record and then errors, manufacturing the crash-mid-append
//! state deterministically. Both are double-gated behind
//! [`Budget::with_fault_injection`].

use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use repsim_graph::mutation::{self, MutationOp};
use repsim_graph::Graph;
use repsim_sparse::budget::failpoints;
use repsim_sparse::{checksum, Budget};

use repsim_obs::{CounterHandle, HistogramHandle};

use crate::snapshot::graph_fingerprint;

static WAL_APPENDS: CounterHandle = CounterHandle::new("repsim.graph.wal.appends");
static WAL_BYTES: CounterHandle = CounterHandle::new("repsim.graph.wal.bytes");
static WAL_REPLAYED: CounterHandle = CounterHandle::new("repsim.graph.wal.replayed");
static WAL_TORN: CounterHandle = CounterHandle::new("repsim.graph.wal.torn_truncations");
static WAL_QUARANTINED: CounterHandle = CounterHandle::new("repsim.graph.wal.quarantined");
static WAL_APPEND_NS: HistogramHandle = HistogramHandle::new("repsim.graph.wal.append_ns");

const MAGIC: &[u8; 8] = b"RSIMWAL1";
/// Current log format version.
pub const VERSION: u32 = 1;
/// Fixed header size (magic + version + base fingerprint).
pub const HEADER_LEN: usize = 20;
/// Per-record prefix: body length (u32) + body checksum (u64).
const RECORD_PREFIX: usize = 12;

/// Errors from the log itself. Corruption found during recovery is
/// *not* an error — it is repaired (truncate/quarantine) and reported
/// in [`RecoveredLog`]; only environment failures surface here.
#[derive(Debug)]
pub enum WalError {
    /// A filesystem operation failed.
    Io {
        /// The operation (`"append"`, `"truncate"`, …).
        op: &'static str,
        /// The log path.
        path: PathBuf,
        /// The OS error.
        message: String,
    },
    /// The `wal.append` failpoint rejected the append before any byte
    /// was written; the log and the in-memory state are unchanged.
    Injected,
    /// The `wal.torn_tail` failpoint wrote a partial record and then
    /// simulated a crash; the tail will be truncated on recovery.
    InjectedTorn,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { op, path, message } => {
                write!(f, "wal {op} {}: {message}", path.display())
            }
            WalError::Injected => write!(f, "wal append rejected by failpoint"),
            WalError::InjectedTorn => write!(f, "wal append torn mid-write by failpoint"),
        }
    }
}

impl std::error::Error for WalError {}

fn io_err<'a>(op: &'static str, path: &'a Path) -> impl FnOnce(std::io::Error) -> WalError + 'a {
    move |e| WalError::Io {
        op,
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// One replayed log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// 1-based, gap-free sequence number.
    pub seq: u64,
    /// Graph fingerprint after the mutation applied.
    pub fp_after: u64,
    /// The mutation itself.
    pub op: MutationOp,
}

/// An open, append-positioned log.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    next_seq: u64,
}

/// What [`Wal::recover`] reconstructed.
#[derive(Debug)]
pub struct RecoveredLog {
    /// The log, positioned for further appends.
    pub wal: Wal,
    /// The graph after replaying every valid record onto the boot graph.
    pub graph: Graph,
    /// Fingerprint of [`RecoveredLog::graph`].
    pub fingerprint: u64,
    /// Every record that replayed cleanly, in order.
    pub records: Vec<WalRecord>,
    /// A partial trailing record was truncated away.
    pub torn_truncated: bool,
    /// A corrupt suffix (or a foreign/corrupt whole file) was moved
    /// aside; where it went.
    pub quarantined_to: Option<PathBuf>,
}

fn header_bytes(base_fp: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN);
    h.extend_from_slice(MAGIC);
    h.extend_from_slice(&VERSION.to_le_bytes());
    h.extend_from_slice(&base_fp.to_le_bytes());
    h
}

fn encode_record(seq: u64, fp_after: u64, op: &MutationOp) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(&fp_after.to_le_bytes());
    op.encode_into(&mut body);
    let mut rec = Vec::with_capacity(RECORD_PREFIX + body.len());
    rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
    rec.extend_from_slice(&checksum(&body).to_le_bytes());
    rec.extend_from_slice(&body);
    rec
}

fn le_u32(b: &[u8], at: usize) -> u32 {
    let mut a = [0u8; 4];
    if let Some(s) = b.get(at..at + 4) {
        a.copy_from_slice(s);
    }
    u32::from_le_bytes(a)
}

fn le_u64(b: &[u8], at: usize) -> u64 {
    let mut a = [0u8; 8];
    if let Some(s) = b.get(at..at + 8) {
        a.copy_from_slice(s);
    }
    u64::from_le_bytes(a)
}

fn duration_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// What the record-scan decided about the bytes from `pos` on.
enum TailFate {
    Clean,
    Torn,
    Corrupt(String),
}

impl Wal {
    /// Creates a fresh log at `path` (header only), fsynced.
    fn create(path: &Path, base_fp: u64) -> Result<Wal, WalError> {
        let mut f = File::create(path).map_err(io_err("create", path))?;
        f.write_all(&header_bytes(base_fp))
            .map_err(io_err("write", path))?;
        f.sync_all().map_err(io_err("fsync", path))?;
        Ok(Wal {
            path: path.to_path_buf(),
            file: f,
            next_seq: 1,
        })
    }

    /// Opens (or creates) the log at `path` and replays it against the
    /// boot graph `g`. Always returns a usable log: corruption is
    /// repaired in place (truncation + quarantine), never fatal. A log
    /// whose base fingerprint does not match `g` — or whose header is
    /// unreadable — belongs to some other graph and is quarantined
    /// whole; recovery then starts a fresh log.
    pub fn recover(path: &Path, g: &Graph) -> Result<RecoveredLog, WalError> {
        let mut span = repsim_obs::span("repsim.graph.wal.replay");
        let base_fp = graph_fingerprint(g);
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let wal = Wal::create(path, base_fp)?;
                return Ok(RecoveredLog {
                    wal,
                    graph: g.clone(),
                    fingerprint: base_fp,
                    records: Vec::new(),
                    torn_truncated: false,
                    quarantined_to: None,
                });
            }
            Err(e) => return Err(io_err("read", path)(e)),
        };

        let header_ok = bytes.len() >= HEADER_LEN
            && bytes.get(..8).map(|m| m == MAGIC) == Some(true)
            && le_u32(&bytes, 8) == VERSION
            && le_u64(&bytes, 12) == base_fp;
        if !header_ok {
            // Foreign or mangled log: not ours to replay. Move it aside
            // whole and start over from the boot graph.
            let quarantined_to =
                crate::quarantine::rotate_file(path).map_err(io_err("quarantine", path))?;
            WAL_QUARANTINED.add(1);
            repsim_obs::point(
                "repsim.graph.wal.quarantine",
                repsim_obs::Level::Warn,
                format!(
                    "log header invalid or base fingerprint mismatch; moved to {}",
                    quarantined_to.display()
                ),
            );
            let wal = Wal::create(path, base_fp)?;
            return Ok(RecoveredLog {
                wal,
                graph: g.clone(),
                fingerprint: base_fp,
                records: Vec::new(),
                torn_truncated: false,
                quarantined_to: Some(quarantined_to),
            });
        }

        // Scan records, replaying each onto the running graph. `pos`
        // always marks the end of the last fully-validated record.
        let mut graph = g.clone();
        let mut fingerprint = base_fp;
        let mut records: Vec<WalRecord> = Vec::new();
        let mut pos = HEADER_LEN;
        let mut expected_seq = 1u64;
        let fate = loop {
            let rest = bytes.get(pos..).unwrap_or(&[]);
            if rest.is_empty() {
                break TailFate::Clean;
            }
            if rest.len() < RECORD_PREFIX {
                break TailFate::Torn;
            }
            let body_len = le_u32(rest, 0) as usize;
            let declared_sum = le_u64(rest, 4);
            let body = match rest.get(RECORD_PREFIX..RECORD_PREFIX + body_len) {
                Some(b) => b,
                None => break TailFate::Torn,
            };
            if checksum(body) != declared_sum {
                break TailFate::Corrupt(format!("record {expected_seq}: checksum mismatch"));
            }
            if body.len() < 16 {
                break TailFate::Corrupt(format!("record {expected_seq}: body too short"));
            }
            let seq = le_u64(body, 0);
            let fp_after = le_u64(body, 8);
            if seq != expected_seq {
                break TailFate::Corrupt(format!(
                    "sequence gap (expected {expected_seq}, found {seq})"
                ));
            }
            let op_bytes = body.get(16..).unwrap_or(&[]);
            let (op, used) = match MutationOp::decode(op_bytes) {
                Ok(d) => d,
                Err(e) => break TailFate::Corrupt(format!("record {seq}: {e}")),
            };
            if used != op_bytes.len() {
                break TailFate::Corrupt(format!("record {seq}: trailing bytes in body"));
            }
            // Re-derive, don't trust: the mutation must apply and land
            // on exactly the fingerprint that was acknowledged.
            let next = match mutation::apply(&graph, &op) {
                Ok(gn) => gn,
                Err(e) => break TailFate::Corrupt(format!("record {seq}: replay failed: {e}")),
            };
            let fp = graph_fingerprint(&next);
            if fp != fp_after {
                break TailFate::Corrupt(format!(
                    "record {seq}: fingerprint diverged (log {fp_after:#018x}, replay {fp:#018x})"
                ));
            }
            graph = next;
            fingerprint = fp;
            records.push(WalRecord { seq, fp_after, op });
            pos += RECORD_PREFIX + body_len;
            expected_seq += 1;
        };

        let mut torn_truncated = false;
        let mut quarantined_to = None;
        match fate {
            TailFate::Clean => {}
            TailFate::Torn => {
                torn_truncated = true;
                WAL_TORN.add(1);
                repsim_obs::point(
                    "repsim.graph.wal.torn_tail",
                    repsim_obs::Level::Warn,
                    format!(
                        "truncating {} torn byte(s) after record {}",
                        bytes.len() - pos,
                        expected_seq.saturating_sub(1)
                    ),
                );
            }
            TailFate::Corrupt(reason) => {
                let tail = bytes.get(pos..).unwrap_or(&[]);
                let dest = crate::quarantine::rotate_bytes(path, tail)
                    .map_err(io_err("quarantine", path))?;
                WAL_QUARANTINED.add(1);
                repsim_obs::point(
                    "repsim.graph.wal.quarantine",
                    repsim_obs::Level::Warn,
                    format!(
                        "{reason}; {} suffix byte(s) moved to {}",
                        tail.len(),
                        dest.display()
                    ),
                );
                quarantined_to = Some(dest);
            }
        }
        if pos < bytes.len() {
            let f = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(io_err("open", path))?;
            f.set_len(pos as u64).map_err(io_err("truncate", path))?;
            f.sync_all().map_err(io_err("fsync", path))?;
        }

        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(io_err("open", path))?;
        WAL_REPLAYED.add(records.len() as u64);
        if span.is_active() {
            span.attr("records", records.len());
            span.attr("torn", u64::from(torn_truncated));
        }
        Ok(RecoveredLog {
            wal: Wal {
                path: path.to_path_buf(),
                file,
                next_seq: expected_seq,
            },
            graph,
            fingerprint,
            records,
            torn_truncated,
            quarantined_to,
        })
    }

    /// The sequence number the next append will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one mutation (durably: write + fsync) and returns its
    /// sequence number. This is the acknowledgment barrier: callers
    /// must not report a mutation as applied until this returns `Ok`.
    ///
    /// `budget` gates the `wal.append` (reject cleanly before writing)
    /// and `wal.torn_tail` (write half a record, then "crash")
    /// failpoints.
    pub fn append(
        &mut self,
        op: &MutationOp,
        fp_after: u64,
        budget: &Budget,
    ) -> Result<u64, WalError> {
        let start = Instant::now();
        let mut span = repsim_obs::span("repsim.graph.wal.append");
        if budget.injected(failpoints::WAL_APPEND) {
            return Err(WalError::Injected);
        }
        let seq = self.next_seq;
        let rec = encode_record(seq, fp_after, op);
        if budget.injected(failpoints::WAL_TORN_TAIL) {
            // Crash-mid-append simulation: half the record reaches the
            // disk, the acknowledgment never happens. Recovery must
            // truncate this tail.
            let half = rec.get(..rec.len() / 2).unwrap_or(&rec);
            self.file
                .write_all(half)
                .map_err(io_err("append", &self.path))?;
            self.file.sync_all().map_err(io_err("fsync", &self.path))?;
            return Err(WalError::InjectedTorn);
        }
        self.file
            .write_all(&rec)
            .map_err(io_err("append", &self.path))?;
        self.file.sync_all().map_err(io_err("fsync", &self.path))?;
        self.next_seq += 1;
        WAL_APPENDS.add(1);
        WAL_BYTES.add(rec.len() as u64);
        WAL_APPEND_NS.record(duration_ns(start));
        if span.is_active() {
            span.attr("seq", seq);
            span.attr("bytes", rec.len());
        }
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repsim_graph::{GraphBuilder, NodeRef};

    fn base_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let film = b.entity_label("film");
        let actor = b.entity_label("actor");
        let f0 = b.entity(film, "f0");
        let f1 = b.entity(film, "f1");
        let a0 = b.entity(actor, "a0");
        b.edge(f0, a0).unwrap();
        b.edge(f1, a0).unwrap();
        b.build()
    }

    fn ops() -> Vec<MutationOp> {
        let actor_b = NodeRef::Entity {
            label: "actor".to_owned(),
            value: "b0".to_owned(),
        };
        let f0 = NodeRef::Entity {
            label: "film".to_owned(),
            value: "f0".to_owned(),
        };
        let f1 = NodeRef::Entity {
            label: "film".to_owned(),
            value: "f1".to_owned(),
        };
        vec![
            MutationOp::AddEntity {
                label: "actor".to_owned(),
                value: "b0".to_owned(),
            },
            MutationOp::AddEdge {
                a: f0.clone(),
                b: actor_b.clone(),
            },
            MutationOp::AddEdge { a: f1, b: actor_b },
            MutationOp::RemoveEdge {
                a: f0,
                b: NodeRef::Entity {
                    label: "actor".to_owned(),
                    value: "a0".to_owned(),
                },
            },
        ]
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("repsim-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Appends every op from `ops()` to a fresh log, returning the
    /// final graph and its fingerprint.
    fn populate(path: &Path, g: &Graph) -> (Graph, u64) {
        let rec = Wal::recover(path, g).unwrap();
        let mut wal = rec.wal;
        let mut cur = rec.graph;
        let mut fp = rec.fingerprint;
        for op in ops() {
            cur = mutation::apply(&cur, &op).unwrap();
            fp = graph_fingerprint(&cur);
            wal.append(&op, fp, &Budget::unlimited()).unwrap();
        }
        (cur, fp)
    }

    #[test]
    fn append_replay_roundtrip_is_exact() {
        let g = base_graph();
        let dir = tmp_dir("roundtrip");
        let path = dir.join("g.wal");
        let (expect, expect_fp) = populate(&path, &g);

        let rec = Wal::recover(&path, &g).unwrap();
        assert_eq!(rec.records.len(), 4);
        assert!(!rec.torn_truncated);
        assert!(rec.quarantined_to.is_none());
        assert_eq!(rec.fingerprint, expect_fp);
        assert_eq!(rec.fingerprint, graph_fingerprint(&expect));
        assert_eq!(rec.wal.next_seq(), 5);
        assert_eq!(
            rec.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_log_stays_usable() {
        let g = base_graph();
        let dir = tmp_dir("torn");
        let path = dir.join("g.wal");
        populate(&path, &g);
        let full = fs::read(&path).unwrap();
        // Sever the file mid-final-record, at several depths.
        for cut in [full.len() - 1, full.len() - 10, full.len() - 20] {
            fs::write(&path, &full[..cut]).unwrap();
            let rec = Wal::recover(&path, &g).unwrap();
            assert!(rec.torn_truncated, "cut at {cut}");
            assert!(rec.quarantined_to.is_none());
            assert_eq!(rec.records.len(), 3, "last record lost, prefix kept");
            // The file was repaired: a second recovery is clean.
            let again = Wal::recover(&path, &g).unwrap();
            assert!(!again.torn_truncated);
            assert_eq!(again.records.len(), 3);
            // And the log still accepts appends after repair.
            let mut wal = again.wal;
            let op = ops().remove(3);
            let next = mutation::apply(&again.graph, &op).unwrap();
            wal.append(&op, graph_fingerprint(&next), &Budget::unlimited())
                .unwrap();
            let healed = Wal::recover(&path, &g).unwrap();
            assert_eq!(healed.records.len(), 4);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_suffix_is_quarantined_prefix_survives() {
        let g = base_graph();
        let dir = tmp_dir("corrupt");
        let path = dir.join("g.wal");
        populate(&path, &g);
        let full = fs::read(&path).unwrap();
        // Flip a byte inside the second record's body: records 1 keeps,
        // 2.. quarantined. Record 1 starts at HEADER_LEN; find record 2.
        let r1_body = le_u32(&full, HEADER_LEN) as usize;
        let r2_at = HEADER_LEN + RECORD_PREFIX + r1_body;
        let mut bad = full.clone();
        bad[r2_at + RECORD_PREFIX + 3] ^= 0x40;
        fs::write(&path, &bad).unwrap();

        let rec = Wal::recover(&path, &g).unwrap();
        assert_eq!(rec.records.len(), 1, "only the intact prefix replays");
        let dest = rec.quarantined_to.expect("suffix quarantined");
        assert!(dest.exists());
        assert_eq!(fs::read(&dest).unwrap(), &bad[r2_at..]);
        assert_eq!(fs::read(&path).unwrap().len(), r2_at);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_log_is_quarantined_whole() {
        let g = base_graph();
        let dir = tmp_dir("foreign");
        let path = dir.join("g.wal");
        populate(&path, &g);
        // Recover against a *different* graph: base fingerprint
        // mismatch, whole file moved aside, fresh log started.
        let mut b = GraphBuilder::new();
        let l = b.entity_label("thing");
        b.entity(l, "only");
        let g2 = b.build();
        let rec = Wal::recover(&path, &g2).unwrap();
        assert!(rec.records.is_empty());
        assert!(rec.quarantined_to.is_some());
        assert_eq!(rec.fingerprint, graph_fingerprint(&g2));
        // The fresh log is a bare header for g2.
        let fresh = fs::read(&path).unwrap();
        assert_eq!(fresh.len(), HEADER_LEN);
        assert_eq!(le_u64(&fresh, 12), graph_fingerprint(&g2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_failpoints_are_double_gated() {
        let g = base_graph();
        let dir = tmp_dir("failpoints");
        let path = dir.join("g.wal");
        let rec = Wal::recover(&path, &g).unwrap();
        let mut wal = rec.wal;
        let op = ops().remove(0);
        let next = mutation::apply(&g, &op).unwrap();
        let fp = graph_fingerprint(&next);

        let _guard = failpoints::scoped(&[failpoints::WAL_APPEND]);
        // Armed but the budget does not opt in: append succeeds.
        wal.append(&op, fp, &Budget::unlimited()).unwrap();
        let len_after_ok = fs::read(&path).unwrap().len();
        // Armed and opted in: clean rejection, not one byte written.
        let inject = Budget::unlimited().with_fault_injection();
        match wal.append(&op, fp, &inject) {
            Err(WalError::Injected) => {}
            other => panic!("expected injected rejection, got {other:?}"),
        }
        assert_eq!(fs::read(&path).unwrap().len(), len_after_ok);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_failpoint_manufactures_a_recoverable_tear() {
        let g = base_graph();
        let dir = tmp_dir("torn-fp");
        let path = dir.join("g.wal");
        let rec = Wal::recover(&path, &g).unwrap();
        let mut wal = rec.wal;
        let op = ops().remove(0);
        let next = mutation::apply(&g, &op).unwrap();
        let fp = graph_fingerprint(&next);

        {
            let _guard = failpoints::scoped(&[failpoints::WAL_TORN_TAIL]);
            let inject = Budget::unlimited().with_fault_injection();
            match wal.append(&op, fp, &inject) {
                Err(WalError::InjectedTorn) => {}
                other => panic!("expected torn append, got {other:?}"),
            }
        }
        assert!(
            fs::read(&path).unwrap().len() > HEADER_LEN,
            "partial record reached the disk"
        );
        // The unacknowledged half-record must vanish on recovery.
        let rec = Wal::recover(&path, &g).unwrap();
        assert!(rec.torn_truncated);
        assert!(rec.records.is_empty());
        assert_eq!(rec.fingerprint, graph_fingerprint(&g));
        assert_eq!(fs::read(&path).unwrap().len(), HEADER_LEN);
        let _ = fs::remove_dir_all(&dir);
    }
}
