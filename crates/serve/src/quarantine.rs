//! Bounded quarantine rotation for corrupt persistence artifacts.
//!
//! Snapshot load and WAL recovery both move rejected bytes *aside*
//! rather than deleting them, so an operator can post-mortem a
//! corruption. Unbounded, that policy turns a flapping disk into a
//! disk-full outage: every crash-loop iteration would mint another
//! `.corrupt` file. This module caps the pile at [`MAX_QUARANTINED`]
//! generations per artifact:
//!
//! * the newest rejection always lands at `<path>.corrupt`,
//! * older generations shift to `<path>.corrupt.1`, `<path>.corrupt.2`,
//! * anything beyond the cap is deleted, with a Warn
//!   `repsim.serve.quarantine.evict` event recording the loss.
//!
//! Keeping the newest at the bare `.corrupt` name preserves the
//! operator contract (and the CI drill) that the most recent corpse is
//! always at a predictable path.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// How many quarantined generations of one artifact are kept.
pub const MAX_QUARANTINED: usize = 3;

/// The quarantine slot for generation `gen` of `path` (0 = newest).
fn slot(path: &Path, gen: usize) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".corrupt");
    if gen > 0 {
        os.push(format!(".{gen}"));
    }
    PathBuf::from(os)
}

/// Shifts existing quarantine generations of `path` down one slot,
/// deleting whatever falls off the end, and returns the now-free
/// newest slot (`<path>.corrupt`).
fn make_room(path: &Path) -> io::Result<PathBuf> {
    let oldest = slot(path, MAX_QUARANTINED - 1);
    if oldest.exists() {
        fs::remove_file(&oldest)?;
        repsim_obs::point(
            "repsim.serve.quarantine.evict",
            repsim_obs::Level::Warn,
            format!(
                "quarantine cap ({MAX_QUARANTINED}) reached; deleted {}",
                oldest.display()
            ),
        );
    }
    for gen in (0..MAX_QUARANTINED - 1).rev() {
        let from = slot(path, gen);
        if from.exists() {
            fs::rename(&from, slot(path, gen + 1))?;
        }
    }
    Ok(slot(path, 0))
}

/// Quarantines the whole file at `path`: rotates prior generations,
/// then renames `path` to `<path>.corrupt`. Returns the destination.
pub fn rotate_file(path: &Path) -> io::Result<PathBuf> {
    let dest = make_room(path)?;
    fs::rename(path, &dest)?;
    Ok(dest)
}

/// Quarantines loose bytes (e.g. a corrupt WAL tail that was truncated
/// out of the live log): rotates prior generations, then writes `bytes`
/// to `<path>.corrupt`. Returns the destination.
pub fn rotate_bytes(path: &Path, bytes: &[u8]) -> io::Result<PathBuf> {
    let dest = make_room(path)?;
    fs::write(&dest, bytes)?;
    Ok(dest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("repsim-quar-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn newest_is_always_bare_corrupt_and_cap_holds() {
        let dir = tmp_dir("cap");
        let base = dir.join("idx.snap");
        for round in 0..5u32 {
            fs::write(&base, round.to_le_bytes()).unwrap();
            let dest = rotate_file(&base).unwrap();
            assert_eq!(dest, slot(&base, 0));
            assert!(!base.exists());
        }
        // Newest three generations survive: rounds 4, 3, 2.
        for (gen, round) in [(0usize, 4u32), (1, 3), (2, 2)] {
            let bytes = fs::read(slot(&base, gen)).unwrap();
            assert_eq!(bytes, round.to_le_bytes());
        }
        assert!(!slot(&base, 3).exists(), "beyond-cap generation deleted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotate_bytes_writes_the_newest_slot() {
        let dir = tmp_dir("bytes");
        let base = dir.join("log.wal");
        rotate_bytes(&base, b"tail-1").unwrap();
        rotate_bytes(&base, b"tail-2").unwrap();
        assert_eq!(fs::read(slot(&base, 0)).unwrap(), b"tail-2");
        assert_eq!(fs::read(slot(&base, 1)).unwrap(), b"tail-1");
        let _ = fs::remove_dir_all(&dir);
    }
}
