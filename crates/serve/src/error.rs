//! The service-level error taxonomy reported in response envelopes.

use std::fmt;

use repsim_sparse::ExecError;

/// Why a request was not answered exactly. Every variant maps to a
/// stable `code` string in the JSON response envelope, so clients can
/// branch without parsing prose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control rejected the request: the bounded queue is full
    /// or the circuit breaker is open. The request was *not* executed;
    /// retry after the hinted delay.
    Overloaded {
        /// Client backoff hint in milliseconds.
        retry_after_ms: u64,
    },
    /// The request was executed but its budget exhausted even the last
    /// degradation tier (expired deadline, cancellation). Consecutive
    /// exhaustions trip the circuit breaker.
    Exhausted(ExecError),
    /// The request itself is malformed: unparsable JSON, an unknown
    /// meta-walk label, an unknown query entity, a label mismatch.
    BadRequest(String),
    /// The server is draining its queue for shutdown; no new work is
    /// admitted.
    ShuttingDown,
    /// The write-ahead log rejected the append, so the mutation was
    /// *not* applied (the log is the acknowledgment barrier). The
    /// in-memory index and the graph are unchanged; safe to retry.
    WalFailed(String),
    /// Coordinator only: no shard produced a mergeable answer — every
    /// shard's replica set was down, expired its deadline slice, or
    /// answered from a conflicting epoch. Partial coverage degrades via
    /// the `partial-shards` tier instead; this is the zero-coverage
    /// floor.
    ShardsUnavailable {
        /// Shards the fleet is configured with.
        total: usize,
    },
}

impl ServiceError {
    /// The stable machine-readable code for the response envelope.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::Exhausted(_) => "exhausted",
            ServiceError::BadRequest(_) => "bad_request",
            ServiceError::ShuttingDown => "shutting_down",
            ServiceError::WalFailed(_) => "wal_failed",
            ServiceError::ShardsUnavailable { .. } => "shards_unavailable",
        }
    }

    /// The retry-after hint, for the variants that carry one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServiceError::Overloaded { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded; retry after {retry_after_ms} ms")
            }
            ServiceError::Exhausted(e) => write!(f, "budget exhausted: {e}"),
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::ShuttingDown => write!(f, "server shutting down"),
            ServiceError::WalFailed(m) => write!(f, "wal append failed: {m}"),
            ServiceError::ShardsUnavailable { total } => {
                write!(f, "no shard of {total} reachable on a consistent epoch")
            }
        }
    }
}

impl std::error::Error for ServiceError {}
