//! The TCP transport: accept loop, worker pool, graceful drain.
//!
//! One connection per client thread, newline-delimited JSON both ways
//! (see [`crate::protocol`]). Control ops (`ping`, `stats`, `snapshot`,
//! `shutdown`) answer inline on the connection thread — they must keep
//! working while the rank pipeline is saturated, or operators lose
//! sight of an overloaded server exactly when they need it. Rank
//! requests go through the bounded queue to the worker pool; a full
//! queue answers `overloaded` immediately instead of stacking latency.
//!
//! Shutdown (the `shutdown` op, or the caller's flag — the CLI wires
//! SIGTERM/ctrl-c to it) is graceful: stop accepting, close the queue,
//! drain queued work, join the workers, write a final snapshot.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc;

use repsim_audit::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use repsim_graph::Graph;
use repsim_obs::{CounterHandle, DeltaBaseline, GaugeHandle};

use crate::error::ServiceError;
use crate::protocol::{ReqId, Request, Response};
use crate::queue::Bounded;
use crate::service::{QueryService, Restore, ServiceConfig, WalRecovery};
use crate::snapshot::SaveStats;

static QUEUE_DEPTH: GaugeHandle = GaugeHandle::new("repsim.serve.queue.depth");
static STATS_STREAMS: CounterHandle = CounterHandle::new("repsim.serve.stats.streams");
static STATS_LINES: CounterHandle = CounterHandle::new("repsim.serve.stats.lines");
static JOURNAL_LINES: CounterHandle = CounterHandle::new("repsim.serve.stats.journal_lines");

/// How long a blocked read waits before re-checking the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Server tuning over and above [`ServiceConfig`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (written to `port_file`).
    pub addr: String,
    /// Snapshot path: loaded at startup, written on `snapshot` ops and
    /// at shutdown. `None` disables persistence.
    pub snapshot: Option<PathBuf>,
    /// Write-ahead log path: recovered (replayed, torn tail truncated)
    /// at startup, appended on every acknowledged mutation. `None`
    /// disables mutation durability (mutations still apply, but do not
    /// survive a crash).
    pub wal: Option<PathBuf>,
    /// Rank-queue capacity; pushes beyond it shed with `overloaded`.
    pub queue_cap: usize,
    /// Written with the actual `ip:port` once bound — how tests and
    /// scripts find a port-0 server.
    pub port_file: Option<PathBuf>,
    /// Metrics journal path: when set, one stats+delta-metrics JSON
    /// line is appended per `metrics_interval_ms` for the server's
    /// lifetime (same line shape as the `stats-stream` push, minus the
    /// request id). Lives next to the snapshot/WAL files; `repsim top
    /// --journal` renders it offline.
    pub metrics_journal: Option<PathBuf>,
    /// Journal cadence in milliseconds (ignored without a journal).
    pub metrics_interval_ms: u64,
    /// The service tuning.
    pub service: ServiceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            snapshot: None,
            wal: None,
            queue_cap: 64,
            port_file: None,
            metrics_journal: None,
            metrics_interval_ms: 1000,
            service: ServiceConfig::default(),
        }
    }
}

/// What a completed [`run`] did, for the CLI's summary line.
#[derive(Debug)]
pub struct ServeReport {
    /// The address actually bound.
    pub addr: SocketAddr,
    /// Startup snapshot outcome (`None` when persistence is off).
    pub restore: Option<Restore>,
    /// Startup WAL recovery outcome (`None` when no log is configured).
    pub wal: Option<WalRecovery>,
    /// Final shutdown snapshot (`None` when persistence is off or the
    /// final save failed — the failure is reported as a Warn event, not
    /// an error: the server is exiting either way and the previous
    /// snapshot on disk is still valid thanks to atomic replace).
    pub final_snapshot: Option<SaveStats>,
    /// Requests admitted over the server's lifetime.
    pub requests: u64,
    /// Requests shed by admission control.
    pub shed: u64,
}

/// Transport-level failures (the per-request taxonomy is
/// [`ServiceError`] and travels in response envelopes instead).
#[derive(Debug)]
pub enum ServeError {
    /// Binding or configuring the listener failed.
    Bind {
        /// The requested address.
        addr: String,
        /// The OS error.
        message: String,
    },
    /// Reading or writing the snapshot at startup failed at the I/O
    /// level (a *corrupt* snapshot is not an error; it quarantines).
    Snapshot(crate::snapshot::SnapshotError),
    /// Opening, repairing or replaying the write-ahead log failed at
    /// the I/O level (corruption inside the log is repaired, not an
    /// error).
    Wal(crate::wal::WalError),
    /// Writing the port file failed.
    PortFile {
        /// The configured path.
        path: PathBuf,
        /// The OS error.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, message } => write!(f, "cannot bind {addr}: {message}"),
            ServeError::Snapshot(e) => write!(f, "snapshot: {e}"),
            ServeError::Wal(e) => write!(f, "wal: {e}"),
            ServeError::PortFile { path, message } => {
                write!(f, "cannot write port file {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<crate::snapshot::SnapshotError> for ServeError {
    fn from(e: crate::snapshot::SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

impl From<crate::wal::WalError> for ServeError {
    fn from(e: crate::wal::WalError) -> Self {
        ServeError::Wal(e)
    }
}

/// One queued rank request plus the reply channel back to its
/// connection thread.
struct Job {
    id: ReqId,
    walk: String,
    label: String,
    value: String,
    k: usize,
    deadline_ms: Option<u64>,
    reply: mpsc::Sender<String>,
}

/// Runs the server until `shutdown` is set (by a signal handler or a
/// `shutdown` request). Blocks the calling thread for the server's
/// lifetime; returns a summary after the graceful drain.
pub fn run(g: &Graph, cfg: &ServeConfig, shutdown: &AtomicBool) -> Result<ServeReport, ServeError> {
    // Keep the metric registry recording for the server's lifetime even
    // when no trace sink is attached: the stats stream, the metrics
    // journal and `repsim top` all read the registry, and a silent
    // registry would render an idle-looking dashboard under full load.
    let metrics_on: std::sync::Arc<dyn repsim_obs::Sink> =
        std::sync::Arc::new(repsim_obs::NullSink);
    repsim_obs::install(std::sync::Arc::clone(&metrics_on));
    let report = run_inner(g, cfg, shutdown);
    repsim_obs::remove_sink(&metrics_on);
    report
}

fn run_inner(
    g: &Graph,
    cfg: &ServeConfig,
    shutdown: &AtomicBool,
) -> Result<ServeReport, ServeError> {
    let svc = QueryService::new(g, cfg.service.clone());

    // Boot order matters: the WAL replays first (rebuilding the graph
    // the process died with), then the snapshot validates against the
    // *post-replay* fingerprint — a snapshot taken before the logged
    // mutations simply quarantines and the index rebuilds on demand.
    let wal = match &cfg.wal {
        Some(path) => Some(svc.recover_wal(path)?),
        None => None,
    };
    let restore = match &cfg.snapshot {
        Some(path) => Some(svc.restore(path)?),
        None => None,
    };

    let listener = TcpListener::bind(&cfg.addr).map_err(|e| ServeError::Bind {
        addr: cfg.addr.clone(),
        message: e.to_string(),
    })?;
    let addr = listener.local_addr().map_err(|e| ServeError::Bind {
        addr: cfg.addr.clone(),
        message: e.to_string(),
    })?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ServeError::Bind {
            addr: cfg.addr.clone(),
            message: e.to_string(),
        })?;
    if let Some(pf) = &cfg.port_file {
        std::fs::write(pf, format!("{addr}\n")).map_err(|e| ServeError::PortFile {
            path: pf.clone(),
            message: e.to_string(),
        })?;
    }
    repsim_obs::point(
        "repsim.serve.listening",
        repsim_obs::Level::Info,
        format!("listening on {addr}"),
    );

    let queue: Bounded<Job> = Bounded::new(cfg.queue_cap);
    let workers = cfg.service.par.threads().max(1);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| worker_loop(&svc, &queue));
        }
        if let Some(path) = &cfg.metrics_journal {
            let (svc, queue) = (&svc, &queue);
            let interval_ms = cfg.metrics_interval_ms.max(10);
            let path = path.clone();
            s.spawn(move || journal_loop(&path, svc, queue, shutdown, interval_ms));
        }

        // Accept loop: non-blocking with a short poll so the shutdown
        // flag is honoured promptly even with no clients.
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Request/response lines are small; without nodelay
                    // Nagle + delayed ACK cost ~40ms per round trip.
                    stream.set_nodelay(true).ok();
                    let svc = &svc;
                    let queue = &queue;
                    let snapshot = cfg.snapshot.as_deref();
                    s.spawn(move || serve_connection(stream, svc, queue, shutdown, snapshot));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        // Graceful drain: no new work, queued requests still answer.
        queue.close();
    });

    let final_snapshot = match &cfg.snapshot {
        Some(path) => match svc.save_snapshot(path) {
            Ok(stats) => Some(stats),
            Err(e) => {
                repsim_obs::point(
                    "repsim.serve.snapshot.final_save_failed",
                    repsim_obs::Level::Warn,
                    e.to_string(),
                );
                None
            }
        },
        None => None,
    };

    let stats = svc.stats_body(0, cfg.queue_cap);
    Ok(ServeReport {
        addr,
        restore,
        wal,
        final_snapshot,
        requests: stats.requests,
        shed: stats.shed,
    })
}

/// One stats+metrics line: the [`crate::protocol::StatsBody`] plus a
/// delta snapshot of the metric registry against `base`. Shared by the
/// `stats-stream` push (with a request id) and the metrics journal
/// (without). `t_ms` is milliseconds on the process-wide monotonic
/// clock ([`repsim_obs::now_ns`]).
fn stats_line(
    svc: &QueryService,
    queue: &Bounded<Job>,
    id: Option<&ReqId>,
    stream_seq: u64,
    base: &mut DeltaBaseline,
) -> String {
    let body = svc.stats_body(queue.depth(), queue.capacity());
    let metrics = repsim_obs::Registry::global().delta_snapshot(base);
    let mut out = String::from("{");
    if let Some(id) = id {
        id.render(&mut out);
    }
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!(
            "\"ok\":true,\"stream_seq\":{stream_seq},\"t_ms\":{},\"stats\":{},\"metrics\":{}}}",
            repsim_obs::now_ns() / 1_000_000,
            body.to_json(),
            metrics.render_json()
        ),
    );
    out
}

/// Sleeps `ms` in short slices, returning early once `shutdown` is set.
fn sleep_poll(ms: u64, shutdown: &AtomicBool) {
    let mut left = ms;
    while left > 0 && !shutdown.load(Ordering::SeqCst) {
        let step = left.min(20);
        std::thread::sleep(Duration::from_millis(step));
        left -= step;
    }
}

/// The metrics journal: one [`stats_line`] appended per interval until
/// shutdown. Uses the [`repsim_obs::JsonLinesSink`] writer directly —
/// the journal is a metrics timeline, not a trace, so the sink is never
/// installed and captures no events.
fn journal_loop(
    path: &std::path::Path,
    svc: &QueryService,
    queue: &Bounded<Job>,
    shutdown: &AtomicBool,
    interval_ms: u64,
) {
    let sink = match repsim_obs::JsonLinesSink::create(&path.to_string_lossy()) {
        Ok(sink) => sink,
        Err(e) => {
            repsim_obs::point(
                "repsim.serve.stats.journal_failed",
                repsim_obs::Level::Warn,
                format!("cannot create metrics journal {}: {e}", path.display()),
            );
            return;
        }
    };
    let mut base = DeltaBaseline::default();
    let mut seq = 0u64;
    loop {
        sink.write_line(&stats_line(svc, queue, None, seq, &mut base));
        JOURNAL_LINES.add(1);
        seq += 1;
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        sleep_poll(interval_ms, shutdown);
    }
}

/// Pushes `count` stats lines (0 = unbounded) at `interval_ms` over the
/// connection. Returns `Ok` when the count is reached or the server is
/// shutting down — the connection then resumes normal request handling —
/// and `Err` when the client went away.
fn stream_stats(
    stream: &TcpStream,
    svc: &QueryService,
    queue: &Bounded<Job>,
    shutdown: &AtomicBool,
    id: &ReqId,
    interval_ms: u64,
    count: u64,
) -> std::io::Result<()> {
    STATS_STREAMS.add(1);
    let mut base = DeltaBaseline::default();
    let mut sent = 0u64;
    loop {
        write_line(stream, &stats_line(svc, queue, Some(id), sent, &mut base))?;
        STATS_LINES.add(1);
        sent += 1;
        if count != 0 && sent >= count {
            return Ok(());
        }
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        sleep_poll(interval_ms, shutdown);
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

fn worker_loop(svc: &QueryService, queue: &Bounded<Job>) {
    while let Some(job) = queue.pop() {
        QUEUE_DEPTH.set(queue.depth() as i64);
        let resp = match svc.handle_rank_epoch(
            &job.walk,
            &job.label,
            &job.value,
            job.k,
            job.deadline_ms,
        ) {
            Ok(answer) => Response::Rank {
                id: job.id,
                tier: answer.tier,
                results: answer.results,
                // Fleet members stamp the answering epoch so the
                // coordinator can refuse to merge diverged shards; a
                // single node omits it, keeping the line byte-identical
                // to the pre-fleet wire format.
                shard: svc.shard_spec().map(|s| crate::protocol::ShardIdent {
                    id: s.index,
                    fingerprint: answer.fingerprint,
                    seq: answer.seq,
                }),
                coverage: None,
            },
            Err(error) => Response::Error { id: job.id, error },
        };
        // A dropped receiver means the connection died; nothing to do.
        let _ = job.reply.send(resp.to_json_line());
    }
}

/// Drives one client connection: reads newline-delimited requests,
/// answers in order. Control ops answer inline; rank ops go through the
/// queue (shedding when full) and the thread waits for the worker's
/// reply to preserve ordering.
fn serve_connection(
    stream: TcpStream,
    svc: &QueryService,
    queue: &Bounded<Job>,
    shutdown: &AtomicBool,
    snapshot: Option<&std::path::Path>,
) {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut acc: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Drain complete lines before reading more.
        while let Some(pos) = acc.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = acc.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]);
            match handle_line(text.trim(), svc, queue, shutdown, snapshot) {
                LineOutcome::Silent => {}
                LineOutcome::Reply(reply) => {
                    if write_line(&stream, &reply).is_err() {
                        return;
                    }
                }
                LineOutcome::Stream {
                    id,
                    interval_ms,
                    count,
                } => {
                    // The push loop owns the connection until the count
                    // is reached (or forever for count 0); pipelined
                    // requests in `acc` are answered afterwards.
                    if stream_stats(&stream, svc, queue, shutdown, &id, interval_ms, count).is_err()
                    {
                        return;
                    }
                }
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match (&stream).read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => acc.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// What one request line asks of the connection thread.
enum LineOutcome {
    /// Blank line: nothing to send.
    Silent,
    /// One response line.
    Reply(String),
    /// Switch the connection into the periodic stats push.
    Stream {
        /// Echoed into every push line.
        id: ReqId,
        /// Push cadence.
        interval_ms: u64,
        /// Lines to push; 0 = unbounded.
        count: u64,
    },
}

/// Handles one request line.
fn handle_line(
    line: &str,
    svc: &QueryService,
    queue: &Bounded<Job>,
    shutdown: &AtomicBool,
    snapshot: Option<&std::path::Path>,
) -> LineOutcome {
    if line.is_empty() {
        return LineOutcome::Silent;
    }
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(message) => {
            return LineOutcome::Reply(
                Response::Error {
                    id: ReqId::Absent,
                    error: ServiceError::BadRequest(message),
                }
                .to_json_line(),
            );
        }
    };
    let resp = match req {
        Request::Ping { id } => Response::Pong { id },
        Request::Stats { id } => Response::Stats {
            id,
            body: svc.stats_body(queue.depth(), queue.capacity()),
        },
        Request::StatsStream {
            id,
            interval_ms,
            count,
        } => {
            return LineOutcome::Stream {
                id,
                interval_ms,
                count,
            };
        }
        Request::Snapshot { id } => match snapshot {
            Some(path) => match svc.save_snapshot(path) {
                Ok(stats) => Response::Snapshot {
                    id,
                    entries: stats.entries,
                    bytes: stats.bytes,
                },
                Err(e) => Response::Error {
                    id,
                    error: ServiceError::BadRequest(format!("snapshot failed: {e}")),
                },
            },
            None => Response::Error {
                id,
                error: ServiceError::BadRequest("no snapshot path configured".to_owned()),
            },
        },
        Request::Shutdown { id } => {
            shutdown.store(true, Ordering::SeqCst);
            Response::ShuttingDown { id }
        }
        Request::Mutate {
            id,
            op,
            deadline_ms,
        } => {
            if shutdown.load(Ordering::SeqCst) {
                Response::Error {
                    id,
                    error: ServiceError::ShuttingDown,
                }
            } else {
                match svc.handle_mutate(&op, deadline_ms) {
                    Ok((fingerprint, seq, path)) => Response::Mutate {
                        id,
                        fingerprint,
                        seq,
                        path,
                    },
                    Err(error) => Response::Error { id, error },
                }
            }
        }
        Request::Rank {
            id,
            walk,
            label,
            value,
            k,
            deadline_ms,
        } => {
            if shutdown.load(Ordering::SeqCst) {
                Response::Error {
                    id,
                    error: ServiceError::ShuttingDown,
                }
            } else {
                let (tx, rx) = mpsc::channel();
                let job = Job {
                    id: id.clone(),
                    walk,
                    label,
                    value,
                    k,
                    deadline_ms,
                    reply: tx,
                };
                match queue.try_push(job) {
                    Ok(depth) => {
                        QUEUE_DEPTH.set(depth as i64);
                        // Ordering: wait for this request's answer before
                        // reading the next line of this connection.
                        match rx.recv() {
                            Ok(reply) => return LineOutcome::Reply(reply),
                            Err(_) => Response::Error {
                                id,
                                error: ServiceError::ShuttingDown,
                            },
                        }
                    }
                    Err(crate::queue::Full(job)) => {
                        svc.note_shed();
                        let error = if shutdown.load(Ordering::SeqCst) {
                            ServiceError::ShuttingDown
                        } else {
                            ServiceError::Overloaded {
                                retry_after_ms: shed_retry_hint(queue),
                            }
                        };
                        Response::Error { id: job.id, error }
                    }
                }
            }
        }
    };
    LineOutcome::Reply(resp.to_json_line())
}

/// Retry hint for queue sheds: proportional to how much work is already
/// queued, so clients back off harder the deeper the backlog.
fn shed_retry_hint(queue: &Bounded<Job>) -> u64 {
    10 + 5 * queue.depth() as u64
}

fn write_line(mut stream: &TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// A one-shot client for scripts and CI: connects, sends each request
/// line, collects one response line per request. Not a general client —
/// requests are sent up front and responses read back in order, which
/// is exactly the protocol contract.
pub fn client_roundtrip(addr: &str, lines: &[String]) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    for line in lines {
        write_line(&stream, line)?;
    }
    let mut out = Vec::with_capacity(lines.len());
    let mut acc = Vec::new();
    let mut chunk = [0u8; 4096];
    while out.len() < lines.len() {
        match (&stream).read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                acc.extend_from_slice(&chunk[..n]);
                while let Some(pos) = acc.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = acc.drain(..=pos).collect();
                    out.push(String::from_utf8_lossy(&line[..line.len() - 1]).into_owned());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use repsim_graph::GraphBuilder;
    use repsim_obs::json::{self, Json};

    fn mas_like() -> Graph {
        let mut b = GraphBuilder::new();
        let conf = b.entity_label("conf");
        let paper = b.entity_label("paper");
        let dom = b.entity_label("dom");
        let confs: Vec<_> = (0..3).map(|i| b.entity(conf, &format!("c{i}"))).collect();
        let doms: Vec<_> = (0..2).map(|i| b.entity(dom, &format!("d{i}"))).collect();
        // Dom attachments vary per conf so self-similarity is strictly
        // maximal (an all-one-dom graph ties every conf at 1.0 and the
        // top-1 assertion would hinge on tie-break order).
        for (i, (c, d)) in [(0, 0), (0, 1), (1, 0), (2, 1), (0, 0), (1, 1)]
            .iter()
            .enumerate()
        {
            let p = b.entity(paper, &format!("p{i}"));
            b.edge(p, confs[*c]).unwrap();
            b.edge(p, doms[*d]).unwrap();
        }
        b.build()
    }

    /// Boots a server on a free port, runs `f` against it, shuts down.
    fn with_server<F: FnOnce(SocketAddr)>(cfg: ServeConfig, f: F) {
        let g = mas_like();
        let shutdown = AtomicBool::new(false);
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|s| {
            let (shutdown, cfgref, gref) = (&shutdown, &cfg, &g);
            s.spawn(move || {
                let report = run(gref, cfgref, shutdown);
                let _ = tx.send(report.map(|r| r.addr));
            });
            // The port file is written once bound.
            let pf = cfg.port_file.clone().expect("tests use a port file");
            let addr = loop {
                if let Ok(text) = std::fs::read_to_string(&pf) {
                    if let Ok(a) = text.trim().parse::<SocketAddr>() {
                        break a;
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            };
            // A panicking assertion must still stop the server, or the
            // scope would wait on the accept loop forever and the whole
            // suite hangs instead of reporting the failure.
            let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr)));
            shutdown.store(true, Ordering::SeqCst);
            if let Err(p) = verdict {
                std::panic::resume_unwind(p);
            }
        });
        rx.recv().unwrap().unwrap();
    }

    fn test_cfg(name: &str) -> (ServeConfig, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("repsim-serve-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            snapshot: Some(dir.join("idx.snap")),
            wal: Some(dir.join("g.wal")),
            queue_cap: 8,
            port_file: Some(dir.join("port")),
            metrics_journal: None,
            metrics_interval_ms: 1000,
            service: ServiceConfig::default(),
        };
        (cfg, dir)
    }

    #[test]
    fn rank_ping_stats_over_tcp() {
        let (cfg, dir) = test_cfg("basic");
        with_server(cfg, |addr| {
            let lines = vec![
                r#"{"id":1,"op":"ping"}"#.to_owned(),
                r#"{"id":2,"walk":"conf paper dom","label":"conf","value":"c0","k":3}"#.to_owned(),
                r#"{"id":3,"op":"stats"}"#.to_owned(),
            ];
            let out = client_roundtrip(&addr.to_string(), &lines).unwrap();
            assert_eq!(out.len(), 3);
            let pong = json::parse(&out[0]).unwrap();
            assert_eq!(pong.get("pong"), Some(&Json::Bool(true)));
            let rank = json::parse(&out[1]).unwrap();
            assert_eq!(rank.get("ok"), Some(&Json::Bool(true)));
            assert_eq!(rank.get("tier").and_then(Json::as_str), Some("exact"));
            let results = rank.get("results").and_then(Json::as_arr).unwrap();
            assert!(!results.is_empty());
            // The query (c0) is excluded; c1 is its nearest other conf.
            assert_eq!(results[0].get("value").and_then(Json::as_str), Some("c1"));
            let stats = json::parse(&out[2]).unwrap();
            let body = stats.get("stats").unwrap();
            assert_eq!(body.get("requests").and_then(Json::as_num), Some(1.0));
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_get_typed_errors_not_hangs() {
        let (cfg, dir) = test_cfg("bad");
        with_server(cfg, |addr| {
            let lines = vec![
                "this is not json".to_owned(),
                r#"{"op":"frobnicate"}"#.to_owned(),
                r#"{"id":9,"walk":"conf paper dom","label":"dom","value":"d0"}"#.to_owned(),
            ];
            let out = client_roundtrip(&addr.to_string(), &lines).unwrap();
            assert_eq!(out.len(), 3);
            for line in &out {
                let v = json::parse(line).unwrap();
                assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{line}");
                assert_eq!(
                    v.get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Json::as_str),
                    Some("bad_request"),
                    "{line}"
                );
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_stream_pushes_finite_count_then_resumes_requests() {
        let (cfg, dir) = test_cfg("stream");
        with_server(cfg, |addr| {
            // One rank to make activity, then a 3-line stream at a fast
            // cadence, then a ping — the connection must come back to
            // normal request handling after the finite stream.
            // Two trailing blank lines elicit no response, so the
            // roundtrip helper (one reply per request line) collects
            // all five replies: rank + 3 pushes + pong.
            let lines = vec![
                r#"{"id":1,"walk":"conf paper dom","label":"conf","value":"c0","k":3}"#.to_owned(),
                r#"{"id":2,"op":"stats-stream","interval_ms":10,"count":3}"#.to_owned(),
                r#"{"id":3,"op":"ping"}"#.to_owned(),
                String::new(),
                String::new(),
            ];
            let out = client_roundtrip(&addr.to_string(), &lines).unwrap();
            assert_eq!(out.len(), 5, "{out:?}");
            let push = json::parse(&out[1]).unwrap();
            assert_eq!(push.get("ok"), Some(&Json::Bool(true)));
            assert_eq!(push.get("id").and_then(Json::as_num), Some(2.0));
            assert_eq!(push.get("stream_seq").and_then(Json::as_num), Some(0.0));
            let stats = push.get("stats").unwrap();
            assert_eq!(stats.get("requests").and_then(Json::as_num), Some(1.0));
            assert!(stats.get("uptime_ms").and_then(Json::as_num).is_some());
            assert!(push
                .get("metrics")
                .and_then(|m| m.get("counters"))
                .is_some());
            let second = json::parse(&out[2]).unwrap();
            assert_eq!(second.get("stream_seq").and_then(Json::as_num), Some(1.0));
            let pong = json::parse(&out[4]).unwrap();
            assert_eq!(pong.get("pong"), Some(&Json::Bool(true)), "{}", out[4]);
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_journal_records_lines_while_serving() {
        let (mut cfg, dir) = test_cfg("journal");
        let journal = dir.join("metrics.jsonl");
        cfg.metrics_journal = Some(journal.clone());
        cfg.metrics_interval_ms = 10;
        with_server(cfg, |addr| {
            let lines =
                vec![r#"{"id":1,"walk":"conf paper dom","label":"conf","value":"c0"}"#.to_owned()];
            client_roundtrip(&addr.to_string(), &lines).unwrap();
            // Let a couple of journal intervals elapse.
            std::thread::sleep(Duration::from_millis(60));
        });
        let text = std::fs::read_to_string(&journal).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "expected >=2 journal lines:\n{text}");
        for (i, line) in lines.iter().enumerate() {
            let v = json::parse(line).unwrap_or_else(|e| panic!("line {i}: {e}: {line}"));
            assert_eq!(v.get("stream_seq").and_then(Json::as_num), Some(i as f64));
            assert!(v.get("stats").is_some(), "line {i}");
            assert!(v.get("metrics").is_some(), "line {i}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_op_drains_and_writes_final_snapshot() {
        let (cfg, dir) = test_cfg("drain");
        let snap = cfg.snapshot.clone().unwrap();
        let g = mas_like();
        let shutdown = AtomicBool::new(false);
        let report = std::thread::scope(|s| {
            let (shutdown, cfgref, gref) = (&shutdown, &cfg, &g);
            let h = s.spawn(move || run(gref, cfgref, shutdown));
            let pf = cfg.port_file.clone().unwrap();
            let addr = loop {
                if let Ok(text) = std::fs::read_to_string(&pf) {
                    if let Ok(a) = text.trim().parse::<SocketAddr>() {
                        break a;
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            };
            let lines = vec![
                r#"{"id":1,"walk":"conf paper dom","label":"conf","value":"c1","k":2}"#.to_owned(),
                r#"{"id":2,"op":"shutdown"}"#.to_owned(),
            ];
            let out = client_roundtrip(&addr.to_string(), &lines).unwrap();
            assert_eq!(out.len(), 2);
            assert!(out[1].contains("shutting_down"), "{}", out[1]);
            h.join().unwrap()
        })
        .unwrap();
        assert!(report.requests >= 1);
        let final_snap = report.final_snapshot.expect("final snapshot written");
        assert!(final_snap.entries >= 1, "index persisted at shutdown");
        assert!(snap.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
