//! Traffic capture files for record/replay (`RSIMCAP1`).
//!
//! A capture records every request a workload sent to a server —
//! arrival offset, deadline, and the raw request line — so the exact
//! mix can be replayed offline against another build, another config,
//! or the same server twice to assert bit-identical answers. The file
//! discipline is the WAL's ([`crate::wal`]): versioned magic header,
//! length- and checksum-prefixed records, torn tails truncated, corrupt
//! suffixes quarantined.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"RSIMCAP1"
//! 8       4     version (u32 LE, currently 1)
//! 12      8     workload seed (u64 LE)
//! 20      …     records, back to back
//! ```
//!
//! Each record is `len: u32 LE` (body length), `checksum: u64 LE`
//! (FNV-1a over the body), then the body: `seq: u64 LE` (1-based,
//! gap-free), `arrival_offset_us: u64 LE` (microseconds since the
//! workload started), `deadline_ms: u64 LE` (`u64::MAX` = no deadline),
//! and the request line as UTF-8 bytes (no trailing newline).
//!
//! **Recovery** ([`recover`]) re-validates every record. A torn tail
//! (crash or kill mid-append) truncates with a Warn event; a corrupt
//! suffix (checksum, sequence, length or UTF-8 failure) is moved aside
//! through the bounded [`crate::quarantine`] rotation and truncated —
//! the intact prefix always survives. A file whose header is not ours
//! is quarantined whole.

use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use repsim_obs::CounterHandle;
use repsim_sparse::checksum;

static CAP_APPENDS: CounterHandle = CounterHandle::new("repsim.serve.capture.appends");
static CAP_REPLAYED: CounterHandle = CounterHandle::new("repsim.serve.capture.replayed");
static CAP_TORN: CounterHandle = CounterHandle::new("repsim.serve.capture.torn_truncations");
static CAP_QUARANTINED: CounterHandle = CounterHandle::new("repsim.serve.capture.quarantined");

const MAGIC: &[u8; 8] = b"RSIMCAP1";
/// Current capture format version.
pub const VERSION: u32 = 1;
/// Fixed header size (magic + version + workload seed).
pub const HEADER_LEN: usize = 20;
/// Per-record prefix: body length (u32) + body checksum (u64).
const RECORD_PREFIX: usize = 12;
/// Fixed body prefix: seq + arrival offset + deadline.
const BODY_FIXED: usize = 24;
/// `deadline_ms` wire value meaning "no deadline".
const NO_DEADLINE: u64 = u64::MAX;

/// Environment failures only; corruption inside the file is repaired
/// and reported in [`RecoveredCapture`], never an error.
#[derive(Debug)]
pub enum CaptureError {
    /// A filesystem operation failed.
    Io {
        /// The operation (`"create"`, `"append"`, `"read"`, …).
        op: &'static str,
        /// The capture path.
        path: PathBuf,
        /// The OS error.
        message: String,
    },
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::Io { op, path, message } => {
                write!(f, "capture {op} {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for CaptureError {}

fn io_err<'a>(
    op: &'static str,
    path: &'a Path,
) -> impl FnOnce(std::io::Error) -> CaptureError + 'a {
    move |e| CaptureError::Io {
        op,
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// One recorded request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaptureRecord {
    /// 1-based, gap-free sequence number.
    pub seq: u64,
    /// Microseconds after the workload started that this request was
    /// issued (open-loop replay re-creates the arrival process).
    pub arrival_offset_us: u64,
    /// The request's deadline; `None` = none recorded.
    pub deadline_ms: Option<u64>,
    /// The raw request line (newline-delimited JSON, no newline).
    pub line: String,
}

/// An open, append-positioned capture.
#[derive(Debug)]
pub struct CaptureWriter {
    path: PathBuf,
    file: File,
    next_seq: u64,
}

/// What [`recover`] reconstructed.
#[derive(Debug)]
pub struct RecoveredCapture {
    /// The workload seed recorded in the header (0 for a quarantined
    /// foreign file).
    pub seed: u64,
    /// Every record that validated, in order.
    pub records: Vec<CaptureRecord>,
    /// A partial trailing record was truncated away.
    pub torn_truncated: bool,
    /// A corrupt suffix (or a foreign whole file) was moved aside;
    /// where it went.
    pub quarantined_to: Option<PathBuf>,
}

fn header_bytes(seed: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN);
    h.extend_from_slice(MAGIC);
    h.extend_from_slice(&VERSION.to_le_bytes());
    h.extend_from_slice(&seed.to_le_bytes());
    h
}

fn encode_record(
    seq: u64,
    arrival_offset_us: u64,
    deadline_ms: Option<u64>,
    line: &str,
) -> Vec<u8> {
    let mut body = Vec::with_capacity(BODY_FIXED + line.len());
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(&arrival_offset_us.to_le_bytes());
    body.extend_from_slice(&deadline_ms.unwrap_or(NO_DEADLINE).to_le_bytes());
    body.extend_from_slice(line.as_bytes());
    let mut rec = Vec::with_capacity(RECORD_PREFIX + body.len());
    rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
    rec.extend_from_slice(&checksum(&body).to_le_bytes());
    rec.extend_from_slice(&body);
    rec
}

fn le_u32(b: &[u8], at: usize) -> u32 {
    let mut a = [0u8; 4];
    if let Some(s) = b.get(at..at + 4) {
        a.copy_from_slice(s);
    }
    u32::from_le_bytes(a)
}

fn le_u64(b: &[u8], at: usize) -> u64 {
    let mut a = [0u8; 8];
    if let Some(s) = b.get(at..at + 8) {
        a.copy_from_slice(s);
    }
    u64::from_le_bytes(a)
}

impl CaptureWriter {
    /// Creates a fresh capture at `path` (header only). Truncates an
    /// existing file — a capture is a recording, not a log to extend.
    pub fn create(path: &Path, seed: u64) -> Result<CaptureWriter, CaptureError> {
        let mut f = File::create(path).map_err(io_err("create", path))?;
        f.write_all(&header_bytes(seed))
            .map_err(io_err("write", path))?;
        Ok(CaptureWriter {
            path: path.to_path_buf(),
            file: f,
            next_seq: 1,
        })
    }

    /// Appends one request, returning its sequence number. Unlike the
    /// WAL there is no fsync per record — a capture is not an
    /// acknowledgment barrier; call [`CaptureWriter::finish`] to make
    /// the recording durable.
    pub fn append(
        &mut self,
        arrival_offset_us: u64,
        deadline_ms: Option<u64>,
        line: &str,
    ) -> Result<u64, CaptureError> {
        let seq = self.next_seq;
        let rec = encode_record(seq, arrival_offset_us, deadline_ms, line);
        self.file
            .write_all(&rec)
            .map_err(io_err("append", &self.path))?;
        self.next_seq += 1;
        CAP_APPENDS.add(1);
        Ok(seq)
    }

    /// The sequence number the next append will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Flushes and fsyncs the recording.
    pub fn finish(self) -> Result<(), CaptureError> {
        self.file.sync_all().map_err(io_err("fsync", &self.path))
    }
}

/// Reads and validates the capture at `path`, repairing damage in
/// place: torn tails truncate, corrupt suffixes quarantine, foreign
/// files quarantine whole (leaving nothing to replay). Only I/O
/// failures are errors; a missing file is one too — replaying a
/// capture that does not exist is a caller mistake, not damage.
pub fn recover(path: &Path) -> Result<RecoveredCapture, CaptureError> {
    let mut span = repsim_obs::span("repsim.serve.capture.replay");
    let bytes = fs::read(path).map_err(io_err("read", path))?;

    let header_ok = bytes.len() >= HEADER_LEN
        && bytes.get(..8).map(|m| m == MAGIC) == Some(true)
        && le_u32(&bytes, 8) == VERSION;
    if !header_ok {
        let quarantined_to =
            crate::quarantine::rotate_file(path).map_err(io_err("quarantine", path))?;
        CAP_QUARANTINED.add(1);
        repsim_obs::point(
            "repsim.serve.capture.quarantine",
            repsim_obs::Level::Warn,
            format!(
                "capture header invalid; moved to {}",
                quarantined_to.display()
            ),
        );
        return Ok(RecoveredCapture {
            seed: 0,
            records: Vec::new(),
            torn_truncated: false,
            quarantined_to: Some(quarantined_to),
        });
    }
    let seed = le_u64(&bytes, 12);

    // Scan records; `pos` always marks the end of the last validated
    // record. Same tail taxonomy as the WAL.
    enum TailFate {
        Clean,
        Torn,
        Corrupt(String),
    }
    let mut records: Vec<CaptureRecord> = Vec::new();
    let mut pos = HEADER_LEN;
    let mut expected_seq = 1u64;
    let fate = loop {
        let rest = bytes.get(pos..).unwrap_or(&[]);
        if rest.is_empty() {
            break TailFate::Clean;
        }
        if rest.len() < RECORD_PREFIX {
            break TailFate::Torn;
        }
        let body_len = le_u32(rest, 0) as usize;
        let declared_sum = le_u64(rest, 4);
        let body = match rest.get(RECORD_PREFIX..RECORD_PREFIX + body_len) {
            Some(b) => b,
            None => break TailFate::Torn,
        };
        if checksum(body) != declared_sum {
            break TailFate::Corrupt(format!("record {expected_seq}: checksum mismatch"));
        }
        if body.len() < BODY_FIXED {
            break TailFate::Corrupt(format!("record {expected_seq}: body too short"));
        }
        let seq = le_u64(body, 0);
        if seq != expected_seq {
            break TailFate::Corrupt(format!(
                "sequence gap (expected {expected_seq}, found {seq})"
            ));
        }
        let arrival_offset_us = le_u64(body, 8);
        let deadline = le_u64(body, 16);
        let line = match std::str::from_utf8(body.get(BODY_FIXED..).unwrap_or(&[])) {
            Ok(s) => s.to_owned(),
            Err(e) => break TailFate::Corrupt(format!("record {seq}: request not UTF-8: {e}")),
        };
        records.push(CaptureRecord {
            seq,
            arrival_offset_us,
            deadline_ms: (deadline != NO_DEADLINE).then_some(deadline),
            line,
        });
        pos += RECORD_PREFIX + body_len;
        expected_seq += 1;
    };

    let mut torn_truncated = false;
    let mut quarantined_to = None;
    match fate {
        TailFate::Clean => {}
        TailFate::Torn => {
            torn_truncated = true;
            CAP_TORN.add(1);
            repsim_obs::point(
                "repsim.serve.capture.torn_tail",
                repsim_obs::Level::Warn,
                format!(
                    "truncating {} torn byte(s) after record {}",
                    bytes.len() - pos,
                    expected_seq.saturating_sub(1)
                ),
            );
        }
        TailFate::Corrupt(reason) => {
            let tail = bytes.get(pos..).unwrap_or(&[]);
            let dest =
                crate::quarantine::rotate_bytes(path, tail).map_err(io_err("quarantine", path))?;
            CAP_QUARANTINED.add(1);
            repsim_obs::point(
                "repsim.serve.capture.quarantine",
                repsim_obs::Level::Warn,
                format!(
                    "{reason}; {} suffix byte(s) moved to {}",
                    tail.len(),
                    dest.display()
                ),
            );
            quarantined_to = Some(dest);
        }
    }
    if pos < bytes.len() {
        let f = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(io_err("open", path))?;
        f.set_len(pos as u64).map_err(io_err("truncate", path))?;
        f.sync_all().map_err(io_err("fsync", path))?;
    }

    CAP_REPLAYED.add(records.len() as u64);
    if span.is_active() {
        span.attr("records", records.len());
        span.attr("torn", u64::from(torn_truncated));
    }
    Ok(RecoveredCapture {
        seed,
        records,
        torn_truncated,
        quarantined_to,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("repsim-cap-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn lines() -> Vec<String> {
        vec![
            r#"{"id":1,"walk":"conf paper dom","label":"conf","value":"c0","k":5}"#.to_owned(),
            r#"{"id":2,"op":"mutate","action":"add_entity","label":"dom","value":"d9"}"#.to_owned(),
            r#"{"id":3,"walk":"conf paper dom","label":"conf","value":"c1","k":3}"#.to_owned(),
            r#"{"id":4,"op":"ping"}"#.to_owned(),
        ]
    }

    fn populate(path: &Path, seed: u64) {
        let mut w = CaptureWriter::create(path, seed).unwrap();
        for (i, line) in lines().iter().enumerate() {
            let deadline = (i % 2 == 0).then_some(250);
            let seq = w.append(1000 * i as u64, deadline, line).unwrap();
            assert_eq!(seq, i as u64 + 1);
        }
        w.finish().unwrap();
    }

    #[test]
    fn write_recover_roundtrip_is_exact() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("t.rsimcap");
        populate(&path, 0xfeed);
        let rec = recover(&path).unwrap();
        assert_eq!(rec.seed, 0xfeed);
        assert!(!rec.torn_truncated);
        assert!(rec.quarantined_to.is_none());
        assert_eq!(rec.records.len(), 4);
        for (i, (r, line)) in rec.records.iter().zip(lines()).enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.arrival_offset_us, 1000 * i as u64);
            assert_eq!(r.deadline_ms, (i % 2 == 0).then_some(250));
            assert_eq!(r.line, line);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncates_and_prefix_survives() {
        let dir = tmp_dir("torn");
        let path = dir.join("t.rsimcap");
        populate(&path, 7);
        let full = fs::read(&path).unwrap();
        for cut in [full.len() - 1, full.len() - 5, full.len() - 11] {
            fs::write(&path, &full[..cut]).unwrap();
            let rec = recover(&path).unwrap();
            assert!(rec.torn_truncated, "cut at {cut}");
            assert!(rec.quarantined_to.is_none());
            assert_eq!(rec.records.len(), 3, "last record lost, prefix kept");
            // Repaired in place: a second recovery is clean.
            let again = recover(&path).unwrap();
            assert!(!again.torn_truncated);
            assert_eq!(again.records.len(), 3);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_suffix_is_quarantined_prefix_survives() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("t.rsimcap");
        populate(&path, 7);
        let full = fs::read(&path).unwrap();
        // Flip a byte in record 2's body: record 1 keeps, 2.. quarantines.
        let r1_body = le_u32(&full, HEADER_LEN) as usize;
        let r2_at = HEADER_LEN + RECORD_PREFIX + r1_body;
        let mut bad = full.clone();
        bad[r2_at + RECORD_PREFIX + 9] ^= 0x20;
        fs::write(&path, &bad).unwrap();

        let rec = recover(&path).unwrap();
        assert_eq!(rec.records.len(), 1, "only the intact prefix replays");
        let dest = rec.quarantined_to.expect("suffix quarantined");
        assert!(dest.exists());
        assert_eq!(fs::read(&dest).unwrap(), &bad[r2_at..]);
        assert_eq!(fs::read(&path).unwrap().len(), r2_at);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_file_is_quarantined_whole() {
        let dir = tmp_dir("foreign");
        let path = dir.join("t.rsimcap");
        fs::write(&path, b"RSIMWAL1 this is some other format entirely").unwrap();
        let rec = recover(&path).unwrap();
        assert!(rec.records.is_empty());
        let dest = rec.quarantined_to.expect("whole file quarantined");
        assert!(dest.exists());
        assert!(!path.exists(), "original moved aside");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_capture_is_an_error_not_a_fresh_file() {
        let dir = tmp_dir("missing");
        let path = dir.join("nope.rsimcap");
        assert!(recover(&path).is_err());
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_utf8_request_body_quarantines() {
        let dir = tmp_dir("utf8");
        let path = dir.join("t.rsimcap");
        let mut w = CaptureWriter::create(&path, 1).unwrap();
        w.append(0, None, r#"{"op":"ping"}"#).unwrap();
        w.finish().unwrap();
        // Hand-craft a second record whose text bytes are invalid UTF-8
        // but whose checksum is correct.
        let mut body = Vec::new();
        body.extend_from_slice(&2u64.to_le_bytes());
        body.extend_from_slice(&0u64.to_le_bytes());
        body.extend_from_slice(&NO_DEADLINE.to_le_bytes());
        body.extend_from_slice(&[0xff, 0xfe, 0x80]);
        let mut rec = Vec::new();
        rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
        rec.extend_from_slice(&checksum(&body).to_le_bytes());
        rec.extend_from_slice(&body);
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&rec);
        fs::write(&path, &bytes).unwrap();

        let out = recover(&path).unwrap();
        assert_eq!(out.records.len(), 1);
        assert!(out.quarantined_to.is_some());
        let _ = fs::remove_dir_all(&dir);
    }
}
