//! A circuit breaker over budget-exhausted responses.
//!
//! When consecutive requests exhaust their budgets the server is
//! evidently past its capacity envelope; admitting more work only makes
//! every in-flight deadline worse. The breaker trips **open** after a
//! threshold of consecutive exhaustions and rejects instantly with a
//! retry-after hint. After a cool-down it **half-opens**: exactly one
//! probe request is admitted, and its outcome decides between closing
//! (recovered) and re-opening with doubled backoff. Jitter is
//! deterministic (a xorshift64 stream seeded at construction) so
//! replayed traces are reproducible while still decorrelating client
//! retries.
//!
//! The breaker is *per operation class* ([`OpClass`]): `rank` and
//! `mutate` exhaustions are tracked by independent states, so a poisoned
//! mutation stream (every delta blowing its budget) trips only the mutate
//! breaker and cannot shed read traffic — and vice versa. The legacy
//! class-less methods operate on the `rank` state.
//!
//! State transitions surface as `repsim.serve.breaker.*` counters and
//! Warn/Info point events (tagged with the class).

use repsim_audit::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use repsim_obs::CounterHandle;

static BREAKER_OPEN: CounterHandle = CounterHandle::new("repsim.serve.breaker.open");
static BREAKER_HALF_OPEN: CounterHandle = CounterHandle::new("repsim.serve.breaker.half_open");
static BREAKER_CLOSE: CounterHandle = CounterHandle::new("repsim.serve.breaker.close");

/// Tuning for [`CircuitBreaker`].
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive budget-exhausted responses that trip the breaker.
    pub threshold: u32,
    /// First open interval; doubles on every re-open.
    pub base_ms: u64,
    /// Backoff ceiling.
    pub max_ms: u64,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            base_ms: 50,
            max_ms: 5_000,
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// Which admission stream a request belongs to. Each class has its own
/// breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Read traffic: rank queries.
    Rank,
    /// Write traffic: graph mutations.
    Mutate,
}

impl OpClass {
    fn name(self) -> &'static str {
        match self {
            OpClass::Rank => "rank",
            OpClass::Mutate => "mutate",
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Closed,
    Open,
    HalfOpen,
}

struct State {
    kind: Kind,
    consecutive: u32,
    open_until: Option<Instant>,
    /// Consecutive opens; exponent of the backoff.
    reopens: u32,
    rng: u64,
}

/// See the module docs. All methods take `&self`; the state lives behind
/// one small mutex (the breaker is consulted once per request, far from
/// any hot loop).
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    rank: Mutex<State>,
    mutate: Mutex<State>,
}

impl CircuitBreaker {
    /// A closed breaker (both classes) with the given tuning.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        let fresh = |seed_salt: u64| State {
            kind: Kind::Closed,
            consecutive: 0,
            open_until: None,
            reopens: 0,
            rng: (cfg.jitter_seed ^ seed_salt) | 1,
        };
        CircuitBreaker {
            rank: Mutex::new(fresh(0)),
            mutate: Mutex::new(fresh(0x6d75_7461_7465)), // decorrelate streams
            cfg,
        }
    }

    fn lock(&self, class: OpClass) -> MutexGuard<'_, State> {
        let m = match class {
            OpClass::Rank => &self.rank,
            OpClass::Mutate => &self.mutate,
        };
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admission check for the rank class (legacy name).
    pub fn admit(&self) -> Result<(), u64> {
        self.admit_class(OpClass::Rank)
    }

    /// Admission check. `Ok(())` admits the request; `Err(ms)` rejects
    /// with a retry-after hint. While half-open, exactly one probe is
    /// admitted; concurrent requests are rejected until its verdict.
    pub fn admit_class(&self, class: OpClass) -> Result<(), u64> {
        let mut s = self.lock(class);
        match s.kind {
            Kind::Closed => Ok(()),
            Kind::HalfOpen => Err(self.cfg.base_ms.max(1)),
            Kind::Open => {
                let until = match s.open_until {
                    Some(u) => u,
                    None => {
                        // Unreachable by construction; recover by probing.
                        Self::transition(&mut s, class, Kind::HalfOpen);
                        return Ok(());
                    }
                };
                let now = Instant::now();
                if now < until {
                    Err(duration_ms(until - now).max(1))
                } else {
                    Self::transition(&mut s, class, Kind::HalfOpen);
                    Ok(())
                }
            }
        }
    }

    /// Records a successful rank response (legacy name).
    pub fn on_success(&self) {
        self.on_success_class(OpClass::Rank)
    }

    /// Records a successfully answered request (exact or degraded — any
    /// response that was *not* budget-exhausted).
    pub fn on_success_class(&self, class: OpClass) {
        let mut s = self.lock(class);
        s.consecutive = 0;
        if s.kind != Kind::Closed {
            s.reopens = 0;
            s.open_until = None;
            Self::transition(&mut s, class, Kind::Closed);
        }
    }

    /// Records a rank budget exhaustion (legacy name).
    pub fn on_exhausted(&self) -> Option<u64> {
        self.on_exhausted_class(OpClass::Rank)
    }

    /// Records a budget-exhausted response for one class. Returns the
    /// retry-after hint when this failure tripped (or re-tripped) that
    /// class's breaker. The other class is untouched.
    pub fn on_exhausted_class(&self, class: OpClass) -> Option<u64> {
        let mut s = self.lock(class);
        match s.kind {
            Kind::HalfOpen => Some(self.trip(&mut s, class)),
            Kind::Open => None,
            Kind::Closed => {
                s.consecutive += 1;
                if s.consecutive >= self.cfg.threshold {
                    Some(self.trip(&mut s, class))
                } else {
                    None
                }
            }
        }
    }

    /// The rank-class state, for the stats envelope and metrics table.
    pub fn state_name(&self) -> &'static str {
        self.state_name_class(OpClass::Rank)
    }

    /// The current state of one class's breaker.
    pub fn state_name_class(&self, class: OpClass) -> &'static str {
        match self.lock(class).kind {
            Kind::Closed => "closed",
            Kind::Open => "open",
            Kind::HalfOpen => "half-open",
        }
    }

    /// Opens (or re-opens) the breaker: exponential backoff with
    /// deterministic jitter in `[0, backoff/4]`.
    fn trip(&self, s: &mut State, class: OpClass) -> u64 {
        let exp = s.reopens.min(32);
        let backoff = self
            .cfg
            .base_ms
            .saturating_mul(1u64 << exp)
            .min(self.cfg.max_ms.max(self.cfg.base_ms));
        let jitter = if backoff >= 4 {
            xorshift(&mut s.rng) % (backoff / 4 + 1)
        } else {
            0
        };
        let wait = backoff + jitter;
        s.reopens += 1;
        s.consecutive = 0;
        s.open_until = Some(Instant::now() + Duration::from_millis(wait));
        Self::transition(s, class, Kind::Open);
        wait
    }

    fn transition(s: &mut State, class: OpClass, to: Kind) {
        if s.kind == to {
            return;
        }
        s.kind = to;
        let (counter, level, name) = match to {
            Kind::Open => (&BREAKER_OPEN, repsim_obs::Level::Warn, "open"),
            Kind::HalfOpen => (&BREAKER_HALF_OPEN, repsim_obs::Level::Info, "half-open"),
            Kind::Closed => (&BREAKER_CLOSE, repsim_obs::Level::Info, "closed"),
        };
        counter.add(1);
        if repsim_obs::enabled() {
            repsim_obs::point(
                "repsim.serve.breaker.transition",
                level,
                format!("{}:{}", class.name(), name),
            );
        }
    }
}

fn duration_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            threshold: 3,
            base_ms: 20,
            max_ms: 200,
            jitter_seed: 42,
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_exhaustions() {
        let b = fast();
        assert!(b.on_exhausted().is_none());
        assert!(b.on_exhausted().is_none());
        let wait = b.on_exhausted().expect("third failure trips");
        assert!(wait >= 20, "at least the base backoff, got {wait}");
        assert_eq!(b.state_name(), "open");
        assert!(b.admit().is_err(), "open breaker rejects");
    }

    #[test]
    fn successes_reset_the_streak() {
        let b = fast();
        b.on_exhausted();
        b.on_exhausted();
        b.on_success();
        b.on_exhausted();
        b.on_exhausted();
        assert!(
            b.on_exhausted().is_some(),
            "streak restarted after the success"
        );
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let b = fast();
        for _ in 0..3 {
            b.on_exhausted();
        }
        // Wait out the first backoff (base 20ms + ≤5ms jitter).
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.admit().is_ok(), "cool-down elapsed: probe admitted");
        assert_eq!(b.state_name(), "half-open");
        assert!(b.admit().is_err(), "only one probe at a time");
        b.on_success();
        assert_eq!(b.state_name(), "closed");
        assert!(b.admit().is_ok());
    }

    #[test]
    fn failed_probe_reopens_with_doubled_backoff() {
        let b = fast();
        for _ in 0..3 {
            b.on_exhausted();
        }
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.admit().is_ok());
        let second = b.on_exhausted().expect("probe failure re-trips");
        assert!(second >= 40, "backoff doubled from 20 to 40, got {second}");
        assert_eq!(b.state_name(), "open");
    }

    #[test]
    fn backoff_is_capped() {
        let b = CircuitBreaker::new(BreakerConfig {
            threshold: 1,
            base_ms: 100,
            max_ms: 150,
            jitter_seed: 7,
        });
        let mut last = 0;
        for _ in 0..10 {
            last = b.on_exhausted().unwrap_or(last);
            // Force back to half-open to fail the probe again.
            std::thread::sleep(Duration::from_millis(1));
            let mut s = b.lock(OpClass::Rank);
            s.kind = Kind::HalfOpen;
            drop(s);
        }
        assert!(last <= 150 + 150 / 4, "cap plus jitter, got {last}");
    }

    #[test]
    fn classes_are_independent() {
        let b = fast();
        // Trip the mutate breaker...
        for _ in 0..3 {
            b.on_exhausted_class(OpClass::Mutate);
        }
        assert_eq!(b.state_name_class(OpClass::Mutate), "open");
        assert!(b.admit_class(OpClass::Mutate).is_err());
        // ...and the rank class still admits, fails and trips on its own.
        assert_eq!(b.state_name_class(OpClass::Rank), "closed");
        assert!(b.admit_class(OpClass::Rank).is_ok());
        assert!(b.on_exhausted_class(OpClass::Rank).is_none());
        // A mutate success must not reset the rank streak.
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.admit_class(OpClass::Mutate).is_ok());
        b.on_success_class(OpClass::Mutate);
        assert_eq!(b.state_name_class(OpClass::Mutate), "closed");
        assert!(b.on_exhausted_class(OpClass::Rank).is_none());
        assert!(
            b.on_exhausted_class(OpClass::Rank).is_some(),
            "rank streak was preserved across mutate activity"
        );
    }
}
