//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, in order.
//! Requests are parsed with [`repsim_obs::json`] (the workspace's
//! zero-dependency parser); responses are emitted by hand with the same
//! escaping rules. The envelope is versioned implicitly by the server's
//! snapshot/protocol docs in DESIGN.md ("Serving & persistence").
//!
//! Request (`op` defaults to `"rank"` when a `walk` is present):
//!
//! ```json
//! {"id":1,"op":"rank","walk":"conf paper dom kw","label":"conf","value":"c0","k":10,"deadline_ms":250}
//! {"id":2,"op":"ping"}
//! {"id":3,"op":"stats"}
//! {"id":4,"op":"snapshot"}
//! {"id":5,"op":"shutdown"}
//! {"id":6,"op":"mutate","action":"add_entity","label":"actor","value":"new"}
//! {"id":7,"op":"mutate","action":"add_edge","a":"film:f0","b":"actor:new"}
//! {"id":8,"op":"mutate","action":"remove_edge","a":"film:f0","b":"actor:new"}
//! {"id":9,"op":"stats-stream","interval_ms":500,"count":10}
//! ```
//!
//! Mutate node references are `label:value` for entities or
//! `label:#index` for relationship nodes ([`repsim_graph::NodeRef`]'s
//! text form). Mutate responses carry the post-mutation graph
//! fingerprint (hex), the WAL sequence number that made the write
//! durable, and the index-maintenance path taken (`"delta"`,
//! `"rebuild"`, `"evict"` or `"none"`).
//!
//! Success envelope: `{"id":…,"ok":true,…}` with an op-specific payload;
//! rank responses carry `"tier"` (the degradation tier that actually
//! answered) and `"results":[{"label":…,"value":…,"score":…},…]`.
//! Failure envelope: `{"id":…,"ok":false,"error":{"code":…,"message":…}}`
//! plus `"retry_after_ms"` on `overloaded` rejections.

use std::fmt::Write as _;

use repsim_graph::{MutationOp, NodeRef};
use repsim_obs::json::{self, Json};

use crate::error::ServiceError;

/// A request id, echoed verbatim into the response envelope.
#[derive(Clone, Debug, PartialEq)]
pub enum ReqId {
    /// A numeric id.
    Num(f64),
    /// A string id.
    Str(String),
    /// No id supplied.
    Absent,
}

impl ReqId {
    fn from_json(v: Option<&Json>) -> ReqId {
        match v {
            Some(Json::Num(n)) => ReqId::Num(*n),
            Some(Json::Str(s)) => ReqId::Str(s.clone()),
            _ => ReqId::Absent,
        }
    }

    pub(crate) fn render(&self, out: &mut String) {
        match self {
            ReqId::Num(n) => {
                let _ = write!(out, "\"id\":{},", fmt_num(*n));
            }
            ReqId::Str(s) => {
                let _ = write!(out, "\"id\":\"{}\",", esc(s));
            }
            ReqId::Absent => {}
        }
    }
}

/// A parsed request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Rank entities similar to `(label, value)` under `walk`'s closure.
    Rank {
        /// Echoed request id.
        id: ReqId,
        /// The half meta-walk, in text form (`"conf paper dom kw"`).
        walk: String,
        /// Query entity label name.
        label: String,
        /// Query entity value.
        value: String,
        /// Top-k size.
        k: usize,
        /// Per-request deadline; `None` uses the server default.
        deadline_ms: Option<u64>,
    },
    /// Liveness check.
    Ping {
        /// Echoed request id.
        id: ReqId,
    },
    /// Serving-layer counters and breaker state.
    Stats {
        /// Echoed request id.
        id: ReqId,
    },
    /// Subscribe this connection to a periodic stats push: one JSON
    /// line per `interval_ms` carrying the [`StatsBody`] plus a
    /// delta-metrics snapshot, until `count` lines were sent (0 =
    /// until the client disconnects or the server shuts down). A
    /// control op — bypasses the admission queue.
    StatsStream {
        /// Echoed request id.
        id: ReqId,
        /// Push interval in milliseconds (floor 10, default 1000).
        interval_ms: u64,
        /// Number of lines to push; 0 = unbounded.
        count: u64,
    },
    /// Persist the index snapshot now.
    Snapshot {
        /// Echoed request id.
        id: ReqId,
    },
    /// Drain the queue and exit gracefully (final snapshot included).
    Shutdown {
        /// Echoed request id.
        id: ReqId,
    },
    /// Apply one graph mutation (WAL-logged before acknowledgment).
    Mutate {
        /// Echoed request id.
        id: ReqId,
        /// The mutation to apply.
        op: MutationOp,
        /// Per-request deadline; `None` uses the server default.
        deadline_ms: Option<u64>,
    },
}

impl Request {
    /// Parses one request line. Errors are protocol-level (malformed
    /// JSON, unknown op, missing fields) and map to `bad_request`.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        let id = ReqId::from_json(v.get("id"));
        let op = match v.get("op").and_then(Json::as_str) {
            Some(op) => op,
            None if v.get("walk").is_some() => "rank",
            None => return Err("missing \"op\"".to_owned()),
        };
        match op {
            "rank" => {
                let field = |name: &str| -> Result<String, String> {
                    v.get(name)
                        .and_then(Json::as_str)
                        .map(str::to_owned)
                        .ok_or_else(|| format!("rank requires string field {name:?}"))
                };
                let k = match v.get("k").and_then(Json::as_num) {
                    Some(k) if k >= 1.0 && k.fract() == 0.0 && k <= 1e6 => k as usize,
                    Some(_) => return Err("\"k\" must be a positive integer".to_owned()),
                    None => 10,
                };
                let deadline_ms = match v.get("deadline_ms").and_then(Json::as_num) {
                    Some(d) if d >= 0.0 && d.fract() == 0.0 => Some(d as u64),
                    Some(_) => {
                        return Err("\"deadline_ms\" must be a non-negative integer".to_owned())
                    }
                    None => None,
                };
                Ok(Request::Rank {
                    id,
                    walk: field("walk")?,
                    label: field("label")?,
                    value: field("value")?,
                    k,
                    deadline_ms,
                })
            }
            "ping" => Ok(Request::Ping { id }),
            "stats" => Ok(Request::Stats { id }),
            "stats-stream" => {
                let interval_ms = match v.get("interval_ms").and_then(Json::as_num) {
                    Some(i) if i >= 1.0 && i.fract() == 0.0 && i <= 1e9 => (i as u64).max(10),
                    Some(_) => return Err("\"interval_ms\" must be a positive integer".to_owned()),
                    None => 1000,
                };
                let count = match v.get("count").and_then(Json::as_num) {
                    Some(c) if c >= 0.0 && c.fract() == 0.0 && c <= 1e9 => c as u64,
                    Some(_) => return Err("\"count\" must be a non-negative integer".to_owned()),
                    None => 0,
                };
                Ok(Request::StatsStream {
                    id,
                    interval_ms,
                    count,
                })
            }
            "snapshot" => Ok(Request::Snapshot { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "mutate" => {
                let field = |name: &str| -> Result<String, String> {
                    v.get(name)
                        .and_then(Json::as_str)
                        .map(str::to_owned)
                        .ok_or_else(|| format!("mutate requires string field {name:?}"))
                };
                let node = |name: &str| -> Result<NodeRef, String> {
                    NodeRef::parse(&field(name)?).map_err(|e| format!("field {name:?}: {e}"))
                };
                let deadline_ms = match v.get("deadline_ms").and_then(Json::as_num) {
                    Some(d) if d >= 0.0 && d.fract() == 0.0 => Some(d as u64),
                    Some(_) => {
                        return Err("\"deadline_ms\" must be a non-negative integer".to_owned())
                    }
                    None => None,
                };
                let op = match field("action")?.as_str() {
                    "add_entity" => MutationOp::AddEntity {
                        label: field("label")?,
                        value: field("value")?,
                    },
                    "add_edge" => MutationOp::AddEdge {
                        a: node("a")?,
                        b: node("b")?,
                    },
                    "remove_edge" => MutationOp::RemoveEdge {
                        a: node("a")?,
                        b: node("b")?,
                    },
                    other => return Err(format!("unknown mutate action {other:?}")),
                };
                Ok(Request::Mutate {
                    id,
                    op,
                    deadline_ms,
                })
            }
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// The request id, for error envelopes built outside the handler.
    pub fn id(&self) -> &ReqId {
        match self {
            Request::Rank { id, .. }
            | Request::Ping { id }
            | Request::Stats { id }
            | Request::StatsStream { id, .. }
            | Request::Snapshot { id }
            | Request::Shutdown { id }
            | Request::Mutate { id, .. } => id,
        }
    }
}

/// One ranked entity in a rank response.
#[derive(Clone, Debug, PartialEq)]
pub struct RankEntry {
    /// Entity label name.
    pub label: String,
    /// Entity value.
    pub value: String,
    /// R-PathSim score under the tier that answered.
    pub score: f64,
}

/// The shard identity a fleet member attaches to its rank responses:
/// which band answered and which graph epoch it answered from. The
/// coordinator refuses to merge responses whose fingerprints disagree
/// (a shard mid-mutation is *failed*, never silently merged) and strips
/// the field from the client-facing line so single-node and fleet
/// responses stay byte-identical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardIdent {
    /// Shard index in `0..count` (row band over the candidate label).
    pub id: u32,
    /// Graph fingerprint of the answering epoch.
    pub fingerprint: u64,
    /// WAL sequence number of the answering epoch.
    pub seq: u64,
}

/// A shard's reply to a scatter-gathered rank request, as parsed by the
/// coordinator. Anything that is not a well-formed success or typed
/// error line is a parse error (and the attempt is treated as failed).
#[derive(Clone, Debug, PartialEq)]
pub enum ShardReply {
    /// A successful partial ranking over the shard's band.
    Rank {
        /// Degradation tier the shard answered at.
        tier: String,
        /// The shard's band-local top-k, best first.
        results: Vec<RankEntry>,
        /// The answering shard's identity + epoch.
        shard: ShardIdent,
    },
    /// A typed failure from the shard.
    Error {
        /// Error code (`"overloaded"`, `"exhausted"`, …).
        code: String,
        /// Human-readable message.
        message: String,
        /// Retry hint on `overloaded` rejections.
        retry_after_ms: Option<u64>,
    },
}

/// Parses one shard response line of the coordinator↔shard envelope.
/// Returns `Err` for malformed JSON, missing fields, or a success line
/// without a shard identity (a non-shard server answered — never merge
/// it). Tolerates trailing CR from CRLF framing.
pub fn parse_shard_reply(line: &str) -> Result<ShardReply, String> {
    let v = json::parse(line.trim_end_matches(['\r', '\n']))
        .map_err(|e| format!("shard reply: {e}"))?;
    match v.get("ok") {
        Some(Json::Bool(true)) => {}
        Some(Json::Bool(false)) => {
            let err = v
                .get("error")
                .ok_or_else(|| "error line without \"error\" object".to_owned())?;
            let code = err
                .get("code")
                .and_then(Json::as_str)
                .ok_or_else(|| "error without \"code\"".to_owned())?
                .to_owned();
            let message = err
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned();
            let retry_after_ms = match err.get("retry_after_ms").and_then(Json::as_num) {
                Some(ms) if ms >= 0.0 && ms.fract() == 0.0 && ms <= 1e15 => Some(ms as u64),
                Some(_) => return Err("\"retry_after_ms\" must be a non-negative integer".into()),
                None => None,
            };
            return Ok(ShardReply::Error {
                code,
                message,
                retry_after_ms,
            });
        }
        _ => return Err("shard reply without boolean \"ok\"".to_owned()),
    }
    let tier = v
        .get("tier")
        .and_then(Json::as_str)
        .ok_or_else(|| "success reply without \"tier\"".to_owned())?
        .to_owned();
    let results = v
        .get("results")
        .and_then(Json::as_arr)
        .ok_or_else(|| "success reply without \"results\"".to_owned())?;
    let mut entries = Vec::with_capacity(results.len());
    for r in results {
        let field = |name: &str| -> Result<String, String> {
            r.get(name)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("result entry without string {name:?}"))
        };
        let score = r
            .get("score")
            .and_then(Json::as_num)
            .ok_or_else(|| "result entry without numeric \"score\"".to_owned())?;
        if !score.is_finite() {
            return Err("non-finite score in shard reply".to_owned());
        }
        entries.push(RankEntry {
            label: field("label")?,
            value: field("value")?,
            score,
        });
    }
    let ident = v
        .get("shard")
        .ok_or_else(|| "success reply without \"shard\" identity".to_owned())?;
    let id = match ident.get("id").and_then(Json::as_num) {
        Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= f64::from(u32::MAX) => n as u32,
        _ => return Err("shard identity without integer \"id\"".to_owned()),
    };
    let fingerprint = ident
        .get("fingerprint")
        .and_then(Json::as_str)
        .and_then(parse_fingerprint_hex)
        .ok_or_else(|| "shard identity without 0x-hex \"fingerprint\"".to_owned())?;
    let seq = match ident.get("seq").and_then(Json::as_num) {
        Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= 1e15 => n as u64,
        _ => return Err("shard identity without integer \"seq\"".to_owned()),
    };
    Ok(ShardReply::Rank {
        tier,
        results: entries,
        shard: ShardIdent {
            id,
            fingerprint,
            seq,
        },
    })
}

/// Renders the rank request line the coordinator forwards to a shard.
/// The id is omitted on the hop — attempts are matched to responses by
/// connection, one request per connection attempt.
pub(crate) fn render_rank_request(
    walk: &str,
    label: &str,
    value: &str,
    k: usize,
    deadline_ms: Option<u64>,
) -> String {
    let mut out = format!(
        "{{\"op\":\"rank\",\"walk\":\"{}\",\"label\":\"{}\",\"value\":\"{}\",\"k\":{k}",
        esc(walk),
        esc(label),
        esc(value)
    );
    if let Some(ms) = deadline_ms {
        let _ = write!(out, ",\"deadline_ms\":{ms}");
    }
    out.push('}');
    out
}

/// Parses the `0x`-prefixed 16-digit hex fingerprint the serve layer
/// renders everywhere (`{:#018x}`).
fn parse_fingerprint_hex(s: &str) -> Option<u64> {
    let hex = s.strip_prefix("0x")?;
    if hex.is_empty() || hex.len() > 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Serving-layer counters for the `stats` op.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsBody {
    /// Requests admitted over the server's lifetime.
    pub requests: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests answered by a degraded tier.
    pub degraded: u64,
    /// Requests whose budget exhausted every tier.
    pub exhausted: u64,
    /// Current queue depth.
    pub queue_depth: usize,
    /// Queue capacity.
    pub queue_capacity: usize,
    /// Commuting matrices resident in the cache.
    pub cache_entries: usize,
    /// Query engines resident (one per distinct half walk served).
    pub engines: usize,
    /// Rank breaker state: `"closed"`, `"open"`, `"half-open"`.
    pub breaker: String,
    /// Mutate breaker state: `"closed"`, `"open"`, `"half-open"`.
    pub breaker_mutate: String,
    /// Whether the index was restored from a snapshot at startup.
    pub snapshot_restored: bool,
    /// Mutations acknowledged (durably WAL-logged) over the lifetime.
    pub mutations: u64,
    /// Mutations rejected with a budget exhaustion (counted apart from
    /// rank exhaustions; they trip a separate breaker class).
    pub mutate_exhausted: u64,
    /// Current graph fingerprint, `0x`-prefixed hex.
    pub fingerprint: String,
    /// Last acknowledged WAL sequence number (0 = none yet).
    pub seq: u64,
    /// Milliseconds since the server started serving.
    pub uptime_ms: u64,
    /// Shard index when this instance serves one band of a fleet;
    /// `0` for a single-node server (the backward-compatible shape).
    /// The epoch half of the shard identity is the `fingerprint`/`seq`
    /// pair already carried by every frame.
    pub shard: u32,
    /// Milliseconds since the last persisted index snapshot; `None`
    /// when no snapshot was written or restored this run.
    pub snapshot_age_ms: Option<u64>,
}

impl StatsBody {
    /// The body as a JSON object (no envelope), shared by the `stats`
    /// reply, the `stats-stream` push lines and the metrics journal.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"requests\":{},\"shed\":{},\"degraded\":{},\
             \"exhausted\":{},\"queue_depth\":{},\"queue_capacity\":{},\
             \"cache_entries\":{},\"engines\":{},\"breaker\":\"{}\",\
             \"breaker_mutate\":\"{}\",\"snapshot_restored\":{},\
             \"mutations\":{},\"mutate_exhausted\":{},\
             \"fingerprint\":\"{}\",\"seq\":{},\"uptime_ms\":{},\"shard\":{}",
            self.requests,
            self.shed,
            self.degraded,
            self.exhausted,
            self.queue_depth,
            self.queue_capacity,
            self.cache_entries,
            self.engines,
            esc(&self.breaker),
            esc(&self.breaker_mutate),
            self.snapshot_restored,
            self.mutations,
            self.mutate_exhausted,
            esc(&self.fingerprint),
            self.seq,
            self.uptime_ms,
            self.shard
        );
        if let Some(age) = self.snapshot_age_ms {
            let _ = write!(out, ",\"snapshot_age_ms\":{age}");
        }
        out.push('}');
        out
    }
}

/// A response, rendered as one JSON line.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A ranked answer, possibly degraded (see `tier`).
    Rank {
        /// Echoed request id.
        id: ReqId,
        /// Degradation tier: `"exact"`, `"half-factorized"`,
        /// `"prefix:<walk>"`, or `"partial-shards:A/T"` (coordinator
        /// only, some shards unreachable).
        tier: String,
        /// Top-k entries, best first.
        results: Vec<RankEntry>,
        /// Shard identity + epoch, attached by fleet members and
        /// consumed (stripped) by the coordinator. `None` on single-node
        /// and coordinator client-facing responses, keeping those lines
        /// byte-identical to the pre-fleet wire format.
        shard: Option<ShardIdent>,
        /// `(answered, total)` shard coverage, attached by the
        /// coordinator only when coverage is partial (the tier then says
        /// `partial-shards:A/T` too). Full-coverage responses omit it.
        coverage: Option<(usize, usize)>,
    },
    /// Ping reply.
    Pong {
        /// Echoed request id.
        id: ReqId,
    },
    /// Stats reply.
    Stats {
        /// Echoed request id.
        id: ReqId,
        /// The counters.
        body: StatsBody,
    },
    /// Snapshot-now reply.
    Snapshot {
        /// Echoed request id.
        id: ReqId,
        /// Entries persisted.
        entries: usize,
        /// Snapshot size in bytes (header + payload).
        bytes: usize,
    },
    /// Shutdown acknowledged; the server drains and exits.
    ShuttingDown {
        /// Echoed request id.
        id: ReqId,
    },
    /// Mutation acknowledged: durable in the WAL, index maintained.
    Mutate {
        /// Echoed request id.
        id: ReqId,
        /// Post-mutation graph fingerprint, `0x`-prefixed hex.
        fingerprint: String,
        /// The WAL sequence number that made the write durable.
        seq: u64,
        /// Index maintenance path: `"delta"`, `"rebuild"`, `"evict"`
        /// or `"none"`.
        path: String,
    },
    /// A typed failure.
    Error {
        /// Echoed request id.
        id: ReqId,
        /// What went wrong.
        error: ServiceError,
    },
}

impl Response {
    /// Renders the response as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{");
        match self {
            Response::Rank {
                id,
                tier,
                results,
                shard,
                coverage,
            } => {
                id.render(&mut out);
                let _ = write!(out, "\"ok\":true,\"tier\":\"{}\",\"results\":[", esc(tier));
                for (i, r) in results.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"label\":\"{}\",\"value\":\"{}\",\"score\":{}}}",
                        esc(&r.label),
                        esc(&r.value),
                        fmt_num(r.score)
                    );
                }
                out.push(']');
                if let Some(s) = shard {
                    let _ = write!(
                        out,
                        ",\"shard\":{{\"id\":{},\"fingerprint\":\"{:#018x}\",\"seq\":{}}}",
                        s.id, s.fingerprint, s.seq
                    );
                }
                if let Some((answered, total)) = coverage {
                    let _ = write!(
                        out,
                        ",\"coverage\":{{\"answered\":{answered},\"total\":{total}}}"
                    );
                }
            }
            Response::Pong { id } => {
                id.render(&mut out);
                out.push_str("\"ok\":true,\"pong\":true");
            }
            Response::Stats { id, body } => {
                id.render(&mut out);
                let _ = write!(out, "\"ok\":true,\"stats\":{}", body.to_json());
            }
            Response::Snapshot { id, entries, bytes } => {
                id.render(&mut out);
                let _ = write!(
                    out,
                    "\"ok\":true,\"snapshot\":{{\"entries\":{entries},\"bytes\":{bytes}}}"
                );
            }
            Response::ShuttingDown { id } => {
                id.render(&mut out);
                out.push_str("\"ok\":true,\"shutting_down\":true");
            }
            Response::Mutate {
                id,
                fingerprint,
                seq,
                path,
            } => {
                id.render(&mut out);
                let _ = write!(
                    out,
                    "\"ok\":true,\"mutate\":{{\"fingerprint\":\"{}\",\"seq\":{seq},\"path\":\"{}\"}}",
                    esc(fingerprint),
                    esc(path)
                );
            }
            Response::Error { id, error } => {
                id.render(&mut out);
                let _ = write!(
                    out,
                    "\"ok\":false,\"error\":{{\"code\":\"{}\",\"message\":\"{}\"",
                    error.code(),
                    esc(&error.to_string())
                );
                if let Some(ms) = error.retry_after_ms() {
                    let _ = write!(out, ",\"retry_after_ms\":{ms}");
                }
                out.push('}');
            }
        }
        out.push('}');
        out
    }
}

/// Escapes a string for a double-quoted JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a finite `f64` as a JSON number (integers without a trailing
/// `.0`; non-finite values, which the scorers never produce, as `null`).
fn fmt_num(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_owned();
    }
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_request_parses_with_defaults() {
        let r =
            Request::parse(r#"{"id":1,"walk":"conf paper dom kw","label":"conf","value":"c0"}"#)
                .unwrap();
        match r {
            Request::Rank {
                id,
                walk,
                label,
                value,
                k,
                deadline_ms,
            } => {
                assert_eq!(id, ReqId::Num(1.0));
                assert_eq!(walk, "conf paper dom kw");
                assert_eq!(label, "conf");
                assert_eq!(value, "c0");
                assert_eq!(k, 10, "k defaults to 10");
                assert_eq!(deadline_ms, None);
            }
            other => panic!("expected rank, got {other:?}"),
        }
    }

    #[test]
    fn ops_parse() {
        for (op, want) in [
            ("ping", Request::Ping { id: ReqId::Absent }),
            ("stats", Request::Stats { id: ReqId::Absent }),
            ("snapshot", Request::Snapshot { id: ReqId::Absent }),
            ("shutdown", Request::Shutdown { id: ReqId::Absent }),
        ] {
            assert_eq!(
                Request::parse(&format!("{{\"op\":\"{op}\"}}")).unwrap(),
                want
            );
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{}").is_err(), "no op, no walk");
        assert!(Request::parse(r#"{"op":"frobnicate"}"#).is_err());
        assert!(
            Request::parse(r#"{"op":"rank","walk":"a b c"}"#).is_err(),
            "rank without label/value"
        );
        assert!(
            Request::parse(r#"{"walk":"a","label":"a","value":"x","k":0}"#).is_err(),
            "k must be >= 1"
        );
        assert!(
            Request::parse(r#"{"walk":"a","label":"a","value":"x","deadline_ms":-5}"#).is_err()
        );
    }

    #[test]
    fn responses_roundtrip_through_the_obs_parser() {
        let resp = Response::Rank {
            id: ReqId::Num(7.0),
            tier: "exact".to_owned(),
            results: vec![
                RankEntry {
                    label: "conf".to_owned(),
                    value: "He said \"hi\"".to_owned(),
                    score: 1.0,
                },
                RankEntry {
                    label: "conf".to_owned(),
                    value: "c1".to_owned(),
                    score: 0.25,
                },
            ],
            shard: None,
            coverage: None,
        };
        let line = resp.to_json_line();
        let v = repsim_obs::json::parse(&line).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("id").and_then(Json::as_num), Some(7.0));
        let results = v.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("value").and_then(Json::as_str),
            Some("He said \"hi\"")
        );
        assert_eq!(results[1].get("score").and_then(Json::as_num), Some(0.25));
    }

    #[test]
    fn shard_envelope_roundtrips_and_absent_fields_keep_the_line_shape() {
        let entry = RankEntry {
            label: "conf".to_owned(),
            value: "c0".to_owned(),
            score: 0.5,
        };
        let plain = Response::Rank {
            id: ReqId::Num(1.0),
            tier: "exact".to_owned(),
            results: vec![entry.clone()],
            shard: None,
            coverage: None,
        }
        .to_json_line();
        assert!(!plain.contains("shard"), "single-node line unchanged");
        assert!(!plain.contains("coverage"));

        let ident = ShardIdent {
            id: 1,
            fingerprint: 0xdead_beef_0123_4567,
            seq: 42,
        };
        let sharded = Response::Rank {
            id: ReqId::Num(1.0),
            tier: "exact".to_owned(),
            results: vec![entry],
            shard: Some(ident.clone()),
            coverage: None,
        }
        .to_json_line();
        match parse_shard_reply(&sharded).unwrap() {
            ShardReply::Rank {
                tier,
                results,
                shard,
            } => {
                assert_eq!(tier, "exact");
                assert_eq!(results.len(), 1);
                assert_eq!(results[0].score, 0.5);
                assert_eq!(shard, ident);
            }
            other => panic!("expected rank, got {other:?}"),
        }
        // A success line without the shard identity must not merge.
        assert!(parse_shard_reply(&plain).is_err());
    }

    #[test]
    fn shard_reply_parses_typed_errors_and_rejects_noise() {
        let err = Response::Error {
            id: ReqId::Num(2.0),
            error: ServiceError::Overloaded { retry_after_ms: 40 },
        }
        .to_json_line();
        match parse_shard_reply(&err).unwrap() {
            ShardReply::Error {
                code,
                retry_after_ms,
                ..
            } => {
                assert_eq!(code, "overloaded");
                assert_eq!(retry_after_ms, Some(40));
            }
            other => panic!("expected error, got {other:?}"),
        }
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"ok":true}"#,
            r#"{"ok":true,"tier":"exact"}"#,
            r#"{"ok":true,"tier":"exact","results":[],"shard":{"id":0}}"#,
            r#"{"ok":true,"tier":"exact","results":[],"shard":{"id":0,"fingerprint":"nothex","seq":1}}"#,
            r#"{"ok":false}"#,
        ] {
            assert!(parse_shard_reply(bad).is_err(), "{bad:?}");
        }
        // CRLF framing is tolerated on otherwise-valid lines.
        let crlf = format!("{err}\r");
        assert!(parse_shard_reply(&crlf).is_ok());
    }

    #[test]
    fn coverage_field_renders_only_when_partial() {
        let resp = Response::Rank {
            id: ReqId::Absent,
            tier: "partial-shards:1/2".to_owned(),
            results: vec![],
            shard: None,
            coverage: Some((1, 2)),
        };
        let line = resp.to_json_line();
        let v = repsim_obs::json::parse(&line).unwrap();
        let cov = v.get("coverage").unwrap();
        assert_eq!(cov.get("answered").and_then(Json::as_num), Some(1.0));
        assert_eq!(cov.get("total").and_then(Json::as_num), Some(2.0));
        assert_eq!(
            v.get("tier").and_then(Json::as_str),
            Some("partial-shards:1/2")
        );
    }

    #[test]
    fn stats_body_carries_the_shard_field() {
        let body = StatsBody::default();
        let v = repsim_obs::json::parse(&body.to_json()).unwrap();
        assert_eq!(
            v.get("shard").and_then(Json::as_num),
            Some(0.0),
            "single-node frames carry shard 0"
        );
    }

    #[test]
    fn error_envelope_carries_code_and_retry_hint() {
        let resp = Response::Error {
            id: ReqId::Str("a".to_owned()),
            error: ServiceError::Overloaded { retry_after_ms: 40 },
        };
        let v = repsim_obs::json::parse(&resp.to_json_line()).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        let err = v.get("error").unwrap();
        assert_eq!(err.get("code").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(err.get("retry_after_ms").and_then(Json::as_num), Some(40.0));
    }

    #[test]
    fn control_characters_escape() {
        let resp = Response::Error {
            id: ReqId::Absent,
            error: ServiceError::BadRequest("tab\there\nnewline".to_owned()),
        };
        let line = resp.to_json_line();
        assert!(!line.contains('\n'), "one line per response: {line:?}");
        assert!(repsim_obs::json::parse(&line).is_ok());
    }
}
