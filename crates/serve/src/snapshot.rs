//! Crash-safe persistence for commuting-matrix indexes.
//!
//! A snapshot holds every [`CommutingCache`] entry (which double as the
//! query engines' half-matrix indexes) in one file:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"RSIMSNAP"
//! 8       4     version (u32 LE, currently 1)
//! 12      8     graph fingerprint (u64 LE, FNV-1a over labels/nodes/edges)
//! 20      8     entry count (u64 LE)
//! 28      8     payload length in bytes (u64 LE)
//! 36      8     payload checksum (u64 LE, FNV-1a)
//! 44      …     payload: entries, sorted by (kind, walk text)
//! ```
//!
//! Each payload entry is `kind: u8` (0 = plain, 1 = informative),
//! `walk_len: u64 LE`, the walk's UTF-8 text form, then the matrix in
//! [`Csr::encode_auto_into`]'s layout — the succinct delta-encoded
//! record when the matrix shape permits, the plain record otherwise;
//! [`Csr::decode`] reads both, so snapshots written before the compact
//! record existed keep loading. Walks persist as *text* and are
//! re-parsed against the live graph on load, so label-id renumbering or
//! schema drift is caught structurally, not trusted.
//!
//! **Save** is atomic: payload is built in memory, written to
//! `<path>.tmp`, fsynced, renamed over `<path>`, and the parent
//! directory fsynced — a crash at any point leaves either the old
//! snapshot or none, never a torn one. **Load** validates magic,
//! version, fingerprint, length and checksum before decoding, and every
//! decoded matrix re-passes CSR validation; anything suspect is
//! *quarantined* (renamed to `<path>.corrupt`, with prior generations
//! rotated through [`crate::quarantine`]'s bounded scheme) and reported
//! as [`LoadOutcome::Quarantined`] so the caller rebuilds transparently.
//! The `snapshot.write` and `snapshot.corrupt` failpoints force the
//! crash-mid-save and corrupt-file paths under the fault-injection
//! harness.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use repsim_graph::Graph;
use repsim_metawalk::commuting::{CacheKind, CommutingCache};
use repsim_metawalk::MetaWalk;
use repsim_sparse::budget::failpoints;
use repsim_sparse::{checksum, Budget, Csr};

use repsim_obs::HistogramHandle;

static SNAPSHOT_SAVE_NS: HistogramHandle = HistogramHandle::new("repsim.serve.snapshot.save_ns");
static SNAPSHOT_LOAD_NS: HistogramHandle = HistogramHandle::new("repsim.serve.snapshot.load_ns");

const MAGIC: &[u8; 8] = b"RSIMSNAP";
/// Current snapshot format version.
pub const VERSION: u32 = 1;
/// Fixed header size (magic through checksum); the payload follows.
pub const HEADER_LEN: usize = 44;

/// Errors from snapshot persistence itself (environment failures; a
/// *corrupt file* is not an error but a [`LoadOutcome::Quarantined`]).
#[derive(Debug)]
pub enum SnapshotError {
    /// A filesystem operation failed.
    Io {
        /// The operation (`"write"`, `"rename"`, …).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The OS error.
        message: String,
    },
    /// The `snapshot.write` failpoint aborted the save mid-write,
    /// leaving a partial temp file (the crash-during-save simulation).
    Injected,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io { op, path, message } => {
                write!(f, "snapshot {op} {}: {message}", path.display())
            }
            SnapshotError::Injected => write!(f, "snapshot write aborted by failpoint"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// What [`load`] found.
#[derive(Debug)]
pub enum LoadOutcome {
    /// A valid snapshot: entries ready to import.
    Restored(Vec<(CacheKind, MetaWalk, Csr)>),
    /// No snapshot file exists (cold start).
    Absent,
    /// The file failed validation and was renamed aside; rebuild.
    Quarantined {
        /// Why the file was rejected.
        reason: String,
        /// Where the rejected bytes were moved.
        quarantined_to: PathBuf,
    },
}

/// Stats from a successful [`save`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SaveStats {
    /// Entries persisted.
    pub entries: usize,
    /// Total file size (header + payload).
    pub bytes: usize,
}

/// A deterministic fingerprint of the graph a snapshot was built
/// against: FNV-1a over labels (name + kind), nodes (label + value) and
/// edges, in graph order. Loading validates it so a snapshot from a
/// different or transformed database can never silently serve wrong
/// rankings — representation independence is a property of answers, not
/// of index bytes.
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut bytes: Vec<u8> = Vec::new();
    for l in g.labels().ids() {
        bytes.extend_from_slice(g.labels().name(l).as_bytes());
        bytes.push(0xff);
        bytes.push(g.labels().is_entity(l) as u8);
    }
    bytes.extend_from_slice(&(g.num_nodes() as u64).to_le_bytes());
    for n in g.node_ids() {
        bytes.extend_from_slice(&g.label_of(n).0.to_le_bytes());
        if let Some(v) = g.value_of(n) {
            bytes.extend_from_slice(v.as_bytes());
        }
        bytes.push(0xfe);
    }
    for (a, b) in g.edges() {
        bytes.extend_from_slice(&a.0.to_le_bytes());
        bytes.extend_from_slice(&b.0.to_le_bytes());
    }
    checksum(&bytes)
}

fn io_err<'a>(
    op: &'static str,
    path: &'a Path,
) -> impl FnOnce(std::io::Error) -> SnapshotError + 'a {
    move |e| SnapshotError::Io {
        op,
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// Serializes the cache into snapshot bytes (header + payload). Entries
/// are sorted by (kind, walk text) so equal caches produce identical
/// bytes.
fn encode(g: &Graph, cache: &CommutingCache, graph_fp: u64) -> Vec<u8> {
    let mut entries: Vec<(u8, String, &Csr)> = cache
        .entries()
        .map(|(kind, mw, m)| {
            let kind_byte = match kind {
                CacheKind::Plain => 0u8,
                CacheKind::Informative => 1u8,
            };
            (kind_byte, mw.display(g.labels()), m)
        })
        .collect();
    entries.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));

    let mut payload = Vec::new();
    for (kind, text, m) in &entries {
        payload.push(*kind);
        payload.extend_from_slice(&(text.len() as u64).to_le_bytes());
        payload.extend_from_slice(text.as_bytes());
        m.encode_auto_into(&mut payload);
    }

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&graph_fp.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Persists the cache atomically. `budget` gates the `snapshot.write`
/// (abort mid-write, leaving a partial temp file) and `snapshot.corrupt`
/// (flip a payload byte after the checksum is stamped, so the next load
/// must quarantine) failpoints.
pub fn save(
    path: &Path,
    g: &Graph,
    cache: &CommutingCache,
    budget: &Budget,
) -> Result<SaveStats, SnapshotError> {
    let start = Instant::now();
    let mut span = repsim_obs::span("repsim.serve.snapshot.save");
    let graph_fp = graph_fingerprint(g);
    let mut bytes = encode(g, cache, graph_fp);
    let entries = cache.len();

    if budget.injected(failpoints::SNAPSHOT_CORRUPT) && bytes.len() > HEADER_LEN {
        // Stamped checksum no longer matches the payload: the load side
        // must detect this and quarantine.
        bytes[HEADER_LEN] ^= 0x01;
    }

    let tmp = tmp_path(path);
    if budget.injected(failpoints::SNAPSHOT_WRITE) {
        // Simulate a crash mid-save: half the bytes land in the temp
        // file, the rename never happens, the real snapshot (if any) is
        // untouched.
        let half = &bytes[..bytes.len() / 2];
        fs::write(&tmp, half).map_err(io_err("write", &tmp))?;
        return Err(SnapshotError::Injected);
    }

    let mut f = File::create(&tmp).map_err(io_err("create", &tmp))?;
    f.write_all(&bytes).map_err(io_err("write", &tmp))?;
    f.sync_all().map_err(io_err("fsync", &tmp))?;
    drop(f);
    fs::rename(&tmp, path).map_err(io_err("rename", path))?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        // Make the rename itself durable. Directory fsync can be
        // unsupported on some filesystems; the rename already happened,
        // so failure here downgrades to best-effort.
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }

    SNAPSHOT_SAVE_NS.record(duration_ns(start));
    if span.is_active() {
        span.attr("entries", entries);
        span.attr("bytes", bytes.len());
    }
    Ok(SaveStats {
        entries,
        bytes: bytes.len(),
    })
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Loads and validates a snapshot. Corruption in any form — bad magic,
/// version or fingerprint mismatch, checksum failure, truncation, a
/// walk that no longer parses, a matrix that fails CSR validation —
/// quarantines the file and reports [`LoadOutcome::Quarantined`]; only
/// I/O failures are hard errors.
pub fn load(path: &Path, g: &Graph) -> Result<LoadOutcome, SnapshotError> {
    let start = Instant::now();
    let mut span = repsim_obs::span("repsim.serve.snapshot.load");
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LoadOutcome::Absent),
        Err(e) => return Err(io_err("read", path)(e)),
    };
    match validate_and_decode(&bytes, g) {
        Ok(entries) => {
            SNAPSHOT_LOAD_NS.record(duration_ns(start));
            if span.is_active() {
                span.attr("entries", entries.len());
                span.attr("bytes", bytes.len());
            }
            Ok(LoadOutcome::Restored(entries))
        }
        Err(reason) => {
            let quarantined_to =
                crate::quarantine::rotate_file(path).map_err(io_err("quarantine", path))?;
            repsim_obs::point(
                "repsim.serve.snapshot.quarantine",
                repsim_obs::Level::Warn,
                format!("{reason}; moved to {}", quarantined_to.display()),
            );
            Ok(LoadOutcome::Quarantined {
                reason,
                quarantined_to,
            })
        }
    }
}

/// Full validation pipeline; any `Err` means quarantine.
fn validate_and_decode(bytes: &[u8], g: &Graph) -> Result<Vec<(CacheKind, MetaWalk, Csr)>, String> {
    let header = bytes
        .get(..HEADER_LEN)
        .ok_or_else(|| format!("file too short for header ({} bytes)", bytes.len()))?;
    if &header[..8] != MAGIC {
        return Err("bad magic".to_owned());
    }
    let version = u32::from_le_bytes(sub4(header, 8));
    if version != VERSION {
        return Err(format!(
            "unsupported version {version} (expected {VERSION})"
        ));
    }
    let file_fp = u64::from_le_bytes(sub8(header, 12));
    let live_fp = graph_fingerprint(g);
    if file_fp != live_fp {
        return Err(format!(
            "graph fingerprint mismatch (snapshot {file_fp:#018x}, live graph {live_fp:#018x})"
        ));
    }
    let entry_count = u64::from_le_bytes(sub8(header, 20));
    let payload_len = u64::from_le_bytes(sub8(header, 28));
    let declared_sum = u64::from_le_bytes(sub8(header, 36));
    let payload = bytes.get(HEADER_LEN..).unwrap_or(&[]); // header slice above proved HEADER_LEN bytes exist
    if payload.len() as u64 != payload_len {
        return Err(format!(
            "payload length mismatch (header says {payload_len}, file has {})",
            payload.len()
        ));
    }
    let actual_sum = checksum(payload);
    if actual_sum != declared_sum {
        return Err(format!(
            "payload checksum mismatch (header {declared_sum:#018x}, computed {actual_sum:#018x})"
        ));
    }

    let mut entries = Vec::new();
    let mut pos = 0usize;
    for i in 0..entry_count {
        let kind = match payload.get(pos) {
            Some(0) => CacheKind::Plain,
            Some(1) => CacheKind::Informative,
            Some(k) => return Err(format!("entry {i}: unknown kind byte {k}")),
            None => return Err(format!("entry {i}: truncated at kind byte")),
        };
        pos += 1;
        let len_bytes = payload
            .get(pos..pos + 8)
            .ok_or_else(|| format!("entry {i}: truncated walk length"))?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(len_bytes);
        let walk_len = usize::try_from(u64::from_le_bytes(arr))
            .map_err(|_| format!("entry {i}: implausible walk length"))?;
        pos += 8;
        let text_bytes = payload
            .get(pos..pos + walk_len)
            .ok_or_else(|| format!("entry {i}: truncated walk text"))?;
        let text = std::str::from_utf8(text_bytes)
            .map_err(|_| format!("entry {i}: walk text is not UTF-8"))?;
        pos += walk_len;
        // Re-parse against the live graph: unknown labels or shape
        // violations mean the snapshot predates a schema change.
        let mw = MetaWalk::parse_in(g, text)
            .ok_or_else(|| format!("entry {i}: walk {text:?} does not parse against the graph"))?;
        if kind == CacheKind::Plain && mw.has_star() {
            return Err(format!("entry {i}: plain entry with a *-label"));
        }
        let (m, used) = Csr::decode(payload.get(pos..).unwrap_or(&[]))
            .map_err(|e| format!("entry {i}: matrix decode failed: {e}"))?;
        pos += used;
        entries.push((kind, mw, m));
    }
    if pos != payload.len() {
        return Err(format!(
            "trailing bytes after last entry ({} of {})",
            pos,
            payload.len()
        ));
    }
    Ok(entries)
}

fn sub4(b: &[u8], at: usize) -> [u8; 4] {
    let mut a = [0u8; 4];
    if let Some(s) = b.get(at..at + 4) {
        a.copy_from_slice(s);
    }
    a
}

fn sub8(b: &[u8], at: usize) -> [u8; 8] {
    let mut a = [0u8; 8];
    if let Some(s) = b.get(at..at + 8) {
        a.copy_from_slice(s);
    }
    a
}

fn duration_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use repsim_graph::GraphBuilder;
    use repsim_sparse::Parallelism;

    fn mas_like() -> Graph {
        let mut b = GraphBuilder::new();
        let conf = b.entity_label("conf");
        let paper = b.entity_label("paper");
        let dom = b.entity_label("dom");
        let confs: Vec<_> = (0..3).map(|i| b.entity(conf, &format!("c{i}"))).collect();
        let d = b.entity(dom, "d0");
        for (i, c) in [(0, 0), (1, 0), (2, 1), (3, 2)] {
            let p = b.entity(paper, &format!("p{i}"));
            b.edge(p, confs[c]).unwrap();
            b.edge(p, d).unwrap();
        }
        b.build()
    }

    fn populated_cache(g: &Graph) -> CommutingCache {
        let mut cache = CommutingCache::new();
        for text in ["conf paper dom", "conf paper", "conf *paper dom"] {
            let mw = MetaWalk::parse_in(g, text).unwrap();
            cache
                .try_informative_with(g, &mw, Parallelism::serial(), &Budget::unlimited())
                .unwrap();
        }
        let plain = MetaWalk::parse_in(g, "conf paper dom").unwrap();
        cache
            .try_plain_with(g, &plain, Parallelism::serial(), &Budget::unlimited())
            .unwrap();
        cache
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("repsim-snap-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_roundtrip_is_bit_identical() {
        let g = mas_like();
        let cache = populated_cache(&g);
        let dir = tmp_dir("roundtrip");
        let path = dir.join("idx.snap");
        let stats = save(&path, &g, &cache, &Budget::unlimited()).unwrap();
        assert_eq!(stats.entries, 4);

        let outcome = load(&path, &g).unwrap();
        let entries = match outcome {
            LoadOutcome::Restored(e) => e,
            other => panic!("expected restore, got {other:?}"),
        };
        assert_eq!(entries.len(), 4);
        for (kind, mw, m) in &entries {
            let orig = cache.peek(*kind, mw).expect("entry existed");
            assert_eq!(orig, m);
            // Bit-level, not just PartialEq.
            for r in 0..orig.nrows() {
                let (ca, va) = orig.row(r);
                let (cb, vb) = m.row(r);
                assert_eq!(ca, cb);
                for (x, y) in va.iter().zip(vb) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
        // Determinism: a second save produces byte-identical files.
        let path2 = dir.join("idx2.snap");
        save(&path2, &g, &cache, &Budget::unlimited()).unwrap();
        assert_eq!(fs::read(&path).unwrap(), fs::read(&path2).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn old_format_plain_record_snapshot_still_loads() {
        // Reconstruct, byte for byte, the file a pre-compact-record binary
        // would have written: same header, same entry framing, but every
        // matrix in the plain (non-delta) record layout. It must restore
        // bit-identically through the current loader.
        let g = mas_like();
        let cache = populated_cache(&g);
        let fp = graph_fingerprint(&g);
        let mut entries: Vec<(u8, String, &Csr)> = cache
            .entries()
            .map(|(kind, mw, m)| {
                let kind_byte = match kind {
                    CacheKind::Plain => 0u8,
                    CacheKind::Informative => 1u8,
                };
                (kind_byte, mw.display(g.labels()), m)
            })
            .collect();
        entries.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        let mut payload = Vec::new();
        for (kind, text, m) in &entries {
            payload.push(*kind);
            payload.extend_from_slice(&(text.len() as u64).to_le_bytes());
            payload.extend_from_slice(text.as_bytes());
            m.encode_into(&mut payload); // plain records, as the old binary wrote
        }
        let mut old = Vec::with_capacity(HEADER_LEN + payload.len());
        old.extend_from_slice(MAGIC);
        old.extend_from_slice(&VERSION.to_le_bytes());
        old.extend_from_slice(&fp.to_le_bytes());
        old.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        old.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        old.extend_from_slice(&checksum(&payload).to_le_bytes());
        old.extend_from_slice(&payload);

        let dir = tmp_dir("oldfmt");
        let path = dir.join("idx.snap");
        fs::write(&path, &old).unwrap();
        let restored = match load(&path, &g).unwrap() {
            LoadOutcome::Restored(e) => e,
            other => panic!("expected restore, got {other:?}"),
        };
        assert_eq!(restored.len(), 4);
        for (kind, mw, m) in &restored {
            assert_eq!(cache.peek(*kind, mw), Some(m));
        }
        // The new writer produces a strictly smaller file for the same
        // cache (these matrices are all compact-eligible).
        let new_path = dir.join("new.snap");
        let stats = save(&new_path, &g, &cache, &Budget::unlimited()).unwrap();
        assert!(stats.bytes < old.len(), "{} vs {}", stats.bytes, old.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn absent_file_is_a_cold_start() {
        let g = mas_like();
        let dir = tmp_dir("absent");
        match load(&dir.join("nope.snap"), &g).unwrap() {
            LoadOutcome::Absent => {}
            other => panic!("expected absent, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_snapshot_is_quarantined() {
        let g = mas_like();
        let cache = populated_cache(&g);
        let dir = tmp_dir("trunc");
        let path = dir.join("idx.snap");
        save(&path, &g, &cache, &Budget::unlimited()).unwrap();
        let bytes = fs::read(&path).unwrap();
        for cut in [10, HEADER_LEN, HEADER_LEN + 9, bytes.len() - 1] {
            fs::write(&path, &bytes[..cut]).unwrap();
            match load(&path, &g).unwrap() {
                LoadOutcome::Quarantined { quarantined_to, .. } => {
                    assert!(quarantined_to.exists());
                    assert!(!path.exists(), "original moved aside");
                    fs::remove_file(&quarantined_to).unwrap();
                }
                other => panic!("cut {cut}: expected quarantine, got {other:?}"),
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_quarantined_everywhere() {
        let g = mas_like();
        let cache = populated_cache(&g);
        let dir = tmp_dir("flip");
        let path = dir.join("idx.snap");
        save(&path, &g, &cache, &Budget::unlimited()).unwrap();
        let bytes = fs::read(&path).unwrap();
        // Flip one bit in every 37th byte (covering header and payload).
        for at in (0..bytes.len()).step_by(37) {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x10;
            fs::write(&path, &corrupt).unwrap();
            match load(&path, &g).unwrap() {
                LoadOutcome::Quarantined { quarantined_to, .. } => {
                    fs::remove_file(&quarantined_to).unwrap();
                }
                other => panic!("flip at {at}: expected quarantine, got {other:?}"),
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_quarantined() {
        let g = mas_like();
        let cache = populated_cache(&g);
        let dir = tmp_dir("fp");
        let path = dir.join("idx.snap");
        save(&path, &g, &cache, &Budget::unlimited()).unwrap();
        // A different graph (one extra node) must reject the snapshot.
        let mut b = GraphBuilder::new();
        let conf = b.entity_label("conf");
        b.entity_label("paper");
        b.entity_label("dom");
        b.entity(conf, "only");
        let g2 = b.build();
        match load(&path, &g2).unwrap() {
            LoadOutcome::Quarantined { reason, .. } => {
                assert!(reason.contains("fingerprint"), "{reason}");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_failure_leaves_old_snapshot_intact() {
        let g = mas_like();
        let cache = populated_cache(&g);
        let dir = tmp_dir("inject-write");
        let path = dir.join("idx.snap");
        save(&path, &g, &cache, &Budget::unlimited()).unwrap();
        let good = fs::read(&path).unwrap();

        let _guard = failpoints::scoped(&[failpoints::SNAPSHOT_WRITE]);
        let inject = Budget::unlimited().with_fault_injection();
        match save(&path, &g, &cache, &inject) {
            Err(SnapshotError::Injected) => {}
            other => panic!("expected injected abort, got {other:?}"),
        }
        // The crash simulation leaves a partial temp file but the real
        // snapshot still loads.
        assert!(tmp_path(&path).exists(), "partial temp file left behind");
        assert_eq!(fs::read(&path).unwrap(), good);
        match load(&path, &g).unwrap() {
            LoadOutcome::Restored(e) => assert_eq!(e.len(), 4),
            other => panic!("expected restore, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_corruption_is_caught_on_load() {
        let g = mas_like();
        let cache = populated_cache(&g);
        let dir = tmp_dir("inject-corrupt");
        let path = dir.join("idx.snap");
        {
            let _guard = failpoints::scoped(&[failpoints::SNAPSHOT_CORRUPT]);
            let inject = Budget::unlimited().with_fault_injection();
            save(&path, &g, &cache, &inject).unwrap();
        }
        match load(&path, &g).unwrap() {
            LoadOutcome::Quarantined { reason, .. } => {
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // Rebuild-after-quarantine serves the exact same matrices as the
        // cold path: re-save and reload to prove the cycle closes.
        save(&path, &g, &cache, &Budget::unlimited()).unwrap();
        match load(&path, &g).unwrap() {
            LoadOutcome::Restored(e) => assert_eq!(e.len(), 4),
            other => panic!("expected restore, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsupported_version_is_quarantined_not_misread() {
        let g = mas_like();
        let cache = populated_cache(&g);
        let dir = tmp_dir("version");
        let path = dir.join("idx.snap");
        save(&path, &g, &cache, &Budget::unlimited()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = 99;
        fs::write(&path, &bytes).unwrap();
        match load(&path, &g).unwrap() {
            LoadOutcome::Quarantined { reason, .. } => {
                assert!(reason.contains("version"), "{reason}");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
