//! A bounded MPMC queue with shed-on-full semantics.
//!
//! Admission control's first line: producers never block. A push against
//! a full queue fails immediately so the connection handler can answer
//! `overloaded` while the system still has breath to say so — queueing
//! unbounded work and timing out later is how servers melt. Consumers
//! (the worker pool) block on a condvar until work or close.

use repsim_audit::sync::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;

/// Returned by [`Bounded::try_push`] when the queue is at capacity,
/// handing the rejected item back to the caller.
#[derive(Debug)]
pub struct Full<T>(pub T);

/// A bounded multi-producer multi-consumer queue.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    notify: Condvar,
    cap: usize,
}

struct Inner<T> {
    q: VecDeque<T>,
    closed: bool,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `cap` pending items (`cap` is clamped
    /// to at least 1 — a zero-capacity queue could never serve anything).
    pub fn new(cap: usize) -> Bounded<T> {
        Bounded {
            inner: Mutex::new(Inner {
                q: VecDeque::new(),
                closed: false,
            }),
            notify: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        // A poisoned queue mutex means a worker panicked mid-pop; the
        // queue itself holds plain data and stays consistent.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues without blocking. `Err(Full)` when at capacity or
    /// closed — the caller sheds. `Ok(depth)` reports the depth after
    /// the push for the queue-depth gauge.
    pub fn try_push(&self, item: T) -> Result<usize, Full<T>> {
        let mut g = self.lock();
        if g.closed || g.q.len() >= self.cap {
            return Err(Full(item));
        }
        g.q.push_back(item);
        let depth = g.q.len();
        drop(g);
        self.notify.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained (`None`). Closing does not discard queued work: shutdown
    /// drains in-flight requests before the workers exit.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.q.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.notify.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops admitting new items; queued items still drain through
    /// [`Bounded::pop`], after which every popper gets `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.notify.notify_all();
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.lock().q.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn push_pop_fifo() {
        let q = Bounded::new(4);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_immediately() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let Full(rejected) = q.try_push(3).unwrap_err();
        assert_eq!(rejected, 3);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert!(q.try_push(2).is_err(), "closed queue admits nothing");
        assert_eq!(q.pop(), Some(1), "queued work still drains");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(q.try_push(2).is_err());
    }

    #[test]
    fn blocked_poppers_wake_on_close() {
        let q = std::sync::Arc::new(Bounded::<u32>::new(2));
        let served = std::sync::Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let (q, served) = (q.clone(), served.clone());
                std::thread::spawn(move || {
                    while q.pop().is_some() {
                        served.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        q.try_push(7).unwrap();
        q.try_push(8).unwrap();
        q.close();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(served.load(Ordering::SeqCst), 2);
    }
}
