//! The scatter-gather coordinator for a sharded fleet.
//!
//! A fleet splits the candidate label's node list into contiguous row
//! bands ([`repsim_sparse::par::shard_band`]); each band is served by a
//! replica set of ordinary [`crate::server`] instances started with
//! `--shard-index/--shard-count`. The coordinator speaks the same
//! newline-delimited JSON protocol to clients, scatters every rank
//! request across the shards, and merges the band-local top-k lists with
//! the single-node comparator (score descending, then the `(label,
//! value)` sort key ascending) — so a fleet answer is *byte-identical*
//! to the single-node answer for the same graph and walk.
//!
//! The failure discipline, in order of application:
//!
//! 1. **Admission** — a bounded in-flight gate sheds excess requests
//!    with a typed `overloaded` error whose retry hint is clamped to the
//!    request's remaining deadline (a hint past the deadline is useless).
//! 2. **Per-shard deadline slicing** — each shard attempt inherits the
//!    request's remaining deadline; retries against other replicas spend
//!    the same budget, never extend it.
//! 3. **Retry with backoff** — replica failures rotate through the
//!    shard's replica set with a per-endpoint [`CircuitBreaker`], so a
//!    dead replica is skipped after a few failures instead of eating a
//!    connect timeout per request.
//! 4. **Hedging** — once a shard's latency histogram has enough samples,
//!    an attempt that exceeds the shard's observed p99 launches a second
//!    attempt against the next replica; first answer wins.
//! 5. **Epoch consistency** — every shard response carries the graph
//!    fingerprint it answered from. Responses whose fingerprint differs
//!    from the merge's reference epoch are *failed*, never silently
//!    merged (a mid-mutation fleet returns partial coverage, not a
//!    frankenranking).
//! 6. **Partial degradation** — when a whole shard's replica set is
//!    down, the merged ranking of the live shards is returned with tier
//!    `partial-shards:A/T` and an explicit `coverage` object. Zero live
//!    shards is the floor: a typed `shards_unavailable` error.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use repsim_audit::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use repsim_audit::sync::Arc;
use repsim_obs::{CounterHandle, Histogram, HistogramHandle, HistogramSummary};

use crate::breaker::{BreakerConfig, CircuitBreaker, OpClass};
use crate::error::ServiceError;
use crate::protocol::{
    parse_shard_reply, render_rank_request, RankEntry, ReqId, Request, Response, ShardIdent,
    ShardReply,
};
use crate::server::ServeError;

static REQUESTS: CounterHandle = CounterHandle::new("repsim.serve.coord.requests");
static SHED: CounterHandle = CounterHandle::new("repsim.serve.coord.shed");
static RETRIES: CounterHandle = CounterHandle::new("repsim.serve.coord.retries");
static HEDGES: CounterHandle = CounterHandle::new("repsim.serve.coord.hedges");
static HEDGE_WINS: CounterHandle = CounterHandle::new("repsim.serve.coord.hedge_wins");
static PARTIAL: CounterHandle = CounterHandle::new("repsim.serve.coord.partial");
static EPOCH_MISMATCH: CounterHandle = CounterHandle::new("repsim.serve.coord.epoch_mismatch");
static SHARD_FAILED: CounterHandle = CounterHandle::new("repsim.serve.coord.shard_failed");
static LATENCY_NS: HistogramHandle = HistogramHandle::new("repsim.serve.coord.latency_ns");

/// Attempt timeout when the request carries no deadline: generous, but
/// bounded — a wedged replica must not pin a connection thread forever.
const DEFAULT_ATTEMPT_TIMEOUT: Duration = Duration::from_secs(10);

/// Minimum latency samples before the p99 estimate is trusted enough to
/// hedge on. Below this the estimate is noise and hedging would double
/// the fleet's load for nothing.
const HEDGE_MIN_SAMPLES: u64 = 20;

/// How long a blocked client read waits before re-checking shutdown.
const POLL: Duration = Duration::from_millis(50);

/// Coordinator tuning.
#[derive(Clone, Debug)]
pub struct CoordConfig {
    /// Bind address; port 0 picks a free port (written to `port_file`).
    pub addr: String,
    /// `shards[i]` is shard `i`'s replica set (`host:port` addresses).
    pub shards: Vec<Vec<String>>,
    /// Deadline applied when a request does not carry its own.
    pub default_deadline_ms: Option<u64>,
    /// Per-endpoint circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Concurrent rank requests admitted before shedding.
    pub max_inflight: usize,
    /// Written with the actual `ip:port` once bound.
    pub port_file: Option<PathBuf>,
}

impl Default for CoordConfig {
    fn default() -> Self {
        CoordConfig {
            addr: "127.0.0.1:0".to_owned(),
            shards: Vec::new(),
            default_deadline_ms: None,
            breaker: BreakerConfig::default(),
            max_inflight: 256,
            port_file: None,
        }
    }
}

/// What a completed [`run_coordinator`] did, for the CLI summary line.
#[derive(Debug)]
pub struct CoordReport {
    /// The address actually bound.
    pub addr: SocketAddr,
    /// Rank requests admitted over the coordinator's lifetime.
    pub requests: u64,
    /// Rank requests shed by the in-flight gate.
    pub shed: u64,
}

/// One replica endpoint of a shard, with its private breaker — endpoint
/// health is per-endpoint, not per-shard.
struct Replica {
    addr: String,
    breaker: CircuitBreaker,
}

/// One shard's replica set plus its observed latency distribution (the
/// hedging trigger).
struct ShardState {
    replicas: Vec<Replica>,
    latency: Histogram,
    /// Rotates the first replica tried, spreading steady-state load
    /// across the set instead of hammering replica 0.
    rr: AtomicUsize,
}

/// A shard's mergeable answer.
struct ShardSuccess {
    tier: String,
    results: Vec<RankEntry>,
    ident: ShardIdent,
}

/// The scatter-gather fan-out state. One per coordinator process;
/// shared (via `Arc`) with every connection thread.
pub struct Coordinator {
    cfg: CoordConfig,
    shards: Vec<Arc<ShardState>>,
    inflight: AtomicUsize,
    requests: AtomicU64,
    shed: AtomicU64,
    // Arc'd: the per-shard gatherer threads outlive `&self` borrows.
    retries: Arc<AtomicU64>,
    hedges: Arc<AtomicU64>,
    hedge_wins: Arc<AtomicU64>,
    partial: AtomicU64,
    epoch_mismatch: AtomicU64,
    shard_failed: AtomicU64,
    started_ns: u64,
}

impl Coordinator {
    /// A coordinator over `cfg.shards`. The fleet shape is fixed for
    /// the process lifetime.
    pub fn new(cfg: CoordConfig) -> Coordinator {
        let shards = cfg
            .shards
            .iter()
            .map(|replicas| {
                Arc::new(ShardState {
                    replicas: replicas
                        .iter()
                        .map(|addr| Replica {
                            addr: addr.clone(),
                            breaker: CircuitBreaker::new(cfg.breaker),
                        })
                        .collect(),
                    latency: Histogram::default(),
                    rr: AtomicUsize::new(0),
                })
            })
            .collect();
        Coordinator {
            cfg,
            shards,
            inflight: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            retries: Arc::new(AtomicU64::new(0)),
            hedges: Arc::new(AtomicU64::new(0)),
            hedge_wins: Arc::new(AtomicU64::new(0)),
            partial: AtomicU64::new(0),
            epoch_mismatch: AtomicU64::new(0),
            shard_failed: AtomicU64::new(0),
            started_ns: repsim_obs::now_ns(),
        }
    }

    /// Answers one rank request by scatter-gathering the fleet.
    pub fn handle_rank(
        &self,
        walk: &str,
        label: &str,
        value: &str,
        k: usize,
        deadline_ms: Option<u64>,
    ) -> Result<Response, ServiceError> {
        let mut span = repsim_obs::span("repsim.serve.coord.request");
        if span.is_active() {
            span.attr("walk", walk);
            span.attr("query", format!("{label}={value}"));
            span.attr("k", k);
        }
        let start = Instant::now();
        let deadline_ms = deadline_ms.or(self.cfg.default_deadline_ms);
        let deadline = deadline_ms.map(|ms| start + Duration::from_millis(ms));

        // Admission: a bounded in-flight gate. The decrement guard runs
        // on every exit path, including panics in the merge.
        let gate = InflightGuard::enter(&self.inflight);
        if gate.depth > self.cfg.max_inflight {
            self.shed.fetch_add(1, Ordering::Relaxed);
            SHED.add(1);
            // The hint is useless past the request's own deadline.
            let hint = 10 + 5 * gate.depth as u64;
            let remaining = deadline
                .map(|d| d.saturating_duration_since(Instant::now()).as_millis() as u64)
                .unwrap_or(u64::MAX);
            return Err(ServiceError::Overloaded {
                retry_after_ms: hint.min(remaining),
            });
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        REQUESTS.add(1);

        // Scatter: one gatherer thread per shard; each reports exactly
        // once. Attempt threads may outlive the request (they hold only
        // owned data and a dead channel sender).
        // A shard's verdict: a mergeable answer, or the text of why its
        // whole replica set produced none.
        let (tx, rx) = mpsc::channel::<(usize, Result<ShardSuccess, String>)>();
        let line = render_rank_request(walk, label, value, k, remaining_ms(deadline));
        for (i, shard) in self.shards.iter().enumerate() {
            let shard = Arc::clone(shard);
            let tx = tx.clone();
            let line = line.clone();
            let counters = GatherCounters {
                retries: CounterPair {
                    local: Arc::clone(&self.retries),
                    handle: &RETRIES,
                },
                hedges: CounterPair {
                    local: Arc::clone(&self.hedges),
                    handle: &HEDGES,
                },
                hedge_wins: CounterPair {
                    local: Arc::clone(&self.hedge_wins),
                    handle: &HEDGE_WINS,
                },
            };
            std::thread::spawn(move || {
                let verdict = query_shard(&shard, &line, deadline, &counters);
                let _ = tx.send((i, verdict));
            });
        }
        drop(tx);

        // Gather until every shard reported or the deadline passed.
        let total = self.shards.len();
        let mut answers: Vec<Option<Result<ShardSuccess, String>>> =
            (0..total).map(|_| None).collect();
        let mut reported = 0usize;
        while reported < total {
            let wait = deadline
                .map(|d| d.saturating_duration_since(Instant::now()))
                .unwrap_or(DEFAULT_ATTEMPT_TIMEOUT + Duration::from_secs(1));
            match rx.recv_timeout(wait) {
                Ok((i, verdict)) => {
                    if let Some(slot) = answers.get_mut(i) {
                        *slot = Some(verdict);
                    }
                    reported += 1;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }

        let resp = self.merge(answers, k, total);
        LATENCY_NS.record(start.elapsed().as_nanos() as u64);
        resp
    }

    /// Merges the gathered per-shard verdicts into the client response.
    fn merge(
        &self,
        answers: Vec<Option<Result<ShardSuccess, String>>>,
        k: usize,
        total: usize,
    ) -> Result<Response, ServiceError> {
        // Epoch consensus: the reference fingerprint is the first
        // successful shard's, in shard-index order (deterministic for a
        // healthy fleet — all shards agree). Later answers from another
        // epoch are failed, not merged.
        let mut reference: Option<u64> = None;
        let mut merged: Vec<RankEntry> = Vec::new();
        let mut answered = 0usize;
        let mut worst_tier: Option<String> = None;
        for (i, slot) in answers.into_iter().enumerate() {
            let verdict = match slot {
                Some(v) => v,
                None => {
                    self.note_shard_failed(i, "deadline expired before the shard answered");
                    continue;
                }
            };
            let success = match verdict {
                Ok(s) => s,
                Err(why) => {
                    self.note_shard_failed(i, &why);
                    continue;
                }
            };
            if success.ident.id != i as u32 {
                self.note_shard_failed(i, "response from the wrong shard index");
                continue;
            }
            match reference {
                None => reference = Some(success.ident.fingerprint),
                Some(fp) if fp != success.ident.fingerprint => {
                    self.epoch_mismatch.fetch_add(1, Ordering::Relaxed);
                    EPOCH_MISMATCH.add(1);
                    self.note_shard_failed(i, "answered from a diverged epoch");
                    continue;
                }
                Some(_) => {}
            }
            answered += 1;
            let worse = worst_tier
                .as_deref()
                .is_none_or(|t| tier_rank(&success.tier) > tier_rank(t));
            if worse {
                worst_tier = Some(success.tier.clone());
            }
            merged.extend(success.results);
        }

        if answered == 0 {
            return Err(ServiceError::ShardsUnavailable { total });
        }

        // The single-node comparator: score descending, then the
        // `(label, value)` sort key ascending. Disjoint covering bands
        // make this reproduce the unsharded ranking exactly.
        merged.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    (a.label.as_str(), a.value.as_str()).cmp(&(b.label.as_str(), b.value.as_str()))
                })
        });
        merged.truncate(k);

        let (tier, coverage) = if answered < total {
            self.partial.fetch_add(1, Ordering::Relaxed);
            PARTIAL.add(1);
            (
                format!("partial-shards:{answered}/{total}"),
                Some((answered, total)),
            )
        } else {
            (worst_tier.unwrap_or_else(|| "exact".to_owned()), None)
        };
        Ok(Response::Rank {
            id: ReqId::Absent, // stamped by the connection handler
            tier,
            results: merged,
            shard: None,
            coverage,
        })
    }

    fn note_shard_failed(&self, index: usize, why: &str) {
        self.shard_failed.fetch_add(1, Ordering::Relaxed);
        SHARD_FAILED.add(1);
        repsim_obs::point(
            "repsim.serve.coord.shard_failed",
            repsim_obs::Level::Warn,
            format!("shard {index}: {why}"),
        );
    }

    /// The coordinator's stats payload (a `coord` object, not the
    /// single-node `stats` body — the fleets' per-node bodies are one
    /// `stats` hop away on each shard).
    fn stats_json(&self) -> String {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let breakers: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                let states: Vec<String> = s
                    .replicas
                    .iter()
                    .map(|r| format!("\"{}\"", r.breaker.state_name_class(OpClass::Rank)))
                    .collect();
                format!("[{}]", states.join(","))
            })
            .collect();
        format!(
            "{{\"requests\":{},\"shed\":{},\"retries\":{},\"hedges\":{},\
             \"hedge_wins\":{},\"partial\":{},\"epoch_mismatch\":{},\
             \"shard_failed\":{},\"shards\":{},\"breakers\":[{}],\"uptime_ms\":{}}}",
            c(&self.requests),
            c(&self.shed),
            c(&self.retries),
            c(&self.hedges),
            c(&self.hedge_wins),
            c(&self.partial),
            c(&self.epoch_mismatch),
            c(&self.shard_failed),
            self.shards.len(),
            breakers.join(","),
            (repsim_obs::now_ns().saturating_sub(self.started_ns)) / 1_000_000,
        )
    }
}

/// Milliseconds until `deadline`, for the forwarded request line.
fn remaining_ms(deadline: Option<Instant>) -> Option<u64> {
    deadline.map(|d| d.saturating_duration_since(Instant::now()).as_millis() as u64)
}

/// Degradation tiers ordered worst-last; the coordinator reports the
/// worst tier any merged shard answered at.
fn tier_rank(tier: &str) -> u8 {
    match tier {
        "exact" => 0,
        "half-factorized" => 1,
        _ => 2, // prefix:<walk> and anything newer
    }
}

/// An RAII decrement for the in-flight gate.
struct InflightGuard<'a> {
    inflight: &'a AtomicUsize,
    depth: usize,
}

impl<'a> InflightGuard<'a> {
    fn enter(inflight: &'a AtomicUsize) -> InflightGuard<'a> {
        let depth = inflight.fetch_add(1, Ordering::SeqCst) + 1;
        InflightGuard { inflight, depth }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Counter pairs (struct atomic + registry handle) threaded into the
/// per-shard gatherers, which outlive no request but run off-struct.
struct GatherCounters {
    retries: CounterPair,
    hedges: CounterPair,
    hedge_wins: CounterPair,
}

/// One shared counter: the coordinator's own atomic (for the stats
/// body) plus the global metric handle (for traces and journals).
#[derive(Clone)]
struct CounterPair {
    local: Arc<AtomicU64>,
    handle: &'static CounterHandle,
}

impl CounterPair {
    fn add(&self, n: u64) {
        self.local.fetch_add(n, Ordering::Relaxed);
        self.handle.add(n);
    }
}

/// The outcome one connection attempt reports to its shard gatherer.
enum AttemptOutcome {
    Success(ShardSuccess),
    Failed(String),
}

/// Queries one shard: first replica by rotation, retry/backoff through
/// the rest of the replica set on failure, and a hedged second attempt
/// when the first exceeds the shard's observed p99.
fn query_shard(
    shard: &Arc<ShardState>,
    line: &str,
    deadline: Option<Instant>,
    counters: &GatherCounters,
) -> Result<ShardSuccess, String> {
    let started = shard.rr.fetch_add(1, Ordering::Relaxed);
    let n = shard.replicas.len();
    if n == 0 {
        return Err("empty replica set".to_owned());
    }
    let mut last_error = String::from("no replica attempted");
    let (tx, rx) = mpsc::channel::<(usize, AttemptOutcome)>();
    let mut launched = 0usize;
    let mut first_attempt_at: Option<Instant> = None;
    let hedge_after = hedge_timeout(&shard.latency);

    // Walk the replica rotation; each iteration either launches an
    // attempt or consumes a failure. The loop ends on the first
    // success, on deadline, or when every replica failed.
    let mut failures = 0usize;
    let mut next = 0usize;
    let mut hedged = false;
    let mut hedge_idx: Option<usize> = None;
    // Attempt index -> replica index, for breaker bookkeeping when the
    // attempt reports back.
    let mut attempt_replica: Vec<usize> = Vec::new();
    loop {
        let now = Instant::now();
        if deadline.is_some_and(|d| now >= d) {
            return Err(format!("deadline expired ({last_error})"));
        }
        // Launch the next attempt when none is outstanding, or hedge
        // when the outstanding one is past the shard's p99.
        let outstanding = launched - failures;
        let should_hedge = outstanding == 1
            && !hedged
            && next < n
            && hedge_after
                .zip(first_attempt_at)
                .is_some_and(|(h, t0)| now.saturating_duration_since(t0) >= h);
        if outstanding == 0 || should_hedge {
            if next >= n {
                if outstanding == 0 {
                    return Err(last_error);
                }
            } else {
                let replica_idx = (started + next) % n;
                let replica = &shard.replicas[replica_idx];
                next += 1;
                match replica.breaker.admit_class(OpClass::Rank) {
                    Ok(()) => {
                        let idx = launched;
                        if launched > 0 {
                            if should_hedge {
                                hedged = true;
                                hedge_idx = Some(idx);
                                counters.hedges.add(1);
                            } else {
                                counters.retries.add(1);
                            }
                        }
                        let attempt_deadline =
                            deadline.unwrap_or_else(|| now + DEFAULT_ATTEMPT_TIMEOUT);
                        launched += 1;
                        attempt_replica.push(replica_idx);
                        if first_attempt_at.is_none() {
                            first_attempt_at = Some(now);
                        }
                        spawn_attempt(
                            replica.addr.clone(),
                            line.to_owned(),
                            attempt_deadline,
                            idx,
                            tx.clone(),
                        );
                    }
                    Err(retry_ms) => {
                        // Breaker-open replicas are skipped, not failed:
                        // the rotation moves on without an attempt.
                        last_error = format!("breaker open on {} ({} ms)", replica.addr, retry_ms);
                        continue;
                    }
                }
            }
        }
        // Wait for an attempt to report, bounded by the hedge trigger
        // (so a slow first attempt wakes us to launch the hedge) and
        // the deadline.
        let wait_deadline = deadline.unwrap_or_else(|| now + DEFAULT_ATTEMPT_TIMEOUT);
        let mut wait = wait_deadline.saturating_duration_since(Instant::now());
        if let (Some(h), Some(t0), false) = (hedge_after, first_attempt_at, hedged) {
            let until_hedge = (t0 + h).saturating_duration_since(Instant::now());
            wait = wait.min(until_hedge.max(Duration::from_millis(1)));
        }
        match rx.recv_timeout(wait.max(Duration::from_millis(1))) {
            Ok((idx, AttemptOutcome::Success(success))) => {
                if let Some(t0) = first_attempt_at {
                    shard.latency.record(t0.elapsed().as_nanos() as u64);
                }
                if let Some(r) = attempt_replica
                    .get(idx)
                    .and_then(|&r| shard.replicas.get(r))
                {
                    r.breaker.on_success_class(OpClass::Rank);
                }
                if hedge_idx == Some(idx) {
                    counters.hedge_wins.add(1);
                }
                return Ok(success);
            }
            Ok((idx, AttemptOutcome::Failed(e))) => {
                failures += 1;
                last_error = e;
                if let Some(r) = attempt_replica
                    .get(idx)
                    .and_then(|&r| shard.replicas.get(r))
                {
                    // Failures feed the per-endpoint breaker; enough in
                    // a row opens it and the rotation skips the replica.
                    let _ = r.breaker.on_exhausted_class(OpClass::Rank);
                }
                if failures >= launched && next >= n {
                    return Err(last_error);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Either the hedge trigger fired (loop launches it) or
                // the deadline passed (checked at loop top).
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(last_error);
            }
        }
    }
}

/// The shard's p99 as a hedge trigger, once enough samples exist.
fn hedge_timeout(latency: &Histogram) -> Option<Duration> {
    if latency.count() < HEDGE_MIN_SAMPLES {
        return None;
    }
    let summary = HistogramSummary::from_parts(latency.buckets(), latency.sum());
    let p99_ns = summary.quantile(0.99);
    Some(Duration::from_nanos(p99_ns.max(1_000_000))) // floor 1ms
}

/// One connection attempt on its own thread: connect, send, read one
/// line, parse. Owns everything it touches so it may outlive the
/// request that launched it (the send then just fails).
fn spawn_attempt(
    addr: String,
    line: String,
    attempt_deadline: Instant,
    idx: usize,
    tx: mpsc::Sender<(usize, AttemptOutcome)>,
) {
    std::thread::spawn(move || {
        let outcome = run_attempt(&addr, &line, attempt_deadline);
        let _ = tx.send((idx, outcome));
    });
}

fn run_attempt(addr: &str, line: &str, attempt_deadline: Instant) -> AttemptOutcome {
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => return AttemptOutcome::Failed(format!("connect {addr}: {e}")),
    };
    stream.set_nodelay(true).ok();
    let budget = attempt_deadline.saturating_duration_since(Instant::now());
    if budget.is_zero() {
        return AttemptOutcome::Failed(format!("deadline expired before sending to {addr}"));
    }
    if stream.set_read_timeout(Some(budget)).is_err()
        || stream.set_write_timeout(Some(budget)).is_err()
    {
        return AttemptOutcome::Failed(format!("cannot arm timeouts on {addr}"));
    }
    let mut w = &stream;
    if let Err(e) = w
        .write_all(line.as_bytes())
        .and_then(|()| w.write_all(b"\n"))
        .and_then(|()| w.flush())
    {
        return AttemptOutcome::Failed(format!("send to {addr}: {e}"));
    }
    let mut acc: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(pos) = acc.iter().position(|&b| b == b'\n') {
            let text = String::from_utf8_lossy(&acc[..pos]);
            return match parse_shard_reply(text.trim()) {
                Ok(ShardReply::Rank {
                    tier,
                    results,
                    shard,
                }) => AttemptOutcome::Success(ShardSuccess {
                    tier,
                    results,
                    ident: shard,
                }),
                Ok(ShardReply::Error { code, message, .. }) => {
                    AttemptOutcome::Failed(format!("{addr}: {code}: {message}"))
                }
                Err(e) => AttemptOutcome::Failed(format!("{addr}: {e}")),
            };
        }
        if Instant::now() >= attempt_deadline {
            return AttemptOutcome::Failed(format!("read from {addr} timed out"));
        }
        match (&stream).read(&mut chunk) {
            Ok(0) => return AttemptOutcome::Failed(format!("{addr} closed the connection")),
            Ok(got) => acc.extend_from_slice(&chunk[..got]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return AttemptOutcome::Failed(format!("read from {addr}: {e}")),
        }
    }
}

/// Runs the coordinator until `shutdown` is set. Blocks the calling
/// thread; returns a summary after the accept loop exits.
pub fn run_coordinator(
    cfg: &CoordConfig,
    shutdown: &AtomicBool,
) -> Result<CoordReport, ServeError> {
    let metrics_on: Arc<dyn repsim_obs::Sink> = Arc::new(repsim_obs::NullSink);
    repsim_obs::install(Arc::clone(&metrics_on));
    let report = run_coordinator_inner(cfg, shutdown);
    repsim_obs::remove_sink(&metrics_on);
    report
}

fn run_coordinator_inner(
    cfg: &CoordConfig,
    shutdown: &AtomicBool,
) -> Result<CoordReport, ServeError> {
    let coord = Arc::new(Coordinator::new(cfg.clone()));
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| ServeError::Bind {
        addr: cfg.addr.clone(),
        message: e.to_string(),
    })?;
    let addr = listener.local_addr().map_err(|e| ServeError::Bind {
        addr: cfg.addr.clone(),
        message: e.to_string(),
    })?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ServeError::Bind {
            addr: cfg.addr.clone(),
            message: e.to_string(),
        })?;
    if let Some(pf) = &cfg.port_file {
        std::fs::write(pf, format!("{addr}\n")).map_err(|e| ServeError::PortFile {
            path: pf.clone(),
            message: e.to_string(),
        })?;
    }
    repsim_obs::point(
        "repsim.serve.coord.listening",
        repsim_obs::Level::Info,
        format!("coordinating {} shards on {addr}", coord.shards.len()),
    );

    std::thread::scope(|s| {
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nodelay(true).ok();
                    let coord = Arc::clone(&coord);
                    s.spawn(move || coord_connection(stream, &coord, shutdown));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    });

    Ok(CoordReport {
        addr,
        requests: coord.requests.load(Ordering::Relaxed),
        shed: coord.shed.load(Ordering::Relaxed),
    })
}

/// Drives one client connection against the coordinator: rank requests
/// scatter-gather inline on this thread; control ops answer directly.
fn coord_connection(stream: TcpStream, coord: &Coordinator, shutdown: &AtomicBool) {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut acc: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        while let Some(pos) = acc.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = acc.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]);
            if let Some(reply) = coord_line(text.trim(), coord, shutdown) {
                if write_line(&stream, &reply).is_err() {
                    return;
                }
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match (&stream).read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => acc.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Handles one request line; `None` for blank lines.
fn coord_line(line: &str, coord: &Coordinator, shutdown: &AtomicBool) -> Option<String> {
    if line.is_empty() {
        return None;
    }
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(message) => {
            return Some(
                Response::Error {
                    id: ReqId::Absent,
                    error: ServiceError::BadRequest(message),
                }
                .to_json_line(),
            );
        }
    };
    let resp = match req {
        Request::Ping { id } => Response::Pong { id },
        Request::Stats { id } => {
            // The coordinator's counters as a `coord` object; the
            // single-node `stats` body lives on each shard.
            let mut out = String::from("{");
            id.render(&mut out);
            out.push_str("\"ok\":true,\"coord\":");
            out.push_str(&coord.stats_json());
            out.push('}');
            return Some(out);
        }
        Request::Shutdown { id } => {
            shutdown.store(true, Ordering::SeqCst);
            Response::ShuttingDown { id }
        }
        Request::Rank {
            id,
            walk,
            label,
            value,
            k,
            deadline_ms,
        } => {
            if shutdown.load(Ordering::SeqCst) {
                Response::Error {
                    id,
                    error: ServiceError::ShuttingDown,
                }
            } else {
                match coord.handle_rank(&walk, &label, &value, k, deadline_ms) {
                    Ok(Response::Rank {
                        tier,
                        results,
                        shard,
                        coverage,
                        ..
                    }) => Response::Rank {
                        id,
                        tier,
                        results,
                        shard,
                        coverage,
                    },
                    Ok(other) => other,
                    Err(error) => Response::Error { id, error },
                }
            }
        }
        Request::StatsStream { id, .. } | Request::Snapshot { id } => Response::Error {
            id,
            error: ServiceError::BadRequest(
                "op not supported by the coordinator; ask a shard directly".to_owned(),
            ),
        },
        Request::Mutate { id, .. } => Response::Error {
            id,
            error: ServiceError::BadRequest(
                "mutations go to the shards' WALs, not through the coordinator".to_owned(),
            ),
        },
    };
    Some(resp.to_json_line())
}

fn write_line(mut stream: &TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}
