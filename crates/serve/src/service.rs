//! The query service: per-request admission, execution, degradation,
//! and live mutation.
//!
//! [`QueryService`] is the transport-agnostic core the TCP server (and
//! the tests) drive. One instance owns the resident state — the current
//! graph *epoch*, the commuting-matrix cache and its delta maintainer,
//! the per-walk engine seeds, the write-ahead log, the circuit breaker,
//! the serving counters — and answers one request at a time per calling
//! thread; all methods take `&self` and are safe to share across the
//! worker pool.
//!
//! A rank request flows: breaker admission → walk/entity validation →
//! budget construction (per-request deadline or the server default) →
//! engine fast path (a seed matching the current epoch's fingerprint,
//! exact scores) → on budget exhaustion, one [`BudgetedRPathSim`]
//! attempt whose degradation tier is reported in the envelope → only
//! when even the last tier cannot run does the request fail
//! `exhausted`, feeding the breaker's rank class.
//!
//! A mutate request flows: mutate-class breaker admission → resolve and
//! validate against the current epoch → apply to a *copy* of the graph
//! → durable WAL append (the acknowledgment barrier — nothing is
//! acknowledged or made visible before the fsync returns) → incremental
//! index maintenance through [`DeltaMaintainer`] (delta-apply when the
//! flop estimate says it is cheaper, targeted rebuild otherwise,
//! eviction as the never-fail floor) → seed refresh/evict → epoch swap.
//! Ranking is serialized against mutation by the epoch fingerprint:
//! seeds and cache entries are only trusted when their fingerprint
//! matches the epoch that answers, so a rank racing a mutate either
//! sees the old complete state or the new complete state, never a mix.

use repsim_audit::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use repsim_audit::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::collections::HashMap;
use std::path::Path;
use std::time::Duration;

use repsim_core::{BudgetedRPathSim, Degradation, QueryEngine};
use repsim_graph::mutation::{self, Touch};
use repsim_graph::{Graph, LabelId, MutationOp};
use repsim_metawalk::commuting::CommutingCache;
use repsim_metawalk::delta::{walk_mentions, walk_touches_edge, DeltaMaintainer};
use repsim_metawalk::MetaWalk;
use repsim_obs::CounterHandle;
use repsim_sparse::budget::failpoints;
use repsim_sparse::{Budget, Csr, ExecError, Parallelism};

use crate::breaker::{BreakerConfig, CircuitBreaker, OpClass};
use crate::error::ServiceError;
use crate::protocol::{RankEntry, StatsBody};
use crate::singleflight::{Entry as FlightEntry, SingleFlight};
use crate::snapshot::{self, graph_fingerprint, LoadOutcome, SaveStats, SnapshotError};
use crate::wal::{Wal, WalError};

static REQUESTS: CounterHandle = CounterHandle::new("repsim.serve.requests");
static SHED: CounterHandle = CounterHandle::new("repsim.serve.shed");
static DEGRADED: CounterHandle = CounterHandle::new("repsim.serve.degraded");
static TIER_EXACT: CounterHandle = CounterHandle::new("repsim.serve.tier.exact");
static TIER_HALF: CounterHandle = CounterHandle::new("repsim.serve.tier.half_factorized");
static TIER_PREFIX: CounterHandle = CounterHandle::new("repsim.serve.tier.prefix");
static EXHAUSTED: CounterHandle = CounterHandle::new("repsim.serve.exhausted");
static MUTATIONS: CounterHandle = CounterHandle::new("repsim.serve.mutations");
static MUTATE_EXHAUSTED: CounterHandle = CounterHandle::new("repsim.serve.mutate_exhausted");

/// Which row band of a fleet this instance serves. The band is the
/// `index`-th of `count` contiguous slices of the *candidate* label's
/// node list ([`repsim_sparse::par::shard_band`]), recomputed against
/// the answering epoch on every request so all shards on the same
/// fingerprint agree on disjoint, covering bands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index in `0..count`.
    pub index: u32,
    /// Total shards in the fleet.
    pub count: u32,
}

/// Service tuning, shared by the CLI and the tests.
#[derive(Clone, Debug, Default)]
pub struct ServiceConfig {
    /// Worker parallelism (also used for index builds).
    pub par: Parallelism,
    /// Deadline applied when a request does not carry its own.
    /// `None` means unlimited.
    pub default_deadline_ms: Option<u64>,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Opt requests into the armed failpoints (`serve.slow_worker`,
    /// `snapshot.*`, `wal.*`, `delta.apply`) — the fault-injection
    /// harness for the CI drills.
    pub fault_injection: bool,
    /// Serve only one row band of the candidate label (fleet member
    /// mode); `None` ranks every candidate (single node).
    pub shard: Option<ShardSpec>,
}

/// A rank answer plus the identity of the epoch that produced it (what
/// a fleet shard stamps into its response so the coordinator can refuse
/// to merge answers from diverged epochs).
#[derive(Clone, Debug, PartialEq)]
pub struct RankAnswer {
    /// The degradation tier that answered.
    pub tier: String,
    /// Top-k entries over this instance's band, best first.
    pub results: Vec<RankEntry>,
    /// Fingerprint of the answering epoch's graph.
    pub fingerprint: u64,
    /// WAL sequence number of the answering epoch.
    pub seq: u64,
}

/// What [`QueryService::restore`] did at startup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Restore {
    /// Entries imported from a valid snapshot.
    Restored {
        /// How many matrices came back.
        entries: usize,
    },
    /// No snapshot on disk; cold start.
    ColdStart,
    /// The snapshot failed validation and was moved aside; cold start
    /// with a warning. Indexes rebuild transparently on demand.
    Quarantined {
        /// Why the file was rejected.
        reason: String,
    },
}

/// What [`QueryService::recover_wal`] found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecovery {
    /// Mutations replayed onto the boot graph.
    pub replayed: usize,
    /// A torn (partial, unacknowledged) trailing record was truncated.
    pub torn_truncated: bool,
    /// A corrupt suffix or foreign log was quarantined.
    pub quarantined: bool,
}

/// One graph version. Everything derived from the graph (cache entries,
/// engine seeds) is tagged with `fp` and trusted only on exact match.
#[derive(Clone)]
struct Epoch {
    g: Arc<Graph>,
    fp: u64,
    seq: u64,
}

/// The mutable index state, held under one lock: the commuting-matrix
/// cache and the delta maintainer whose warmed hop/prefix factors track
/// it. Mutations swap the epoch while holding this lock, so anyone
/// holding it sees a stable epoch.
struct IndexState {
    cache: CommutingCache,
    maintainer: DeltaMaintainer,
}

/// A cached engine seed: the shared half-matrix and diagonal for one
/// walk, valid only for the graph whose fingerprint is `fp`. Rebuilding
/// a [`QueryEngine`] from a seed is O(validation), not O(SpGEMM).
struct Seed {
    fp: u64,
    m: Arc<Csr>,
    diag: Arc<Vec<f64>>,
}

/// The resident query service. See the module docs for the request
/// flows.
pub struct QueryService {
    cfg: ServiceConfig,
    epoch: RwLock<Epoch>,
    state: Mutex<IndexState>,
    seeds: RwLock<HashMap<MetaWalk, Seed>>,
    wal: Mutex<Option<Wal>>,
    breaker: CircuitBreaker,
    flights: SingleFlight,
    requests: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicU64,
    exhausted: AtomicU64,
    mutations: AtomicU64,
    mutate_exhausted: AtomicU64,
    snapshot_restored: AtomicBool,
    started_ns: u64,
    /// `repsim_obs::now_ns` timestamp of the last successful snapshot
    /// save or restore; 0 = never this run.
    last_snapshot_ns: AtomicU64,
}

impl QueryService {
    /// A cold service over a copy of `g` (no snapshot loaded, no WAL
    /// attached yet).
    pub fn new(g: &Graph, cfg: ServiceConfig) -> QueryService {
        let g = Arc::new(g.clone());
        let fp = graph_fingerprint(&g);
        QueryService {
            breaker: CircuitBreaker::new(cfg.breaker),
            cfg,
            epoch: RwLock::new(Epoch { g, fp, seq: 0 }),
            state: Mutex::new(IndexState {
                cache: CommutingCache::new(),
                maintainer: DeltaMaintainer::new(),
            }),
            seeds: RwLock::new(HashMap::new()),
            wal: Mutex::new(None),
            flights: SingleFlight::new(),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            mutate_exhausted: AtomicU64::new(0),
            snapshot_restored: AtomicBool::new(false),
            started_ns: repsim_obs::now_ns(),
            last_snapshot_ns: AtomicU64::new(0),
        }
    }

    /// The graph currently being served (the live epoch's version).
    pub fn graph(&self) -> Arc<Graph> {
        self.epoch_snapshot().g
    }

    /// The fleet band this instance serves, `None` on a single node.
    pub fn shard_spec(&self) -> Option<ShardSpec> {
        self.cfg.shard
    }

    /// The current graph fingerprint, `0x`-prefixed hex.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:#018x}", self.epoch_snapshot().fp)
    }

    fn epoch_snapshot(&self) -> Epoch {
        self.epoch.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn state_lock(&self) -> MutexGuard<'_, IndexState> {
        // The state holds plain data; poisoning cannot corrupt it.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn budget_for(&self, deadline_ms: Option<u64>) -> Budget {
        let mut budget = Budget::unlimited();
        if let Some(ms) = deadline_ms.or(self.cfg.default_deadline_ms) {
            budget = budget.with_deadline_ms(ms);
        }
        if self.cfg.fault_injection {
            budget = budget.with_fault_injection();
        }
        budget
    }

    /// Answers one rank request. `deadline_ms` overrides the configured
    /// default. Returns the degradation tier that answered plus the
    /// top-k entries.
    pub fn handle_rank(
        &self,
        walk: &str,
        label: &str,
        value: &str,
        k: usize,
        deadline_ms: Option<u64>,
    ) -> Result<(String, Vec<RankEntry>), ServiceError> {
        self.handle_rank_epoch(walk, label, value, k, deadline_ms)
            .map(|a| (a.tier, a.results))
    }

    /// [`QueryService::handle_rank`] plus the identity of the epoch that
    /// answered — what a fleet shard stamps into its response envelope
    /// so the coordinator can enforce epoch consistency across shards.
    pub fn handle_rank_epoch(
        &self,
        walk: &str,
        label: &str,
        value: &str,
        k: usize,
        deadline_ms: Option<u64>,
    ) -> Result<RankAnswer, ServiceError> {
        let mut span = repsim_obs::span("repsim.serve.request");
        if span.is_active() {
            span.attr("walk", walk);
            span.attr("query", format!("{label}={value}"));
            span.attr("k", k);
        }
        if let Err(retry_after_ms) = self.breaker.admit_class(OpClass::Rank) {
            self.shed.fetch_add(1, Ordering::Relaxed);
            SHED.add(1);
            return Err(ServiceError::Overloaded { retry_after_ms });
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        REQUESTS.add(1);

        let epoch = self.epoch_snapshot();
        let g = Arc::clone(&epoch.g);
        let mw = MetaWalk::parse_in(&g, walk)
            .ok_or_else(|| ServiceError::BadRequest(format!("walk {walk:?} does not parse")))?;
        let label_id = g
            .labels()
            .get(label)
            .ok_or_else(|| ServiceError::BadRequest(format!("unknown label {label:?}")))?;
        if label_id != mw.source() {
            return Err(ServiceError::BadRequest(format!(
                "query label {label:?} is not the walk's source label {:?}",
                g.labels().name(mw.source())
            )));
        }
        let query = g
            .entity(label_id, value)
            .ok_or_else(|| ServiceError::BadRequest(format!("no entity {label:?} = {value:?}")))?;

        let budget = self.budget_for(deadline_ms);
        if budget.injected(failpoints::SERVE_SLOW_WORKER) {
            // The slow-worker drill: stall long enough that a tight
            // deadline expires and queued peers pile up behind us.
            std::thread::sleep(Duration::from_millis(25));
        }

        match self.rank_with(&epoch, &mw, query, k, &budget) {
            Ok(answer) => {
                // Per-tier breakdown for the `repsim top` dashboard;
                // `degraded` stays the roll-up the stats body reports.
                match answer.tier.as_str() {
                    "exact" => TIER_EXACT.add(1),
                    "half-factorized" => TIER_HALF.add(1),
                    _ => TIER_PREFIX.add(1),
                }
                if answer.tier != "exact" {
                    self.degraded.fetch_add(1, Ordering::Relaxed);
                    DEGRADED.add(1);
                }
                self.breaker.on_success_class(OpClass::Rank);
                Ok(answer)
            }
            Err(e) if e.is_exhaustion() => {
                self.exhausted.fetch_add(1, Ordering::Relaxed);
                EXHAUSTED.add(1);
                self.breaker.on_exhausted_class(OpClass::Rank);
                Err(ServiceError::Exhausted(e))
            }
            Err(e) => Err(ServiceError::BadRequest(e.to_string())),
        }
    }

    /// The band of the candidate label this instance ranks, against a
    /// specific epoch's graph. `None` (single node) ranks everyone.
    fn band_for(&self, g: &Graph, label: LabelId) -> Option<(usize, usize)> {
        self.cfg.shard.map(|s| {
            repsim_sparse::par::shard_band(
                g.nodes_of_label(label).len(),
                s.index as usize,
                s.count as usize,
            )
        })
    }

    /// The execution core: seeded engine when the seed matches the
    /// epoch, cache build otherwise, budgeted degradation cascade as
    /// the fallback. In shard mode every tier ranks only this
    /// instance's row band of the answering epoch.
    fn rank_with(
        &self,
        epoch: &Epoch,
        mw: &MetaWalk,
        query: repsim_graph::NodeId,
        k: usize,
        budget: &Budget,
    ) -> Result<RankAnswer, ExecError> {
        // Seed fast path: shared parts tagged with this epoch's
        // fingerprint reconstruct the engine without any matrix work.
        if let Some(answer) = self.seed_answer(epoch, mw, query, k) {
            return Ok(answer);
        }
        // Single-flight: concurrent misses on one (fingerprint, walk)
        // share the leader's commuting-matrix product and engine build
        // instead of piling onto the state lock. A follower re-checks
        // the seed once the leader lands and only builds itself when
        // the leader failed or timed out.
        let max_wait = budget
            .remaining_time()
            .unwrap_or(Duration::from_secs(5))
            .min(Duration::from_secs(5));
        let _flight = match self.flights.join(epoch.fp, mw, max_wait) {
            FlightEntry::Leader(guard) => Some(guard),
            FlightEntry::Waited | FlightEntry::TimedOut => {
                if let Some(answer) = self.seed_answer(epoch, mw, query, k) {
                    return Ok(answer);
                }
                None
            }
        };
        // Build path. The epoch cannot advance while we hold the state
        // lock (mutations swap it under the same lock), so re-reading
        // inside gives the graph the cache is consistent with. Node and
        // label ids are stable across epochs (mutations never delete or
        // renumber), so `mw` and `query` stay valid.
        let built = {
            let mut st = self.state_lock();
            let epoch = self.epoch_snapshot();
            match st
                .cache
                .try_informative_with(&epoch.g, mw, self.cfg.par, budget)
            {
                Ok(m) => Some((epoch, m.clone())),
                Err(e) if e.is_exhaustion() => None,
                Err(e) => return Err(e),
            }
        };
        if let Some((epoch, m)) = built {
            let engine = QueryEngine::try_from_half_matrix(&epoch.g, mw.clone(), m, self.cfg.par)?;
            let (m, diag) = engine.shared_parts();
            self.install_seed(mw, epoch.fp, m, diag);
            let band = self.band_for(&epoch.g, mw.source());
            let ranked = engine.rank_band_ref(query, mw.source(), k, band);
            return Ok(RankAnswer {
                tier: "exact".to_owned(),
                results: entries_of(&epoch.g, &ranked),
                fingerprint: epoch.fp,
                seq: epoch.seq,
            });
        }
        // The full index does not fit the remaining budget: degrade.
        // The cascade re-tries cheaper representations of the *same*
        // answer before shortening the walk as a last resort.
        let epoch = self.epoch_snapshot();
        let budgeted = BudgetedRPathSim::try_new(&epoch.g, mw.clone(), self.cfg.par, budget)?;
        let tier = match budgeted.degradation() {
            Degradation::Exact => "exact".to_owned(),
            Degradation::HalfFactorized => "half-factorized".to_owned(),
            Degradation::PrefixWalk { .. } => {
                format!(
                    "prefix:{}",
                    budgeted.effective_half().display(epoch.g.labels())
                )
            }
            // Never built here: partial coverage is a coordinator-side
            // merge outcome, not a per-shard execution tier.
            Degradation::PartialShards { answered, total } => {
                format!("partial-shards:{answered}/{total}")
            }
        };
        let band = self.band_for(&epoch.g, mw.source());
        let ranked = budgeted.rank_band(query, mw.source(), k, band);
        Ok(RankAnswer {
            tier,
            results: entries_of(&epoch.g, &ranked),
            fingerprint: epoch.fp,
            seq: epoch.seq,
        })
    }

    /// Answers from the engine seed tagged with `epoch`'s fingerprint,
    /// if one is installed (the zero-SpGEMM fast path).
    fn seed_answer(
        &self,
        epoch: &Epoch,
        mw: &MetaWalk,
        query: repsim_graph::NodeId,
        k: usize,
    ) -> Option<RankAnswer> {
        let (m, diag) = self.seed_parts(mw, epoch.fp)?;
        let engine =
            QueryEngine::try_from_shared(&epoch.g, mw.clone(), m, diag, self.cfg.par).ok()?;
        let band = self.band_for(&epoch.g, mw.source());
        let ranked = engine.rank_band_ref(query, mw.source(), k, band);
        Some(RankAnswer {
            tier: "exact".to_owned(),
            results: entries_of(&epoch.g, &ranked),
            fingerprint: epoch.fp,
            seq: epoch.seq,
        })
    }

    fn seed_parts(&self, mw: &MetaWalk, fp: u64) -> Option<(Arc<Csr>, Arc<Vec<f64>>)> {
        let seeds = self.seeds.read().unwrap_or_else(|e| e.into_inner());
        seeds
            .get(mw)
            .filter(|s| s.fp == fp)
            .map(|s| (Arc::clone(&s.m), Arc::clone(&s.diag)))
    }

    fn install_seed(&self, mw: &MetaWalk, fp: u64, m: Arc<Csr>, diag: Arc<Vec<f64>>) {
        let mut seeds = self.seeds.write().unwrap_or_else(|e| e.into_inner());
        seeds.insert(mw.clone(), Seed { fp, m, diag });
    }

    /// Applies one mutation. Returns the post-mutation fingerprint
    /// (`0x`-hex), the WAL sequence number that made it durable, and
    /// the index-maintenance path taken (`"delta"`, `"rebuild"`,
    /// `"evict"` or `"none"`).
    pub fn handle_mutate(
        &self,
        op: &MutationOp,
        deadline_ms: Option<u64>,
    ) -> Result<(String, u64, String), ServiceError> {
        let mut span = repsim_obs::span("repsim.serve.mutate");
        if span.is_active() {
            span.attr("op", op.to_string());
        }
        if let Err(retry_after_ms) = self.breaker.admit_class(OpClass::Mutate) {
            self.shed.fetch_add(1, Ordering::Relaxed);
            SHED.add(1);
            return Err(ServiceError::Overloaded { retry_after_ms });
        }
        let budget = self.budget_for(deadline_ms);
        // Pre-WAL budget check: an already-expired deadline rejects
        // cleanly before anything touches the log or the index.
        if let Err(e) = budget.check() {
            if e.is_exhaustion() {
                self.mutate_exhausted.fetch_add(1, Ordering::Relaxed);
                MUTATE_EXHAUSTED.add(1);
                self.breaker.on_exhausted_class(OpClass::Mutate);
                return Err(ServiceError::Exhausted(e));
            }
            return Err(ServiceError::BadRequest(e.to_string()));
        }

        let mut st = self.state_lock();
        // Epoch is stable under the state lock.
        let epoch = self.epoch_snapshot();
        let touch =
            mutation::touch(&epoch.g, op).map_err(|e| ServiceError::BadRequest(e.to_string()))?;
        let g_new =
            mutation::apply(&epoch.g, op).map_err(|e| ServiceError::BadRequest(e.to_string()))?;
        let fp_after = graph_fingerprint(&g_new);

        // Durability barrier: the mutation is acknowledged if and only
        // if the WAL append (write + fsync) succeeds. A failed append
        // leaves every piece of in-memory state untouched.
        let seq = {
            let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
            match wal.as_mut() {
                Some(w) => w
                    .append(op, fp_after, &budget)
                    .map_err(|e| ServiceError::WalFailed(e.to_string()))?,
                None => epoch.seq + 1, // ephemeral mode: no log configured
            }
        };

        // Index maintenance never fails past this point: exhaustion and
        // the delta.apply failpoint degrade to eviction, and the entry
        // rebuilds on next use.
        let report = {
            let IndexState { cache, maintainer } = &mut *st;
            match touch {
                Touch::Edge(a, b) => maintainer.apply_edge_change(cache, &g_new, a, b, &budget),
                Touch::Node(l) => maintainer.apply_node_change(cache, l),
            }
        };

        // Seeds: walks the mutation touched are invalidated (their
        // matrices changed or their node sets grew); untouched walks
        // keep their matrices and merely re-tag to the new fingerprint.
        {
            let mut seeds = self.seeds.write().unwrap_or_else(|e| e.into_inner());
            seeds.retain(|mw, seed| {
                let stale = match touch {
                    Touch::Edge(a, b) => walk_touches_edge(mw, a, b),
                    Touch::Node(l) => walk_mentions(mw, l),
                };
                if !stale && seed.fp == epoch.fp {
                    seed.fp = fp_after;
                }
                !stale
            });
        }

        // Publish the new epoch (still under the state lock, so ranks
        // building from the cache never see a graph/cache mismatch).
        {
            let mut ep = self.epoch.write().unwrap_or_else(|e| e.into_inner());
            *ep = Epoch {
                g: Arc::new(g_new),
                fp: fp_after,
                seq,
            };
        }
        drop(st);

        self.mutations.fetch_add(1, Ordering::Relaxed);
        MUTATIONS.add(1);
        self.breaker.on_success_class(OpClass::Mutate);
        let fingerprint = format!("{fp_after:#018x}");
        if span.is_active() {
            span.attr("seq", seq);
            span.attr("path", report.path());
        }
        Ok((fingerprint, seq, report.path().to_owned()))
    }

    /// Opens (or creates) the write-ahead log at `path`, replaying any
    /// surviving records onto the boot graph. Must run before
    /// [`QueryService::restore`] so the snapshot validates against the
    /// post-replay graph. Replayed mutations advance the epoch; the
    /// cache is still empty at this point, so no index maintenance is
    /// needed.
    pub fn recover_wal(&self, path: &Path) -> Result<WalRecovery, WalError> {
        let epoch = self.epoch_snapshot();
        let rec = Wal::recover(path, &epoch.g)?;
        let recovery = WalRecovery {
            replayed: rec.records.len(),
            torn_truncated: rec.torn_truncated,
            quarantined: rec.quarantined_to.is_some(),
        };
        let seq = rec.wal.next_seq().saturating_sub(1);
        {
            let _st = self.state_lock();
            let mut ep = self.epoch.write().unwrap_or_else(|e| e.into_inner());
            *ep = Epoch {
                g: Arc::new(rec.graph),
                fp: rec.fingerprint,
                seq,
            };
        }
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        *wal = Some(rec.wal);
        Ok(recovery)
    }

    /// Records a request shed by the *queue* (admission control's outer
    /// ring; breaker sheds are recorded internally by
    /// [`QueryService::handle_rank`]).
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        SHED.add(1);
    }

    /// The serving counters for the `stats` op; queue figures are the
    /// transport's and passed in.
    pub fn stats_body(&self, queue_depth: usize, queue_capacity: usize) -> StatsBody {
        let epoch = self.epoch_snapshot();
        StatsBody {
            requests: self.requests.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            queue_depth,
            queue_capacity,
            cache_entries: self.state_lock().cache.len(),
            engines: self.seeds.read().unwrap_or_else(|e| e.into_inner()).len(),
            breaker: self.breaker.state_name_class(OpClass::Rank).to_owned(),
            breaker_mutate: self.breaker.state_name_class(OpClass::Mutate).to_owned(),
            snapshot_restored: self.snapshot_restored.load(Ordering::Relaxed),
            mutations: self.mutations.load(Ordering::Relaxed),
            mutate_exhausted: self.mutate_exhausted.load(Ordering::Relaxed),
            fingerprint: format!("{:#018x}", epoch.fp),
            seq: epoch.seq,
            uptime_ms: repsim_obs::now_ns().saturating_sub(self.started_ns) / 1_000_000,
            shard: self.cfg.shard.map_or(0, |s| s.index),
            snapshot_age_ms: match self.last_snapshot_ns.load(Ordering::Relaxed) {
                0 => None,
                t => Some(repsim_obs::now_ns().saturating_sub(t) / 1_000_000),
            },
        }
    }

    /// Persists the current index snapshot. The budget carries the
    /// fault-injection opt-in for the `snapshot.*` failpoints.
    pub fn save_snapshot(&self, path: &Path) -> Result<SaveStats, SnapshotError> {
        let budget = if self.cfg.fault_injection {
            Budget::unlimited().with_fault_injection()
        } else {
            Budget::unlimited()
        };
        let st = self.state_lock();
        let epoch = self.epoch_snapshot();
        let stats = snapshot::save(path, &epoch.g, &st.cache, &budget)?;
        self.last_snapshot_ns
            .store(repsim_obs::now_ns(), Ordering::Relaxed);
        Ok(stats)
    }

    /// Loads the snapshot at `path` into the cache, quarantining a
    /// corrupt file. Missing or quarantined snapshots are cold starts —
    /// never errors; only I/O failures propagate. Validates against the
    /// *current* epoch graph, i.e. post-WAL-replay when a log is in use.
    pub fn restore(&self, path: &Path) -> Result<Restore, SnapshotError> {
        let mut st = self.state_lock();
        let epoch = self.epoch_snapshot();
        match snapshot::load(path, &epoch.g)? {
            LoadOutcome::Restored(entries) => {
                let n = entries.len();
                for (kind, mw, m) in entries {
                    st.cache.import(kind, mw, m);
                }
                self.snapshot_restored.store(true, Ordering::Relaxed);
                self.last_snapshot_ns
                    .store(repsim_obs::now_ns(), Ordering::Relaxed);
                Ok(Restore::Restored { entries: n })
            }
            LoadOutcome::Absent => Ok(Restore::ColdStart),
            LoadOutcome::Quarantined { reason, .. } => Ok(Restore::Quarantined { reason }),
        }
    }
}

/// Instantiated per answer: ranked node ids to (label, value, score)
/// triples against the graph that produced them.
fn entries_of(g: &Graph, ranked: &repsim_baselines::RankedList) -> Vec<RankEntry> {
    ranked
        .keyed(g)
        .into_iter()
        .map(|(label, value, score)| RankEntry {
            label,
            value,
            score,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use repsim_graph::{GraphBuilder, NodeRef};

    fn mas_like() -> Graph {
        let mut b = GraphBuilder::new();
        let conf = b.entity_label("conf");
        let paper = b.entity_label("paper");
        let dom = b.entity_label("dom");
        let confs: Vec<_> = (0..3).map(|i| b.entity(conf, &format!("c{i}"))).collect();
        let doms: Vec<_> = (0..2).map(|i| b.entity(dom, &format!("d{i}"))).collect();
        for (i, (c, d)) in [(0, 0), (0, 1), (1, 0), (2, 1), (0, 0), (1, 1)]
            .iter()
            .enumerate()
        {
            let p = b.entity(paper, &format!("p{i}"));
            b.edge(p, confs[*c]).unwrap();
            b.edge(p, doms[*d]).unwrap();
        }
        b.build()
    }

    fn svc(g: &Graph) -> QueryService {
        QueryService::new(g, ServiceConfig::default())
    }

    fn eref(label: &str, value: &str) -> NodeRef {
        NodeRef::Entity {
            label: label.to_owned(),
            value: value.to_owned(),
        }
    }

    #[test]
    fn rank_answers_exactly_and_caches_the_engine() {
        let g = mas_like();
        let s = svc(&g);
        let (tier, results) = s
            .handle_rank("conf paper dom", "conf", "c0", 5, None)
            .unwrap();
        assert_eq!(tier, "exact");
        assert!(!results.is_empty());
        // The query itself is excluded (queries ask for entities *other*
        // than the query); c1 shares both doms with c0 and c2 only one.
        assert!(results.iter().all(|r| r.value != "c0"));
        assert_eq!(results[0].value, "c1");
        for w in results.windows(2) {
            assert!(w[0].score >= w[1].score, "descending scores");
        }
        let stats = s.stats_body(0, 8);
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.engines, 1);
        assert!(stats.cache_entries >= 1);
        // Second call hits the resident seed.
        let (tier2, results2) = s
            .handle_rank("conf paper dom", "conf", "c0", 5, None)
            .unwrap();
        assert_eq!(tier2, "exact");
        assert_eq!(results, results2);
    }

    #[test]
    fn rank_matches_the_direct_engine() {
        let g = mas_like();
        let s = svc(&g);
        let (_, via_service) = s
            .handle_rank("conf paper dom", "conf", "c1", 3, None)
            .unwrap();
        let mw = MetaWalk::parse_in(&g, "conf paper dom").unwrap();
        let engine = QueryEngine::try_with_budget(
            &g,
            mw.clone(),
            Parallelism::serial(),
            &Budget::unlimited(),
        )
        .unwrap();
        let q = g.entity(mw.source(), "c1").unwrap();
        let direct = engine.rank_ref(q, mw.source(), 3);
        let direct_keyed = direct.keyed(&g);
        assert_eq!(via_service.len(), direct_keyed.len());
        for (a, (bl, bv, bs)) in via_service.iter().zip(direct_keyed) {
            assert_eq!(
                (a.label.as_str(), a.value.as_str()),
                (bl.as_str(), bv.as_str())
            );
            assert_eq!(a.score.to_bits(), bs.to_bits(), "bit-identical scores");
        }
    }

    #[test]
    fn malformed_requests_are_bad_requests_not_panics() {
        let g = mas_like();
        let s = svc(&g);
        for (walk, label, value) in [
            ("conf nope dom", "conf", "c0"),  // unknown label in walk
            ("conf paper dom", "nope", "c0"), // unknown query label
            ("conf paper dom", "conf", "zz"), // unknown entity
            ("conf paper dom", "dom", "d0"),  // label is not the source
        ] {
            match s.handle_rank(walk, label, value, 3, None) {
                Err(ServiceError::BadRequest(_)) => {}
                other => {
                    panic!("{walk:?}/{label:?}/{value:?}: expected bad request, got {other:?}")
                }
            }
        }
        assert_eq!(s.stats_body(0, 1).exhausted, 0);
    }

    #[test]
    fn expired_deadline_exhausts_and_trips_the_breaker() {
        let g = mas_like();
        let s = QueryService::new(
            &g,
            ServiceConfig {
                breaker: BreakerConfig {
                    threshold: 3,
                    base_ms: 10_000,
                    max_ms: 10_000,
                    jitter_seed: 1,
                },
                ..ServiceConfig::default()
            },
        );
        for i in 0..3 {
            match s.handle_rank("conf paper dom", "conf", "c0", 3, Some(0)) {
                Err(ServiceError::Exhausted(e)) => assert!(e.is_exhaustion(), "req {i}: {e}"),
                other => panic!("req {i}: expected exhausted, got {other:?}"),
            }
        }
        // Third consecutive exhaustion tripped the breaker: rejections
        // are now typed Overloaded with a retry hint, without executing.
        match s.handle_rank("conf paper dom", "conf", "c0", 3, None) {
            Err(ServiceError::Overloaded { retry_after_ms }) => {
                assert!(retry_after_ms >= 1);
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
        let stats = s.stats_body(0, 1);
        assert_eq!(stats.exhausted, 3);
        assert_eq!(stats.breaker, "open");
        assert_eq!(stats.shed, 1);
        // A successful request after the cool-down closes the breaker
        // again (covered in breaker unit tests; here we only assert the
        // service wired the verdicts through).
    }

    #[test]
    fn mutate_is_visible_and_matches_a_cold_engine() {
        let g = mas_like();
        let s = svc(&g);
        // Warm the index so the mutation exercises maintenance.
        let (_, before) = s
            .handle_rank("conf paper dom", "conf", "c0", 5, None)
            .unwrap();
        let fp0 = s.stats_body(0, 1).fingerprint.clone();

        let op = MutationOp::AddEdge {
            a: eref("paper", "p3"),
            b: eref("dom", "d0"),
        };
        let (fp1, seq, path) = s.handle_mutate(&op, None).unwrap();
        assert_ne!(fp1, fp0, "fingerprint advances");
        assert_eq!(seq, 1);
        assert!(
            ["delta", "rebuild", "evict", "none"].contains(&path.as_str()),
            "{path}"
        );
        let stats = s.stats_body(0, 1);
        assert_eq!(stats.mutations, 1);
        assert_eq!(stats.fingerprint, fp1);
        assert_eq!(stats.seq, 1);

        // The served answer after the mutation is bit-identical to a
        // cold engine over the directly-built post-mutation graph.
        let (tier, after) = s
            .handle_rank("conf paper dom", "conf", "c0", 5, None)
            .unwrap();
        assert_eq!(tier, "exact");
        assert_ne!(before, after, "the new edge changes the ranking state");
        let g2 = mutation::apply(&g, &op).unwrap();
        let cold = svc(&g2);
        let (_, expect) = cold
            .handle_rank("conf paper dom", "conf", "c0", 5, None)
            .unwrap();
        assert_eq!(after.len(), expect.len());
        for (a, b) in after.iter().zip(&expect) {
            assert_eq!(
                (a.label.as_str(), a.value.as_str()),
                (b.label.as_str(), b.value.as_str())
            );
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "bit-identical");
        }
    }

    #[test]
    fn invalid_mutations_are_bad_requests_and_change_nothing() {
        let g = mas_like();
        let s = svc(&g);
        let fp0 = s.stats_body(0, 1).fingerprint.clone();
        for op in [
            MutationOp::AddEdge {
                a: eref("paper", "nope"),
                b: eref("dom", "d0"),
            },
            MutationOp::RemoveEdge {
                a: eref("conf", "c0"),
                b: eref("conf", "c1"), // edge that does not exist
            },
            MutationOp::AddEntity {
                label: "ghost".to_owned(),
                value: "x".to_owned(),
            },
            MutationOp::AddEntity {
                label: "conf".to_owned(),
                value: "c0".to_owned(), // duplicate
            },
        ] {
            match s.handle_mutate(&op, None) {
                Err(ServiceError::BadRequest(_)) => {}
                other => panic!("{op}: expected bad request, got {other:?}"),
            }
        }
        let stats = s.stats_body(0, 1);
        assert_eq!(stats.mutations, 0);
        assert_eq!(stats.fingerprint, fp0);
    }

    #[test]
    fn mutate_exhaustions_trip_only_the_mutate_breaker() {
        let g = mas_like();
        let s = QueryService::new(
            &g,
            ServiceConfig {
                breaker: BreakerConfig {
                    threshold: 3,
                    base_ms: 10_000,
                    max_ms: 10_000,
                    jitter_seed: 1,
                },
                ..ServiceConfig::default()
            },
        );
        let op = MutationOp::AddEdge {
            a: eref("paper", "p3"),
            b: eref("dom", "d0"),
        };
        // An already-expired deadline exhausts the mutate budget before
        // the WAL or the index is touched.
        for i in 0..3 {
            match s.handle_mutate(&op, Some(0)) {
                Err(ServiceError::Exhausted(_)) => {}
                other => panic!("mutate {i}: expected exhausted, got {other:?}"),
            }
        }
        let stats = s.stats_body(0, 1);
        assert_eq!(stats.mutate_exhausted, 3, "counted apart from rank");
        assert_eq!(stats.exhausted, 0, "rank exhaustions untouched");
        assert_eq!(stats.breaker_mutate, "open");
        assert_eq!(stats.breaker, "closed", "rank class unaffected");
        // Mutations shed; ranks still answer.
        match s.handle_mutate(&op, None) {
            Err(ServiceError::Overloaded { .. }) => {}
            other => panic!("expected overloaded mutate, got {other:?}"),
        }
        let (tier, _) = s
            .handle_rank("conf paper dom", "conf", "c0", 3, None)
            .unwrap();
        assert_eq!(tier, "exact");
        assert_eq!(stats.mutations, 0, "nothing was applied");
    }

    #[test]
    fn wal_backed_mutations_replay_into_an_identical_service() {
        let g = mas_like();
        let dir = std::env::temp_dir().join(format!("repsim-svc-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("g.wal");

        let s = svc(&g);
        s.recover_wal(&wal).unwrap();
        s.handle_rank("conf paper dom", "conf", "c0", 5, None)
            .unwrap();
        let ops = [
            MutationOp::AddEntity {
                label: "dom".to_owned(),
                value: "d2".to_owned(),
            },
            MutationOp::AddEdge {
                a: eref("paper", "p3"),
                b: eref("dom", "d2"),
            },
            MutationOp::RemoveEdge {
                a: eref("paper", "p3"),
                b: eref("dom", "d1"),
            },
        ];
        let mut last_fp = String::new();
        for op in &ops {
            let (fp, _, _) = s.handle_mutate(op, None).unwrap();
            last_fp = fp;
        }
        let (_, live) = s
            .handle_rank("conf paper dom", "conf", "c0", 5, None)
            .unwrap();

        // A fresh service recovering the same WAL lands on the same
        // graph and serves bit-identical answers.
        let s2 = svc(&g);
        let rec = s2.recover_wal(&wal).unwrap();
        assert_eq!(rec.replayed, 3);
        assert!(!rec.torn_truncated && !rec.quarantined);
        assert_eq!(s2.stats_body(0, 1).fingerprint, last_fp);
        assert_eq!(s2.stats_body(0, 1).seq, 3);
        let (_, replayed) = s2
            .handle_rank("conf paper dom", "conf", "c0", 5, None)
            .unwrap();
        assert_eq!(live.len(), replayed.len());
        for (a, b) in live.iter().zip(&replayed) {
            assert_eq!(
                (a.label.as_str(), a.value.as_str()),
                (b.label.as_str(), b.value.as_str())
            );
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_roundtrip_preserves_rankings_bit_for_bit() {
        let g = mas_like();
        let dir = std::env::temp_dir().join(format!("repsim-svc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idx.snap");

        let warm = svc(&g);
        let (_, before) = warm
            .handle_rank("conf paper dom", "conf", "c0", 5, None)
            .unwrap();
        warm.save_snapshot(&path).unwrap();

        let cold = svc(&g);
        match cold.restore(&path).unwrap() {
            Restore::Restored { entries } => assert!(entries >= 1),
            other => panic!("expected restore, got {other:?}"),
        }
        assert!(cold.stats_body(0, 1).snapshot_restored);
        // The restored index must answer without rebuilding: give the
        // build a zero budget headroom via an immediate deadline on a
        // *cache hit* path. A hit never touches the budget.
        let (tier, after) = cold
            .handle_rank("conf paper dom", "conf", "c0", 5, None)
            .unwrap();
        assert_eq!(tier, "exact");
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(
                (a.label.as_str(), a.value.as_str()),
                (b.label.as_str(), b.value.as_str())
            );
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
