//! The query service: per-request admission, execution, degradation.
//!
//! [`QueryService`] is the transport-agnostic core the TCP server (and
//! the tests) drive. One instance owns the resident state — the
//! commuting-matrix cache, the per-walk [`QueryEngine`]s, the circuit
//! breaker, the serving counters — and answers one request at a time
//! per calling thread; all methods take `&self` and are safe to share
//! across the worker pool.
//!
//! A rank request flows: breaker admission → walk/entity validation →
//! budget construction (per-request deadline or the server default) →
//! engine fast path (resident index, exact scores) → on budget
//! exhaustion, one [`BudgetedRPathSim`] attempt whose degradation tier
//! is reported in the envelope → only when even the last tier cannot
//! run does the request fail `exhausted`, feeding the breaker.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Duration;

use repsim_baselines::SimilarityAlgorithm as _;
use repsim_core::{BudgetedRPathSim, Degradation, QueryEngine};
use repsim_graph::Graph;
use repsim_metawalk::commuting::CommutingCache;
use repsim_metawalk::MetaWalk;
use repsim_obs::CounterHandle;
use repsim_sparse::budget::failpoints;
use repsim_sparse::{Budget, ExecError, Parallelism};

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::error::ServiceError;
use crate::protocol::{RankEntry, StatsBody};
use crate::snapshot::{self, LoadOutcome, SaveStats, SnapshotError};

static REQUESTS: CounterHandle = CounterHandle::new("repsim.serve.requests");
static SHED: CounterHandle = CounterHandle::new("repsim.serve.shed");
static DEGRADED: CounterHandle = CounterHandle::new("repsim.serve.degraded");
static EXHAUSTED: CounterHandle = CounterHandle::new("repsim.serve.exhausted");

/// Service tuning, shared by the CLI and the tests.
#[derive(Clone, Debug, Default)]
pub struct ServiceConfig {
    /// Worker parallelism (also used for index builds).
    pub par: Parallelism,
    /// Deadline applied when a request does not carry its own.
    /// `None` means unlimited.
    pub default_deadline_ms: Option<u64>,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Opt requests into the armed failpoints (`serve.slow_worker`,
    /// `snapshot.*`) — the fault-injection harness for the CI drill.
    pub fault_injection: bool,
}

/// What [`QueryService::restore`] did at startup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Restore {
    /// Entries imported from a valid snapshot.
    Restored {
        /// How many matrices came back.
        entries: usize,
    },
    /// No snapshot on disk; cold start.
    ColdStart,
    /// The snapshot failed validation and was moved aside; cold start
    /// with a warning. Indexes rebuild transparently on demand.
    Quarantined {
        /// Why the file was rejected.
        reason: String,
    },
}

/// The resident query service. See the module docs for the request
/// flow.
pub struct QueryService<'g> {
    g: &'g Graph,
    cfg: ServiceConfig,
    cache: Mutex<CommutingCache>,
    engines: RwLock<HashMap<MetaWalk, Arc<QueryEngine<'g>>>>,
    breaker: CircuitBreaker,
    requests: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicU64,
    exhausted: AtomicU64,
    snapshot_restored: AtomicBool,
}

impl<'g> QueryService<'g> {
    /// A cold service over `g` (no snapshot loaded yet).
    pub fn new(g: &'g Graph, cfg: ServiceConfig) -> QueryService<'g> {
        QueryService {
            g,
            breaker: CircuitBreaker::new(cfg.breaker),
            cfg,
            cache: Mutex::new(CommutingCache::new()),
            engines: RwLock::new(HashMap::new()),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
            snapshot_restored: AtomicBool::new(false),
        }
    }

    /// The graph being served.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    fn cache_lock(&self) -> MutexGuard<'_, CommutingCache> {
        // The cache holds plain data; poisoning cannot corrupt it.
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Answers one rank request. `deadline_ms` overrides the configured
    /// default. Returns the degradation tier that answered plus the
    /// top-k entries.
    pub fn handle_rank(
        &self,
        walk: &str,
        label: &str,
        value: &str,
        k: usize,
        deadline_ms: Option<u64>,
    ) -> Result<(String, Vec<RankEntry>), ServiceError> {
        let mut span = repsim_obs::span("repsim.serve.request");
        if span.is_active() {
            span.attr("walk", walk);
            span.attr("query", format!("{label}={value}"));
            span.attr("k", k);
        }
        if let Err(retry_after_ms) = self.breaker.admit() {
            self.shed.fetch_add(1, Ordering::Relaxed);
            SHED.add(1);
            return Err(ServiceError::Overloaded { retry_after_ms });
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        REQUESTS.add(1);

        let mw = MetaWalk::parse_in(self.g, walk)
            .ok_or_else(|| ServiceError::BadRequest(format!("walk {walk:?} does not parse")))?;
        let label_id = self
            .g
            .labels()
            .get(label)
            .ok_or_else(|| ServiceError::BadRequest(format!("unknown label {label:?}")))?;
        if label_id != mw.source() {
            return Err(ServiceError::BadRequest(format!(
                "query label {label:?} is not the walk's source label {:?}",
                self.g.labels().name(mw.source())
            )));
        }
        let query = self
            .g
            .entity(label_id, value)
            .ok_or_else(|| ServiceError::BadRequest(format!("no entity {label:?} = {value:?}")))?;

        let mut budget = Budget::unlimited();
        if let Some(ms) = deadline_ms.or(self.cfg.default_deadline_ms) {
            budget = budget.with_deadline_ms(ms);
        }
        if self.cfg.fault_injection {
            budget = budget.with_fault_injection();
        }
        if budget.injected(failpoints::SERVE_SLOW_WORKER) {
            // The slow-worker drill: stall long enough that a tight
            // deadline expires and queued peers pile up behind us.
            std::thread::sleep(Duration::from_millis(25));
        }

        match self.rank_with(&mw, query, k, &budget) {
            Ok((tier, results)) => {
                if tier != "exact" {
                    self.degraded.fetch_add(1, Ordering::Relaxed);
                    DEGRADED.add(1);
                }
                self.breaker.on_success();
                Ok((tier, results))
            }
            Err(e) if e.is_exhaustion() => {
                self.exhausted.fetch_add(1, Ordering::Relaxed);
                EXHAUSTED.add(1);
                self.breaker.on_exhausted();
                Err(ServiceError::Exhausted(e))
            }
            Err(e) => Err(ServiceError::BadRequest(e.to_string())),
        }
    }

    /// The execution core: resident engine when affordable, budgeted
    /// degradation cascade otherwise.
    fn rank_with(
        &self,
        mw: &MetaWalk,
        query: repsim_graph::NodeId,
        k: usize,
        budget: &Budget,
    ) -> Result<(String, Vec<RankEntry>), ExecError> {
        if let Some(engine) = self.engine_for(mw, budget)? {
            let ranked = engine.rank_ref(query, mw.source(), k);
            return Ok(("exact".to_owned(), self.entries_of(&ranked)));
        }
        // The full index does not fit the remaining budget: degrade.
        // The cascade re-tries cheaper representations of the *same*
        // answer before shortening the walk as a last resort.
        let mut budgeted = BudgetedRPathSim::try_new(self.g, mw.clone(), self.cfg.par, budget)?;
        let tier = match budgeted.degradation() {
            Degradation::Exact => "exact".to_owned(),
            Degradation::HalfFactorized => "half-factorized".to_owned(),
            Degradation::PrefixWalk { .. } => {
                format!(
                    "prefix:{}",
                    budgeted.effective_half().display(self.g.labels())
                )
            }
        };
        let ranked = budgeted.rank(query, mw.source(), k);
        Ok((tier, self.entries_of(&ranked)))
    }

    /// The resident engine for `mw`, building (and caching) it on first
    /// use. `Ok(None)` means the build exhausted the budget — the caller
    /// degrades; hard errors (shape bugs) propagate.
    fn engine_for(
        &self,
        mw: &MetaWalk,
        budget: &Budget,
    ) -> Result<Option<Arc<QueryEngine<'g>>>, ExecError> {
        {
            let engines = self.engines.read().unwrap_or_else(|e| e.into_inner());
            if let Some(e) = engines.get(mw) {
                return Ok(Some(Arc::clone(e)));
            }
        }
        let m = {
            let mut cache = self.cache_lock();
            match cache.try_informative_with(self.g, mw, self.cfg.par, budget) {
                Ok(m) => m.clone(),
                Err(e) if e.is_exhaustion() => return Ok(None),
                Err(e) => return Err(e),
            }
        };
        let engine = Arc::new(QueryEngine::try_from_half_matrix(
            self.g,
            mw.clone(),
            m,
            self.cfg.par,
        )?);
        let mut engines = self.engines.write().unwrap_or_else(|e| e.into_inner());
        Ok(Some(Arc::clone(
            engines.entry(mw.clone()).or_insert(engine),
        )))
    }

    fn entries_of(&self, ranked: &repsim_baselines::RankedList) -> Vec<RankEntry> {
        ranked
            .keyed(self.g)
            .into_iter()
            .map(|(label, value, score)| RankEntry {
                label,
                value,
                score,
            })
            .collect()
    }

    /// Records a request shed by the *queue* (admission control's outer
    /// ring; breaker sheds are recorded internally by
    /// [`QueryService::handle_rank`]).
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        SHED.add(1);
    }

    /// The serving counters for the `stats` op; queue figures are the
    /// transport's and passed in.
    pub fn stats_body(&self, queue_depth: usize, queue_capacity: usize) -> StatsBody {
        StatsBody {
            requests: self.requests.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            queue_depth,
            queue_capacity,
            cache_entries: self.cache_lock().len(),
            engines: self.engines.read().unwrap_or_else(|e| e.into_inner()).len(),
            breaker: self.breaker.state_name().to_owned(),
            snapshot_restored: self.snapshot_restored.load(Ordering::Relaxed),
        }
    }

    /// Persists the current index snapshot. The budget carries the
    /// fault-injection opt-in for the `snapshot.*` failpoints.
    pub fn save_snapshot(&self, path: &Path) -> Result<SaveStats, SnapshotError> {
        let budget = if self.cfg.fault_injection {
            Budget::unlimited().with_fault_injection()
        } else {
            Budget::unlimited()
        };
        let cache = self.cache_lock();
        snapshot::save(path, self.g, &cache, &budget)
    }

    /// Loads the snapshot at `path` into the cache, quarantining a
    /// corrupt file. Missing or quarantined snapshots are cold starts —
    /// never errors; only I/O failures propagate.
    pub fn restore(&self, path: &Path) -> Result<Restore, SnapshotError> {
        match snapshot::load(path, self.g)? {
            LoadOutcome::Restored(entries) => {
                let n = entries.len();
                let mut cache = self.cache_lock();
                for (kind, mw, m) in entries {
                    cache.import(kind, mw, m);
                }
                self.snapshot_restored.store(true, Ordering::Relaxed);
                Ok(Restore::Restored { entries: n })
            }
            LoadOutcome::Absent => Ok(Restore::ColdStart),
            LoadOutcome::Quarantined { reason, .. } => Ok(Restore::Quarantined { reason }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repsim_graph::GraphBuilder;

    fn mas_like() -> Graph {
        let mut b = GraphBuilder::new();
        let conf = b.entity_label("conf");
        let paper = b.entity_label("paper");
        let dom = b.entity_label("dom");
        let confs: Vec<_> = (0..3).map(|i| b.entity(conf, &format!("c{i}"))).collect();
        let doms: Vec<_> = (0..2).map(|i| b.entity(dom, &format!("d{i}"))).collect();
        for (i, (c, d)) in [(0, 0), (0, 1), (1, 0), (2, 1), (0, 0), (1, 1)]
            .iter()
            .enumerate()
        {
            let p = b.entity(paper, &format!("p{i}"));
            b.edge(p, confs[*c]).unwrap();
            b.edge(p, doms[*d]).unwrap();
        }
        b.build()
    }

    fn svc(g: &Graph) -> QueryService<'_> {
        QueryService::new(g, ServiceConfig::default())
    }

    #[test]
    fn rank_answers_exactly_and_caches_the_engine() {
        let g = mas_like();
        let s = svc(&g);
        let (tier, results) = s
            .handle_rank("conf paper dom", "conf", "c0", 5, None)
            .unwrap();
        assert_eq!(tier, "exact");
        assert!(!results.is_empty());
        // The query itself is excluded (queries ask for entities *other*
        // than the query); c1 shares both doms with c0 and c2 only one.
        assert!(results.iter().all(|r| r.value != "c0"));
        assert_eq!(results[0].value, "c1");
        for w in results.windows(2) {
            assert!(w[0].score >= w[1].score, "descending scores");
        }
        let stats = s.stats_body(0, 8);
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.engines, 1);
        assert!(stats.cache_entries >= 1);
        // Second call hits the resident engine.
        let (tier2, results2) = s
            .handle_rank("conf paper dom", "conf", "c0", 5, None)
            .unwrap();
        assert_eq!(tier2, "exact");
        assert_eq!(results, results2);
    }

    #[test]
    fn rank_matches_the_direct_engine() {
        let g = mas_like();
        let s = svc(&g);
        let (_, via_service) = s
            .handle_rank("conf paper dom", "conf", "c1", 3, None)
            .unwrap();
        let mw = MetaWalk::parse_in(&g, "conf paper dom").unwrap();
        let engine = QueryEngine::try_with_budget(
            &g,
            mw.clone(),
            Parallelism::serial(),
            &Budget::unlimited(),
        )
        .unwrap();
        let q = g.entity(mw.source(), "c1").unwrap();
        let direct = engine.rank_ref(q, mw.source(), 3);
        let direct_keyed = direct.keyed(&g);
        assert_eq!(via_service.len(), direct_keyed.len());
        for (a, (bl, bv, bs)) in via_service.iter().zip(direct_keyed) {
            assert_eq!(
                (a.label.as_str(), a.value.as_str()),
                (bl.as_str(), bv.as_str())
            );
            assert_eq!(a.score.to_bits(), bs.to_bits(), "bit-identical scores");
        }
    }

    #[test]
    fn malformed_requests_are_bad_requests_not_panics() {
        let g = mas_like();
        let s = svc(&g);
        for (walk, label, value) in [
            ("conf nope dom", "conf", "c0"),  // unknown label in walk
            ("conf paper dom", "nope", "c0"), // unknown query label
            ("conf paper dom", "conf", "zz"), // unknown entity
            ("conf paper dom", "dom", "d0"),  // label is not the source
        ] {
            match s.handle_rank(walk, label, value, 3, None) {
                Err(ServiceError::BadRequest(_)) => {}
                other => {
                    panic!("{walk:?}/{label:?}/{value:?}: expected bad request, got {other:?}")
                }
            }
        }
        assert_eq!(s.stats_body(0, 1).exhausted, 0);
    }

    #[test]
    fn expired_deadline_exhausts_and_trips_the_breaker() {
        let g = mas_like();
        let s = QueryService::new(
            &g,
            ServiceConfig {
                breaker: BreakerConfig {
                    threshold: 3,
                    base_ms: 10_000,
                    max_ms: 10_000,
                    jitter_seed: 1,
                },
                ..ServiceConfig::default()
            },
        );
        for i in 0..3 {
            match s.handle_rank("conf paper dom", "conf", "c0", 3, Some(0)) {
                Err(ServiceError::Exhausted(e)) => assert!(e.is_exhaustion(), "req {i}: {e}"),
                other => panic!("req {i}: expected exhausted, got {other:?}"),
            }
        }
        // Third consecutive exhaustion tripped the breaker: rejections
        // are now typed Overloaded with a retry hint, without executing.
        match s.handle_rank("conf paper dom", "conf", "c0", 3, None) {
            Err(ServiceError::Overloaded { retry_after_ms }) => {
                assert!(retry_after_ms >= 1);
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
        let stats = s.stats_body(0, 1);
        assert_eq!(stats.exhausted, 3);
        assert_eq!(stats.breaker, "open");
        assert_eq!(stats.shed, 1);
        // A successful request after the cool-down closes the breaker
        // again (covered in breaker unit tests; here we only assert the
        // service wired the verdicts through).
    }

    #[test]
    fn snapshot_roundtrip_preserves_rankings_bit_for_bit() {
        let g = mas_like();
        let dir = std::env::temp_dir().join(format!("repsim-svc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("idx.snap");

        let warm = svc(&g);
        let (_, before) = warm
            .handle_rank("conf paper dom", "conf", "c0", 5, None)
            .unwrap();
        warm.save_snapshot(&path).unwrap();

        let cold = svc(&g);
        match cold.restore(&path).unwrap() {
            Restore::Restored { entries } => assert!(entries >= 1),
            other => panic!("expected restore, got {other:?}"),
        }
        assert!(cold.stats_body(0, 1).snapshot_restored);
        // The restored index must answer without rebuilding: give the
        // build a zero budget headroom via an immediate deadline on a
        // *cache hit* path. A hit never touches the budget.
        let (tier, after) = cold
            .handle_rank("conf paper dom", "conf", "c0", 5, None)
            .unwrap();
        assert_eq!(tier, "exact");
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(
                (a.label.as_str(), a.value.as_str()),
                (b.label.as_str(), b.value.as_str())
            );
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
