#![warn(missing_docs)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::indexing_slicing
    )
)]

//! A resident, multi-threaded R-PathSim query service.
//!
//! The ROADMAP's north star serves heavy traffic from a long-lived
//! process; this crate supplies that process. It speaks newline-delimited
//! JSON over TCP (std-only — requests are parsed with
//! [`repsim_obs::json`], no external dependencies) and is built around
//! three robustness layers:
//!
//! 1. **Admission control & load shedding** ([`queue`], [`breaker`]) — a
//!    bounded request queue feeds a worker pool sized by
//!    [`repsim_sparse::Parallelism`]. A full queue rejects immediately
//!    with a typed [`error::ServiceError::Overloaded`] carrying a
//!    retry-after hint, and a circuit breaker trips after consecutive
//!    budget-exhausted responses, half-opening with exponential backoff
//!    plus deterministic jitter.
//! 2. **Graceful degradation** ([`service`]) — per-request deadlines map
//!    onto [`repsim_sparse::Budget`]; when the exact engine build cannot
//!    fit, the request routes through
//!    [`repsim_core::budgeted::BudgetedRPathSim`] and the response
//!    envelope reports the [`repsim_core::budgeted::Degradation`] tier
//!    instead of dropping the connection.
//! 3. **Crash-safe persistence** ([`snapshot`], [`wal`]) — commuting-matrix cache
//!    entries (which double as the engines' half-matrix indexes) persist
//!    in a versioned, checksummed snapshot written temp-file + fsync +
//!    atomic rename. Loads validate magic, version, graph fingerprint
//!    and payload checksum; anything suspect is quarantined on disk and
//!    the server transparently rebuilds — answers are bit-identical to a
//!    cold rebuild either way (the paper's whole point is that rankings
//!    are representation-stable; a warm start must not perturb them).
//!    Live mutations append to a checksummed write-ahead log ([`wal`])
//!    before they are acknowledged; recovery replays it, truncating a
//!    torn tail and quarantining corrupt suffixes through the bounded
//!    [`quarantine`] rotation.
//!
//! The serving path is observable end-to-end: queue depth, sheds,
//! breaker transitions and snapshot save/load durations surface as
//! `repsim.serve.*` metrics, and every request runs under a
//! `repsim.serve.request` span.

pub mod breaker;
pub mod capture;
pub mod coord;
pub mod error;
pub mod protocol;
pub mod quarantine;
pub mod queue;
pub mod server;
pub mod service;
pub mod singleflight;
pub mod snapshot;
pub mod wal;

pub use breaker::{BreakerConfig, CircuitBreaker, OpClass};
pub use capture::{CaptureRecord, CaptureWriter, RecoveredCapture};
pub use coord::{run_coordinator, CoordConfig, Coordinator};
pub use error::ServiceError;
pub use protocol::{parse_shard_reply, Request, Response, ShardIdent, ShardReply};
pub use server::{client_roundtrip, run, ServeConfig, ServeError, ServeReport};
pub use service::{QueryService, Restore, ServiceConfig, ShardSpec};
pub use wal::{RecoveredLog, Wal, WalError};
