//! Observability integration for the parallel SpGEMM kernel: span
//! nesting under `thread::scope` workers and determinism of the
//! recorded aggregates across `REPSIM_THREADS` settings.

// Tests may panic freely: the workspace panic-freedom lints target
// library code, not assertions.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::sync::Arc;

use repsim_obs::{AttrValue, CollectSink, EventKind, TraceEvent};
use repsim_sparse::ops::try_spmm_with_budget;
use repsim_sparse::{Budget, Csr};

/// A deterministic sparse square matrix with > 4096 stored entries, so
/// the kernel actually engages its multi-band parallel path.
fn fixture(n: usize, stride: usize) -> Csr {
    let rows: Vec<Vec<(u32, f64)>> = (0..n)
        .map(|r| {
            (0..20)
                .map(|j| {
                    let c = (r * stride + j * 7) % n;
                    (c as u32, 1.0 + ((r + j) % 5) as f64)
                })
                .collect::<std::collections::BTreeMap<u32, f64>>()
                .into_iter()
                .collect()
        })
        .collect();
    Csr::from_rows(n, &rows)
}

struct SpanView {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    attrs: Vec<(&'static str, AttrValue)>,
}

fn span_ends(events: &[TraceEvent]) -> Vec<SpanView> {
    events
        .iter()
        .filter_map(|ev| match &ev.kind {
            EventKind::SpanEnd {
                id,
                parent,
                name,
                attrs,
                ..
            } => Some(SpanView {
                id: *id,
                parent: *parent,
                name,
                attrs: attrs.clone(),
            }),
            _ => None,
        })
        .collect()
}

fn attr_u64(span: &SpanView, key: &str) -> Option<u64> {
    span.attrs.iter().find_map(|(k, v)| match v {
        AttrValue::U64(n) if *k == key => Some(*n),
        _ => None,
    })
}

/// One observed kernel run: the aggregates that must not depend on the
/// thread count.
#[derive(Debug, PartialEq, Eq)]
struct RunAggregates {
    kernel_spans: usize,
    symbolic_spans: usize,
    numeric_spans: usize,
    phases_nested_under_kernel: bool,
    out_nnz: Option<u64>,
    flops: Option<u64>,
    calls_delta: u64,
    out_nnz_hist_sum: u64,
    flops_hist_sum: u64,
}

fn observe(threads: usize, a: &Csr, b: &Csr) -> (Csr, RunAggregates) {
    let registry = repsim_obs::Registry::global();
    registry.reset();
    let collect = Arc::new(CollectSink::new());
    let sink: Arc<dyn repsim_obs::Sink> = Arc::clone(&collect) as _;
    repsim_obs::install(Arc::clone(&sink));
    let out = try_spmm_with_budget(a, b, threads, &Budget::unlimited()).expect("in-shape product");
    repsim_obs::remove_sink(&sink);

    let spans = span_ends(&collect.events());
    let kernel: Vec<&SpanView> = spans
        .iter()
        .filter(|s| s.name == "repsim.sparse.spgemm")
        .collect();
    let symbolic: Vec<&SpanView> = spans
        .iter()
        .filter(|s| s.name == "repsim.sparse.spgemm.symbolic")
        .collect();
    let numeric: Vec<&SpanView> = spans
        .iter()
        .filter(|s| s.name == "repsim.sparse.spgemm.numeric")
        .collect();
    let kernel_id = kernel.first().map(|s| s.id);
    let nested = symbolic
        .iter()
        .chain(numeric.iter())
        .all(|s| s.parent.is_some() && s.parent == kernel_id);
    let snapshot = registry.snapshot();
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    };
    let hist_sum = |name: &str| {
        snapshot
            .histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, s)| s.sum)
    };
    let agg = RunAggregates {
        kernel_spans: kernel.len(),
        symbolic_spans: symbolic.len(),
        numeric_spans: numeric.len(),
        phases_nested_under_kernel: nested,
        out_nnz: kernel.first().and_then(|s| attr_u64(s, "out_nnz")),
        flops: kernel.first().and_then(|s| attr_u64(s, "flops")),
        calls_delta: counter("repsim.sparse.spgemm.calls"),
        out_nnz_hist_sum: hist_sum("repsim.sparse.spgemm.out_nnz"),
        flops_hist_sum: hist_sum("repsim.sparse.spgemm.flops"),
    };
    (out, agg)
}

#[test]
fn spgemm_span_aggregates_match_across_parallel_thread_counts() {
    // Serializes global sink/metric state against other observability
    // tests in this binary.
    let _x = repsim_obs::exclusive();
    let a = fixture(300, 3);
    let b = fixture(300, 5);
    assert!(a.nnz() >= 4096, "fixture must engage the banded path");

    let (serial_out, serial) = observe(1, &a, &b);
    assert_eq!(serial.kernel_spans, 1, "{serial:?}");
    assert_eq!(serial.symbolic_spans, 1, "{serial:?}");
    assert_eq!(serial.numeric_spans, 1, "{serial:?}");
    assert!(serial.phases_nested_under_kernel, "{serial:?}");
    assert_eq!(serial.calls_delta, 1);
    assert_eq!(serial.out_nnz, Some(serial_out.nnz() as u64));
    assert_eq!(serial.out_nnz_hist_sum, serial_out.nnz() as u64);
    assert!(serial.flops.is_some_and(|f| f > 0));
    assert_eq!(serial.flops, Some(serial.flops_hist_sum));

    for threads in [2, 4, 8] {
        let (out, par) = observe(threads, &a, &b);
        assert_eq!(out, serial_out, "threads={threads} must be bit-identical");
        assert_eq!(par, serial, "threads={threads} aggregates must match");
    }
}

#[test]
fn spgemm_records_nothing_when_disabled_even_in_parallel() {
    let _x = repsim_obs::exclusive();
    let a = fixture(300, 3);
    let b = fixture(300, 5);
    repsim_obs::Registry::global().reset();
    assert!(!repsim_obs::enabled());
    let out = try_spmm_with_budget(&a, &b, 4, &Budget::unlimited()).expect("in-shape product");
    assert!(out.nnz() > 0);
    let snapshot = repsim_obs::Registry::global().snapshot();
    assert!(
        snapshot.is_empty(),
        "disabled run must not record metrics: {}",
        snapshot.render_table()
    );
}
