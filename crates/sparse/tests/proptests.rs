//! Property tests for the two-phase SpGEMM kernel and the chain planner:
//!
//! 1. `spmm` equals a naive dense-reference product;
//! 2. `spmm_par` is bit-identical to `spmm` across thread counts;
//! 3. `spmm_chain` is invariant under the DP's association order versus a
//!    blind left fold (exact, because generated values are small integers
//!    and integer f64 arithmetic is associative below 2^53).

// Tests may panic freely: the workspace panic-freedom lints target
// library code, not assertions.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use proptest::prelude::*;
use repsim_sparse::chain::{spmm_chain_with_threads, try_spmm_chain_with_budget};
use repsim_sparse::ops::{spmm, spmm_chain, try_spmm_with_budget};
use repsim_sparse::par::spmm_par;
use repsim_sparse::{
    set_accumulator, set_compact_mode, Accumulator, Budget, CompactMode, Csr, CsrCompact, ExecError,
};

/// Raw triplet material: positions are reduced modulo the actual matrix
/// dimensions, values map to non-zero integers in `-6..=6` so cancellation
/// happens but reassociation stays exact.
fn triplets() -> impl Strategy<Value = Vec<(usize, usize, u32)>> {
    proptest::collection::vec((0..10_000usize, 0..10_000usize, 0..12u32), 0..60)
}

fn build(nrows: usize, ncols: usize, raw: &[(usize, usize, u32)]) -> Csr {
    Csr::from_triplets(
        nrows,
        ncols,
        raw.iter().map(|&(r, c, v)| {
            let value = if v < 6 {
                v as f64 - 6.0
            } else {
                v as f64 - 5.0
            };
            ((r % nrows) as u32, (c % ncols) as u32, value)
        }),
    )
}

/// Naive reference: every output cell as an explicit ascending-k sum over
/// the shared dimension, canonicalized through `from_triplets`.
fn dense_reference(a: &Csr, b: &Csr) -> Csr {
    let mut trips = Vec::new();
    for r in 0..a.nrows() {
        for c in 0..b.ncols() {
            let mut sum = 0.0;
            for k in 0..a.ncols() {
                sum += a.get(r, k) * b.get(k, c);
            }
            if sum != 0.0 {
                trips.push((r as u32, c as u32, sum));
            }
        }
    }
    Csr::from_triplets(a.nrows(), b.ncols(), trips)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn spmm_matches_dense_reference(
        nrows in 1..12usize,
        inner in 1..12usize,
        ncols in 1..12usize,
        raw_a in triplets(),
        raw_b in triplets(),
    ) {
        let a = build(nrows, inner, &raw_a);
        let b = build(inner, ncols, &raw_b);
        let product = spmm(&a, &b);
        prop_assert_eq!(&product, &dense_reference(&a, &b));
        // No explicit zeros may survive the numeric pass.
        for r in 0..product.nrows() {
            let (_, vals) = product.row(r);
            prop_assert!(vals.iter().all(|&v| v != 0.0));
        }
    }

    #[test]
    fn spmm_par_bit_identical_to_serial(
        nrows in 1..40usize,
        inner in 1..16usize,
        ncols in 1..16usize,
        raw_a in triplets(),
        raw_b in triplets(),
    ) {
        let a = build(nrows, inner, &raw_a);
        let b = build(inner, ncols, &raw_b);
        let serial = spmm(&a, &b);
        for threads in [1usize, 2, 7, 64] {
            prop_assert_eq!(&spmm_par(&a, &b, threads), &serial, "threads={}", threads);
        }
    }

    #[test]
    fn spmm_chain_invariant_under_planned_order(
        len in 3..=5usize,
        dims in proptest::collection::vec(1..10usize, 6),
        raws in proptest::collection::vec(triplets(), 5),
    ) {
        let mats: Vec<Csr> = (0..len)
            .map(|i| build(dims[i], dims[i + 1], &raws[i]))
            .collect();
        let refs: Vec<&Csr> = mats.iter().collect();
        let folded = refs[1..]
            .iter()
            .fold(mats[0].clone(), |acc, m| spmm(&acc, m));
        prop_assert_eq!(&spmm_chain(&refs), &folded);
        for threads in [1usize, 4] {
            prop_assert_eq!(
                &spmm_chain_with_threads(&refs, threads),
                &folded,
                "threads={}",
                threads
            );
        }
    }

    // Every kernel output is a structurally sound CSR: the invariants the
    // debug-build construction hooks assert (monotone row_ptr, strictly
    // increasing in-bounds columns, consistent entry counts) re-checked
    // through the public `validate` entry so they hold in release too.
    #[test]
    fn kernel_outputs_satisfy_csr_invariants(
        nrows in 1..14usize,
        inner in 1..14usize,
        ncols in 1..14usize,
        raw_a in triplets(),
        raw_b in triplets(),
    ) {
        let a = build(nrows, inner, &raw_a);
        let b = build(inner, ncols, &raw_b);
        prop_assert_eq!(a.validate(), Ok(()));
        prop_assert_eq!(a.transpose().validate(), Ok(()));
        prop_assert_eq!(spmm(&a, &b).validate(), Ok(()));
        let chained = try_spmm_chain_with_budget(&[&a, &b, &b.transpose()], 2, &Budget::unlimited());
        prop_assert_eq!(chained.expect("unlimited budget").validate(), Ok(()));
    }

    // Budgeted execution is all-or-nothing: a budget generous enough to
    // finish yields a product bit-identical to the unbudgeted kernel, and
    // a starved nnz cap yields MemoryExceeded — never a partial matrix,
    // never a panic.
    #[test]
    fn budgeted_spmm_all_or_nothing(
        nrows in 1..14usize,
        inner in 1..14usize,
        ncols in 1..14usize,
        raw_a in triplets(),
        raw_b in triplets(),
        cap in 0..40usize,
    ) {
        let a = build(nrows, inner, &raw_a);
        let b = build(inner, ncols, &raw_b);
        let exact = spmm(&a, &b);
        let budget = Budget::unlimited().with_max_nnz(cap);
        match try_spmm_with_budget(&a, &b, 2, &budget) {
            Ok(c) => {
                prop_assert_eq!(&c, &exact);
                // The symbolic bound (not the post-cancellation count) is
                // what the cap admits, so success implies the bound fit.
                prop_assert!(exact.nnz() <= cap);
            }
            Err(ExecError::MemoryExceeded { nnz, limit }) => {
                prop_assert_eq!(limit, cap);
                prop_assert!(nnz > cap);
            }
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }

    // Accumulator policy must never show through: whether a row runs the
    // tiled-dense path, the hash-sparse path, or the adaptive mix, and
    // whether the right operand is delta-compacted or plain, the output
    // must be bit-identical to the dense reference at every thread count.
    // (The policy knobs are process-global atomics; every policy yields
    // the same bits, so concurrently running tests are unaffected.)
    #[test]
    fn forced_accumulators_bit_identical_across_threads(
        nrows in 1..40usize,
        inner in 1..16usize,
        ncols in 1..16usize,
        raw_a in triplets(),
        raw_b in triplets(),
    ) {
        let a = build(nrows, inner, &raw_a);
        let b = build(inner, ncols, &raw_b);
        let reference = dense_reference(&a, &b);
        for policy in [Accumulator::Dense, Accumulator::Sparse, Accumulator::Adaptive] {
            for mode in [CompactMode::Off, CompactMode::On] {
                set_accumulator(policy);
                set_compact_mode(mode);
                for threads in [1usize, 3, 8] {
                    let got = spmm_par(&a, &b, threads);
                    set_accumulator(Accumulator::Adaptive);
                    set_compact_mode(CompactMode::Auto);
                    prop_assert_eq!(
                        &got, &reference,
                        "policy={:?} compact={:?} threads={}", policy, mode, threads
                    );
                    // Bit-level check on top of Eq: identical raw f64 bits.
                    for r in 0..got.nrows() {
                        let (gc, gv) = got.row(r);
                        let (rc, rv) = reference.row(r);
                        prop_assert_eq!(gc, rc);
                        for (x, y) in gv.iter().zip(rv) {
                            prop_assert_eq!(x.to_bits(), y.to_bits());
                        }
                    }
                    set_accumulator(policy);
                    set_compact_mode(mode);
                }
            }
        }
        set_accumulator(Accumulator::Adaptive);
        set_compact_mode(CompactMode::Auto);
    }

    // The succinct CSR is lossless on every matrix narrow enough to
    // qualify: expansion restores the exact bits (including negative
    // zeros), and re-compacting the expansion reproduces the encoding.
    #[test]
    fn csr_compact_round_trip_is_lossless(
        nrows in 1..30usize,
        ncols in 1..30usize,
        raw in triplets(),
    ) {
        let m = build(nrows, ncols, &raw);
        let compact = CsrCompact::try_from_csr(&m).expect("small dims are always eligible");
        let back = compact.to_csr();
        prop_assert_eq!(&back, &m);
        for r in 0..m.nrows() {
            let (_, mv) = m.row(r);
            let (_, bv) = back.row(r);
            for (x, y) in mv.iter().zip(bv) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        let again = CsrCompact::try_from_csr(&back).expect("round trip stays eligible");
        let mut bytes = Vec::new();
        let mut bytes_again = Vec::new();
        compact.encode_into(&mut bytes);
        again.encode_into(&mut bytes_again);
        prop_assert_eq!(bytes, bytes_again);
    }

    // Same all-or-nothing property through the chain planner: whatever
    // association order the DP picks, a cap either admits the exact fold
    // or the chain aborts with a structured error.
    #[test]
    fn budgeted_chain_all_or_nothing(
        len in 2..=4usize,
        dims in proptest::collection::vec(1..9usize, 5),
        raws in proptest::collection::vec(triplets(), 4),
        cap in 0..60usize,
    ) {
        let mats: Vec<Csr> = (0..len)
            .map(|i| build(dims[i], dims[i + 1], &raws[i]))
            .collect();
        let refs: Vec<&Csr> = mats.iter().collect();
        let folded = refs[1..]
            .iter()
            .fold(mats[0].clone(), |acc, m| spmm(&acc, m));
        let budget = Budget::unlimited().with_max_nnz(cap);
        match try_spmm_chain_with_budget(&refs, 1, &budget) {
            Ok(c) => prop_assert_eq!(&c, &folded),
            Err(e) => prop_assert!(
                matches!(e, ExecError::MemoryExceeded { .. }),
                "unexpected error {:?}",
                e
            ),
        }
    }
}
