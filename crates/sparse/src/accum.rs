//! Adaptive SpGEMM accumulation: operand views, per-row accumulators,
//! and arena-reused scratch.
//!
//! The Gustavson numeric phase spends its time scattering `va·vb`
//! products into a per-row accumulator. One accumulator shape cannot be
//! right for every row of a Zipf-skewed graph: a hub row touching
//! thousands of columns wants a dense array it can stream, while the
//! long tail of rows touching a handful of columns pays dearly for
//! striding (and then resetting) a `ncols`-wide buffer. This module
//! provides both shapes and lets the kernel pick per row, for free,
//! using the exact nnz upper bounds the symbolic pass already computed:
//!
//! * **dense tiled** ([`WorkerScratch::numeric_row_dense`]): a
//!   [`TILE_WIDTH`]-column window of `f64` accumulators (16 KiB —
//!   L1-resident) swept left to right across the output row. Each
//!   operand row keeps a resumable cursor, so every `b` row is streamed
//!   exactly once; tiles no cursor points into are skipped entirely.
//!   Emission walks an occupancy bitmap in ascending bit order — no
//!   sort, and a sparsely hit tile costs its entries, not its width.
//!   Rows whose cursors would be re-probed across many tiles for few
//!   products each instead drain in one pass over a wider L2-resident
//!   window ([`WIDE_TILE_CAP`]), cursor-free.
//! * **sparse hash** ([`WorkerScratch::numeric_row_sparse`]): a small
//!   power-of-two open-addressing table (≤50% load) keyed by column,
//!   with an insertion-order slot list that is sorted at emission.
//!   Sized from the row's symbolic bound, it stays a few KiB for tail
//!   rows instead of touching the whole output width.
//!
//! **Bit-identity invariant.** Both paths add the products contributing
//! to one output column in exactly the order the reference kernel does —
//! ascending `k` over the `a`-row's entries (each `b` row contributes at
//! most one product per column, and both the tile sweep and the hash
//! probe preserve first-to-last visit order per column) — so the
//! computed `f64` sums are bit-identical to the historical dense
//! `RowWorkspace` kernel for every policy, thread count, and operand
//! representation. The proptests in `tests/proptests.rs` pin this
//! against an independent dense reference.
//!
//! Scratch lives in a [`SpgemmArena`] so a chain of products allocates
//! each worker's accumulators once per chain, not once per product.

use crate::compact::CsrCompact;
use crate::csr::Csr;
use std::sync::atomic::{AtomicU8, Ordering};

/// Column-tile width of the dense accumulator path: 2048 `f64` slots is
/// 16 KiB, half a typical 32 KiB L1d, leaving the other half for the
/// streamed operand rows and output.
pub(crate) const TILE_WIDTH: usize = 2048;

/// Widest single-pass accumulator the dense path may use: 32768 `f64`
/// slots is 256 KiB — L2-resident, not L1. When a row's operand cursors
/// would be re-probed across many tiles for only a few products each
/// (short `b` rows under a wide output), one L2-latency pass beats
/// `tiles × cursors` L1 passes, so the row drains cursor-free into this
/// wider window instead. Outputs wider than the cap always tile.
pub(crate) const WIDE_TILE_CAP: usize = 32768;

/// Empty-slot sentinel of the hash accumulator. The sparse path is only
/// selected when `ncols <= u32::MAX`, so no real column collides with it.
const EMPTY: u32 = u32::MAX;

/// Fibonacci-hashing multiplier (the 64-bit golden ratio).
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Per-flop cost discount the planner assumes for a compact (delta
/// encoded) right operand: fewer bytes streamed per entry.
pub(crate) const COMPACT_FLOP_DISCOUNT: f64 = 0.85;

/// Estimated flop-equivalents per entry to delta-encode an operand.
pub(crate) const COMPACT_CONVERT_COST: f64 = 1.0;

/// Minimum `flops / nnz(b)` reuse ratio before auto-compaction pays for
/// the conversion pass.
pub(crate) const COMPACT_MIN_REUSE: f64 = 4.0;

/// Which per-row accumulator the numeric phase uses.
///
/// The default ([`Accumulator::Adaptive`]) picks per row from the
/// symbolic pass's exact nnz bound; the forced variants exist for
/// benchmarking each path in isolation (`spgemm --accumulator …`) and
/// for the policy-pinning proptests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Accumulator {
    /// Per-row choice: sparse hash below the cutoff, dense tiled above.
    Adaptive,
    /// Every row through the dense tiled path.
    Dense,
    /// Every row through the sparse hash path (wide rows get a
    /// proportionally larger table; rows of matrices with `ncols >
    /// u32::MAX` still fall back to dense, where no sentinel exists).
    Sparse,
}

/// Whether the kernel may delta-encode its right operand on the fly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompactMode {
    /// Compact when eligible and the product's flop count amortizes the
    /// conversion ([`COMPACT_MIN_REUSE`]); the default.
    Auto,
    /// Never compact.
    Off,
    /// Compact whenever the shape permits (`spgemm --compact-csr`).
    On,
}

/// Process-wide accumulator policy; 0 = adaptive, 1 = dense, 2 = sparse.
static ACCUMULATOR: AtomicU8 = AtomicU8::new(0);
/// Process-wide compaction mode; 0 = auto, 1 = off, 2 = on.
static COMPACT: AtomicU8 = AtomicU8::new(0);

/// Installs a process-wide accumulator policy (the `spgemm` bench bin's
/// `--accumulator` flag). Output is bit-identical under every policy;
/// only the constant factor changes.
pub fn set_accumulator(policy: Accumulator) {
    let v = match policy {
        Accumulator::Adaptive => 0,
        Accumulator::Dense => 1,
        Accumulator::Sparse => 2,
    };
    ACCUMULATOR.store(v, Ordering::Relaxed);
}

/// The current process-wide accumulator policy.
pub fn accumulator() -> Accumulator {
    match ACCUMULATOR.load(Ordering::Relaxed) {
        1 => Accumulator::Dense,
        2 => Accumulator::Sparse,
        _ => Accumulator::Adaptive,
    }
}

/// Installs a process-wide compaction mode (the `spgemm` bench bin's
/// `--compact-csr` flag). Output is bit-identical under every mode.
pub fn set_compact_mode(mode: CompactMode) {
    let v = match mode {
        CompactMode::Auto => 0,
        CompactMode::Off => 1,
        CompactMode::On => 2,
    };
    COMPACT.store(v, Ordering::Relaxed);
}

/// The current process-wide compaction mode.
pub fn compact_mode() -> CompactMode {
    match COMPACT.load(Ordering::Relaxed) {
        1 => CompactMode::Off,
        2 => CompactMode::On,
        _ => CompactMode::Auto,
    }
}

/// Rows whose symbolic bound is at most this go through the sparse hash
/// accumulator under the adaptive policy. `ncols / 64` tracks the dense
/// path's fixed per-row cost — its occupancy scan reads one word per 64
/// columns — so the hash table (plus its emit sort) is only chosen when
/// the row is too small to amortize that scan; the floor keeps genuinely
/// tiny rows off the tile sweep even in narrow matrices.
pub(crate) fn sparse_cutoff(ncols: usize) -> usize {
    (ncols / 64).max(64)
}

/// A read-side view of the streamed (right) operand, monomorphized into
/// the kernel inner loops: plain CSR slices or delta-encoded compact
/// storage with on-the-fly decode.
///
/// Row entries are visited as `(index, running previous column)` pairs:
/// `col_at(i, prev)` returns entry `i`'s column given the decoded column
/// of entry `i - 1` of the same row (`0` at a row start). The plain view
/// ignores `prev`; the compact view adds its `u16` delta to it. This
/// shape lets the tiled path suspend mid-row at a tile boundary and
/// resume without re-decoding the prefix.
pub(crate) trait Operand: Copy + Send + Sync {
    /// Start/end entry indices of row `k`.
    fn row_bounds(&self, k: usize) -> (usize, usize);
    /// Column of entry `i`, given the previous decoded column of its row.
    fn col_at(&self, i: usize, prev: u32) -> u32;
    /// Value of entry `i` (bit-identical across representations).
    fn val_at(&self, i: usize) -> f64;
}

/// [`Operand`] over a plain [`Csr`]'s raw arrays.
#[derive(Clone, Copy)]
pub(crate) struct PlainView<'a> {
    row_ptr: &'a [usize],
    cols: &'a [u32],
    vals: &'a [f64],
}

impl<'a> PlainView<'a> {
    pub(crate) fn of(m: &'a Csr) -> Self {
        let (row_ptr, cols, vals) = m.parts();
        PlainView {
            row_ptr,
            cols,
            vals,
        }
    }
}

impl Operand for PlainView<'_> {
    #[inline(always)]
    fn row_bounds(&self, k: usize) -> (usize, usize) {
        (self.row_ptr[k], self.row_ptr[k + 1])
    }

    #[inline(always)]
    fn col_at(&self, i: usize, _prev: u32) -> u32 {
        self.cols[i]
    }

    #[inline(always)]
    fn val_at(&self, i: usize) -> f64 {
        self.vals[i]
    }
}

/// [`Operand`] over delta-encoded compact storage (the layout of
/// [`CsrCompact`], borrowed from arena buffers so conversion allocates
/// nothing after the first product of a chain).
#[derive(Clone, Copy)]
pub(crate) struct CompactView<'a> {
    row_ptr: &'a [u32],
    deltas: &'a [u16],
    vals: &'a [f64],
}

impl Operand for CompactView<'_> {
    #[inline(always)]
    fn row_bounds(&self, k: usize) -> (usize, usize) {
        (self.row_ptr[k] as usize, self.row_ptr[k + 1] as usize)
    }

    #[inline(always)]
    fn col_at(&self, i: usize, prev: u32) -> u32 {
        prev + u32::from(self.deltas[i])
    }

    #[inline(always)]
    fn val_at(&self, i: usize) -> f64 {
        self.vals[i]
    }
}

/// Delta-encodes `m` into the given arena buffers and returns a borrowed
/// [`CompactView`] over them. The caller checked eligibility
/// ([`CsrCompact::eligible`]); values are copied bit-verbatim.
pub(crate) fn compact_into<'a>(
    m: &Csr,
    row_ptr: &'a mut Vec<u32>,
    deltas: &'a mut Vec<u16>,
    vals: &'a mut Vec<f64>,
) -> CompactView<'a> {
    debug_assert!(CsrCompact::eligible(m.ncols(), m.nnz()));
    let (m_ptr, m_cols, m_vals) = m.parts();
    row_ptr.clear();
    row_ptr.reserve(m_ptr.len());
    deltas.clear();
    deltas.reserve(m_cols.len());
    row_ptr.push(0);
    for k in 0..m.nrows() {
        let mut prev = 0u32;
        for &c in &m_cols[m_ptr[k]..m_ptr[k + 1]] {
            deltas.push((c - prev) as u16);
            prev = c;
        }
        row_ptr.push(deltas.len() as u32);
    }
    vals.clear();
    vals.extend_from_slice(m_vals);
    CompactView {
        row_ptr,
        deltas,
        vals,
    }
}

/// Per-worker accumulator scratch. All buffers grow to a high-water mark
/// and are reused across rows, products, and (via [`SpgemmArena`]) whole
/// chains. Between rows every buffer is restored to its resting state
/// (`seen` all-false, hash table all-[`EMPTY`], tile all-zero), so an
/// aborted band leaves the scratch immediately reusable.
pub(crate) struct WorkerScratch {
    /// Dense symbolic occupancy bitmap, `>= ncols` entries.
    seen: Vec<bool>,
    /// Columns marked in `seen`, for O(touched) reset.
    touched: Vec<u32>,
    /// Hash accumulator keys; [`EMPTY`] marks a free slot.
    slot_col: Vec<u32>,
    /// Hash accumulator sums, parallel to `slot_col`.
    slot_val: Vec<f64>,
    /// Occupied hash slots in insertion order, packed as
    /// `(column << 32) | slot` so the emit sort orders by column without
    /// an indirect key lookup per comparison.
    order: Vec<u64>,
    /// The dense path's tile of column accumulators.
    tile: Vec<f64>,
    /// Occupancy bitmap over `tile`, one bit per slot: scan-out walks set
    /// bits (ascending — column order) instead of probing every slot, so
    /// a sparsely hit tile costs its entries, not its width.
    tile_bits: Vec<u64>,
    /// Per-`a`-entry resumable positions into `b`: `(next, end, prev)`.
    cursor: Vec<(usize, usize, u32)>,
    /// `a` values parallel to `cursor` (rows with empty `b` rows dropped).
    cursor_va: Vec<f64>,
}

/// Tallies of the numeric phase's per-row policy decisions, surfaced as
/// `repsim.sparse.spgemm.numeric.{dense_rows,sparse_rows,tile_count}`.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct NumericTally {
    /// Rows computed by the dense tiled path.
    pub dense_rows: u64,
    /// Rows computed by the sparse hash path.
    pub sparse_rows: u64,
    /// Column tiles actually swept (empty tiles are skipped).
    pub tile_count: u64,
}

impl NumericTally {
    pub(crate) fn absorb(&mut self, other: NumericTally) {
        self.dense_rows += other.dense_rows;
        self.sparse_rows += other.sparse_rows;
        self.tile_count += other.tile_count;
    }
}

impl WorkerScratch {
    pub(crate) fn new() -> Self {
        WorkerScratch {
            seen: Vec::new(),
            touched: Vec::new(),
            slot_col: Vec::new(),
            slot_val: Vec::new(),
            order: Vec::new(),
            tile: Vec::new(),
            tile_bits: Vec::new(),
            cursor: Vec::new(),
            cursor_va: Vec::new(),
        }
    }

    /// Grows the fixed-size buffers for a product with `ncols` output
    /// columns. Called on the coordinating thread before bands spawn, so
    /// workers never allocate on the hot path.
    pub(crate) fn prepare(&mut self, ncols: usize) {
        if self.seen.len() < ncols {
            self.seen.resize(ncols, false);
        }
        let tile = WIDE_TILE_CAP.min(ncols.max(1));
        if self.tile.len() < tile {
            self.tile.resize(tile, 0.0);
        }
        let words = tile.div_ceil(64);
        if self.tile_bits.len() < words {
            self.tile_bits.resize(words, 0);
        }
    }

    /// Grows the hash table to a power-of-two size holding `need`
    /// distinct columns at ≤50% load. Existing slots are untouched (they
    /// are all [`EMPTY`] between rows), so growth preserves the resting
    /// state. Returns `(mask, shift)` for the probe sequence.
    fn table_for(&mut self, need: usize) -> (usize, u32) {
        let size = (2 * need.max(1)).next_power_of_two().max(8);
        if self.slot_col.len() < size {
            self.slot_col.resize(size, EMPTY);
            self.slot_val.resize(size, 0.0);
        }
        (size - 1, 64 - size.trailing_zeros())
    }

    /// Symbolic pass, dense shape: counts the distinct columns of output
    /// row `r = a_row · B` with the occupancy bitmap (the historical
    /// kernel's exact loop).
    pub(crate) fn symbolic_row_dense<B: Operand>(&mut self, acols: &[u32], b: &B) -> usize {
        self.touched.clear();
        for &k in acols {
            let (lo, hi) = b.row_bounds(k as usize);
            let mut prev = 0u32;
            for i in lo..hi {
                let c = b.col_at(i, prev);
                prev = c;
                if !self.seen[c as usize] {
                    self.seen[c as usize] = true;
                    self.touched.push(c);
                }
            }
        }
        for &c in &self.touched {
            self.seen[c as usize] = false;
        }
        self.touched.len()
    }

    /// Symbolic pass, sparse shape: counts distinct columns in a hash
    /// table sized by the row's flop count (an upper bound on distinct
    /// columns), never touching the `ncols`-wide bitmap.
    pub(crate) fn symbolic_row_sparse<B: Operand>(
        &mut self,
        acols: &[u32],
        b: &B,
        flops: usize,
    ) -> usize {
        let (mask, shift) = self.table_for(flops);
        self.order.clear();
        for &k in acols {
            let (lo, hi) = b.row_bounds(k as usize);
            let mut prev = 0u32;
            for i in lo..hi {
                let c = b.col_at(i, prev);
                prev = c;
                let mut h = (u64::from(c).wrapping_mul(HASH_MUL) >> shift) as usize;
                loop {
                    let sc = self.slot_col[h];
                    if sc == c {
                        break;
                    }
                    if sc == EMPTY {
                        self.slot_col[h] = c;
                        self.order.push(h as u64);
                        break;
                    }
                    h = (h + 1) & mask;
                }
            }
        }
        let distinct = self.order.len();
        for &s in &self.order {
            self.slot_col[(s & 0xFFFF_FFFF) as usize] = EMPTY;
        }
        distinct
    }

    /// Numeric pass, sparse shape: accumulates `a_row · B` in the hash
    /// table (additions in product-visit order — the reference order),
    /// then emits the occupied slots sorted by column, dropping exact
    /// zeros. Returns the entry count written to `cols_out`/`vals_out`.
    pub(crate) fn numeric_row_sparse<B: Operand>(
        &mut self,
        acols: &[u32],
        avals: &[f64],
        b: &B,
        bound: usize,
        cols_out: &mut [u32],
        vals_out: &mut [f64],
    ) -> usize {
        let (mask, shift) = self.table_for(bound);
        self.order.clear();
        for (&k, &va) in acols.iter().zip(avals) {
            let (lo, hi) = b.row_bounds(k as usize);
            let mut prev = 0u32;
            for i in lo..hi {
                let c = b.col_at(i, prev);
                prev = c;
                let p = va * b.val_at(i);
                let mut h = (u64::from(c).wrapping_mul(HASH_MUL) >> shift) as usize;
                loop {
                    let sc = self.slot_col[h];
                    if sc == c {
                        self.slot_val[h] += p;
                        break;
                    }
                    if sc == EMPTY {
                        self.slot_col[h] = c;
                        self.slot_val[h] = p;
                        self.order.push((u64::from(c) << 32) | h as u64);
                        break;
                    }
                    h = (h + 1) & mask;
                }
            }
        }
        let order = &mut self.order;
        let slot_col = &mut self.slot_col;
        let slot_val = &self.slot_val;
        order.sort_unstable();
        let mut n = 0;
        for &packed in order.iter() {
            let s = (packed & 0xFFFF_FFFF) as usize;
            let v = slot_val[s];
            slot_col[s] = EMPTY;
            if v != 0.0 {
                cols_out[n] = (packed >> 32) as u32;
                vals_out[n] = v;
                n += 1;
            }
        }
        n
    }

    /// Numeric pass, dense tiled shape: sweeps a [`TILE_WIDTH`]-column
    /// accumulator window across the output row. Each `a`-entry's `b` row
    /// keeps a resumable cursor; within a tile, cursors drain in `a`-row
    /// order (ascending `k` — the reference accumulation order per
    /// column), and the occupancy bitmap then scans out set slots in
    /// ascending column order, so no sort is needed and a sparsely hit
    /// tile costs its entries rather than its width. Only tiles some
    /// cursor points into are visited. Returns `(entries, tiles swept)`.
    // The argument list mirrors the per-row kernel contract (operand
    // views in, carved output slices out); bundling them into a struct
    // would only move the same eight names behind a constructor.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn numeric_row_dense<B: Operand>(
        &mut self,
        acols: &[u32],
        avals: &[f64],
        b: &B,
        ncols: usize,
        flops: u64,
        cols_out: &mut [u32],
        vals_out: &mut [f64],
    ) -> (usize, u64) {
        // Wide single-pass mode: when the whole output row fits the
        // capped window and the tiled sweep would spend a significant
        // fraction of its time re-probing suspended cursors (`cursors ×
        // tiles`, each probe costing about as much as a multiply-add),
        // drain every `b` row start-to-finish instead — no cursors, one
        // tile, occupancy-bitmap emission. The L2-latency scatter is
        // ~30% dearer per flop than the L1 tile, so wide wins once the
        // probe volume passes a third of the flop count.
        if ncols <= WIDE_TILE_CAP
            && 3 * (acols.len() as u64) * (ncols.div_ceil(TILE_WIDTH) as u64) > flops
        {
            let tile = &mut self.tile;
            let bits = &mut self.tile_bits;
            for (&k, &va) in acols.iter().zip(avals) {
                let (lo, hi) = b.row_bounds(k as usize);
                let mut prev = 0u32;
                for i in lo..hi {
                    let c = b.col_at(i, prev);
                    prev = c;
                    let j = c as usize;
                    tile[j] += va * b.val_at(i);
                    bits[j >> 6] |= 1u64 << (j & 63);
                }
            }
            let mut n = 0usize;
            for (w, word) in bits[..ncols.div_ceil(64)].iter_mut().enumerate() {
                let mut m = *word;
                if m == 0 {
                    continue;
                }
                *word = 0;
                let word_base = w << 6;
                while m != 0 {
                    let j = word_base + m.trailing_zeros() as usize;
                    m &= m - 1;
                    let v = tile[j];
                    if v != 0.0 {
                        tile[j] = 0.0;
                        cols_out[n] = j as u32;
                        vals_out[n] = v;
                        n += 1;
                    }
                }
            }
            return (n, 1);
        }
        self.cursor.clear();
        self.cursor_va.clear();
        let mut first = usize::MAX;
        for (&k, &va) in acols.iter().zip(avals) {
            let (lo, hi) = b.row_bounds(k as usize);
            if lo == hi {
                continue;
            }
            let c0 = b.col_at(lo, 0) as usize;
            first = first.min(c0);
            self.cursor.push((lo, hi, 0u32));
            self.cursor_va.push(va);
        }
        if self.cursor.is_empty() {
            return (0, 0);
        }
        let tile = &mut self.tile;
        let bits = &mut self.tile_bits;
        let cursors = &mut self.cursor;
        let vas = &self.cursor_va;
        let mut n = 0usize;
        let mut tiles = 0u64;
        let mut live = cursors.len();
        let mut tile_base = (first / TILE_WIDTH) * TILE_WIDTH;
        while live > 0 {
            let tile_end = tile_base + TILE_WIDTH;
            // The next tile some cursor's pending column falls in; refreshed
            // from every cursor that suspends at this tile's edge.
            let mut next_col = usize::MAX;
            tiles += 1;
            for (cur, &va) in cursors.iter_mut().zip(vas) {
                if cur.0 == cur.1 {
                    continue;
                }
                loop {
                    let c = b.col_at(cur.0, cur.2) as usize;
                    if c >= tile_end {
                        next_col = next_col.min(c);
                        break;
                    }
                    let j = c - tile_base;
                    tile[j] += va * b.val_at(cur.0);
                    bits[j >> 6] |= 1u64 << (j & 63);
                    cur.2 = c as u32;
                    cur.0 += 1;
                    if cur.0 == cur.1 {
                        live -= 1;
                        break;
                    }
                }
            }
            // Scan the occupancy words out in column order. Cancelled
            // (exact-zero) sums are skipped and are already the resting
            // 0.0, so only emitted slots need clearing. Only this tile's
            // words — the buffer is sized for the wide mode.
            let nwords = bits.len().min(TILE_WIDTH.div_ceil(64));
            for (w, word) in bits[..nwords].iter_mut().enumerate() {
                let mut m = *word;
                if m == 0 {
                    continue;
                }
                *word = 0;
                let word_base = w << 6;
                while m != 0 {
                    let j = word_base + m.trailing_zeros() as usize;
                    m &= m - 1;
                    let v = tile[j];
                    if v != 0.0 {
                        tile[j] = 0.0;
                        cols_out[n] = (tile_base + j) as u32;
                        vals_out[n] = v;
                        n += 1;
                    }
                }
            }
            if live == 0 {
                break;
            }
            debug_assert_ne!(next_col, usize::MAX);
            tile_base = (next_col / TILE_WIDTH) * TILE_WIDTH;
        }
        (n, tiles)
    }
}

/// Reusable SpGEMM scratch: per-worker accumulators plus the shared
/// per-product arrays (symbolic bounds, prefix sums, flop weights,
/// per-row entry counts, and the delta-encoded operand buffers).
///
/// One arena serves an entire chain of products — `chain::eval` threads
/// it through every join, so a 6-factor commuting build performs one
/// scratch allocation per worker for the whole chain instead of one per
/// product. Buffers only ever grow; an aborted product leaves the arena
/// immediately reusable (worker scratch is restored between rows, and
/// the shared arrays are cleared at the start of each product).
#[derive(Default)]
pub struct SpgemmArena {
    pub(crate) workers: Vec<WorkerScratch>,
    pub(crate) bound: Vec<usize>,
    pub(crate) bound_ptr: Vec<usize>,
    pub(crate) row_flops: Vec<u64>,
    pub(crate) count: Vec<usize>,
    /// Numeric-phase output staging: rows are written at their symbolic
    /// bound offsets here, then compacted into exact-size vectors in
    /// phase 3. Grown to the high-water product size once per chain, so
    /// repeated products skip both the allocation and the zero-fill a
    /// fresh `vec![0; total]` would pay.
    pub(crate) out_cols: Vec<u32>,
    /// Value staging parallel to `out_cols`.
    pub(crate) out_vals: Vec<f64>,
    pub(crate) compact_row_ptr: Vec<u32>,
    pub(crate) compact_delta: Vec<u16>,
    pub(crate) compact_vals: Vec<f64>,
}

impl SpgemmArena {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        SpgemmArena::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_knobs_roundtrip() {
        for p in [
            Accumulator::Dense,
            Accumulator::Sparse,
            Accumulator::Adaptive,
        ] {
            set_accumulator(p);
            assert_eq!(accumulator(), p);
        }
        for m in [CompactMode::Off, CompactMode::On, CompactMode::Auto] {
            set_compact_mode(m);
            assert_eq!(compact_mode(), m);
        }
    }

    #[test]
    fn cutoff_scales_with_width() {
        assert_eq!(sparse_cutoff(0), 64);
        assert_eq!(sparse_cutoff(6400), 100);
        assert!(sparse_cutoff(1 << 20) > 192);
    }

    #[test]
    fn compact_view_decodes_plain_columns() {
        let m = crate::par::tests::sample(17, 23, 42);
        let (mut rp, mut dl, mut vl) = (Vec::new(), Vec::new(), Vec::new());
        let view = compact_into(&m, &mut rp, &mut dl, &mut vl);
        let plain = PlainView::of(&m);
        for k in 0..m.nrows() {
            assert_eq!(view.row_bounds(k), plain.row_bounds(k));
            let (lo, hi) = view.row_bounds(k);
            let mut prev = 0u32;
            for i in lo..hi {
                let c = view.col_at(i, prev);
                assert_eq!(c, plain.col_at(i, 0));
                assert_eq!(view.val_at(i).to_bits(), plain.val_at(i).to_bits());
                prev = c;
            }
        }
    }
}
