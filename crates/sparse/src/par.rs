//! Multi-threaded variants of the hot kernels, built on
//! `std::thread::scope` (no runtime dependency).
//!
//! SimRank's iteration cost is two dense×sparse products per step over an
//! n×n matrix; both parallelize embarrassingly over output rows. The
//! scatter-form `Aᵀ·D` does not chunk safely, so the parallel variant
//! takes the pre-transposed matrix and gathers per output row instead —
//! callers that iterate (SimRank) amortize the one-off transpose.
//! `repsim-bench`'s ablation suite measures the speedups.

use crate::{Csr, Dense};

/// Splits `0..n` into at most `threads` contiguous chunks (public so
/// callers can band their own row sweeps the same way the kernels do).
pub fn chunks(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.clamp(1, n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for i in 0..threads {
        let len = base + usize::from(i < extra);
        if len == 0 {
            continue;
        }
        out.push((start, start + len));
        start += len;
    }
    out
}

/// The `index`-th of `count` contiguous row bands over `0..n`, as a
/// half-open `(lo, hi)` range. Uses the same arithmetic as [`chunks`]
/// (base size `n / count`, the first `n % count` bands one longer) but
/// keeps empty bands: a fleet shard with no rows still exists and must
/// answer with an empty ranking, whereas [`chunks`] silently drops
/// zero-length chunks. Bands for `index = 0..count` are disjoint and
/// cover `0..n` exactly.
///
/// # Panics
/// If `count` is zero or `index >= count`.
pub fn shard_band(n: usize, index: usize, count: usize) -> (usize, usize) {
    assert!(count > 0, "shard count must be positive");
    assert!(index < count, "shard index {index} out of range 0..{count}");
    let base = n / count;
    let extra = n % count;
    let lo = index * base + index.min(extra);
    let hi = lo + base + usize::from(index < extra);
    (lo, hi)
}

/// Splits `0..weights.len()` into at most `threads` contiguous bands of
/// roughly equal total *weight* (for SpGEMM: per-row flop counts from the
/// symbolic pass), so one hub-heavy band no longer serializes the whole
/// product the way equal-row-count [`chunks`] did. Bands close at the
/// first row where the running weight reaches the next `total/threads`
/// boundary; zero-weight tails merge into the last band.
pub fn weighted_chunks(weights: &[u64], threads: usize) -> Vec<(usize, usize)> {
    let n = weights.len();
    let threads = threads.clamp(1, n.max(1));
    let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if threads <= 1 || total == 0 {
        return chunks(n, threads);
    }
    let mut out = Vec::with_capacity(threads);
    let mut start = 0usize;
    let mut acc: u128 = 0;
    for (r, &w) in weights.iter().enumerate() {
        acc += u128::from(w);
        // Close the current band once it reaches its share of the total;
        // the final band always absorbs whatever remains.
        let target = total * (out.len() as u128 + 1) / threads as u128;
        if acc >= target && out.len() < threads - 1 {
            out.push((start, r + 1));
            start = r + 1;
        }
    }
    if start < n {
        out.push((start, n));
    }
    out
}

/// Parallel sparse × sparse multiplication; equals [`crate::ops::spmm`].
///
/// Delegates to the two-phase engine shared with the serial kernel
/// ([`crate::ops::spmm`] is the same call with `threads = 1`), so the two
/// cannot drift: every output row is produced by the identical per-row
/// worker and the results are bit-identical for any thread count.
pub fn spmm_par(a: &Csr, b: &Csr, threads: usize) -> Csr {
    crate::ops::spmm_with_threads(a, b, threads)
}

/// Parallel dense × sparse product; equals [`crate::ops::dense_sparse_mul`].
pub fn dense_sparse_mul_par(d: &Dense, a: &Csr, threads: usize) -> Dense {
    assert_eq!(d.ncols(), a.nrows(), "shape mismatch");
    if threads <= 1 || d.nrows() < 2 {
        return crate::ops::dense_sparse_mul(d, a);
    }
    let nrows = d.nrows();
    let ncols = a.ncols();
    let mut out = Dense::zeros(nrows, ncols);
    let ranges = chunks(nrows, threads);
    // Split the output buffer into disjoint row bands per worker.
    let mut bands: Vec<&mut [f64]> = Vec::with_capacity(ranges.len());
    {
        let mut rest = out.as_mut_slice();
        let mut consumed = 0;
        for &(lo, hi) in &ranges {
            let (band, tail) = rest.split_at_mut((hi - lo) * ncols);
            debug_assert_eq!(lo * ncols, consumed);
            consumed += band.len();
            bands.push(band);
            rest = tail;
        }
    }
    std::thread::scope(|scope| {
        for (&(lo, hi), band) in ranges.iter().zip(bands) {
            scope.spawn(move || {
                for (r, orow) in (lo..hi).zip(band.chunks_mut(ncols)) {
                    let drow = d.row(r);
                    for (k, &dv) in drow.iter().enumerate() {
                        if dv == 0.0 {
                            continue;
                        }
                        let (cols, vals) = a.row(k);
                        for (&c, &av) in cols.iter().zip(vals) {
                            orow[c as usize] += dv * av;
                        }
                    }
                }
            });
        }
    });
    out
}

/// Parallel `Aᵀ·D` in gather form: takes the **pre-transposed** `Aᵀ` and
/// computes `Aᵀ·D` row-band-parallel; equals
/// [`crate::ops::sparse_t_dense_mul`] applied to the original `A`.
pub fn sparse_t_dense_mul_par(at: &Csr, d: &Dense, threads: usize) -> Dense {
    assert_eq!(
        at.ncols(),
        d.nrows(),
        "shape mismatch (expected the transpose)"
    );
    let nrows = at.nrows();
    let ncols = d.ncols();
    let mut out = Dense::zeros(nrows, ncols);
    let ranges = chunks(nrows, threads.max(1));
    let mut bands: Vec<&mut [f64]> = Vec::with_capacity(ranges.len());
    {
        let mut rest = out.as_mut_slice();
        for &(lo, hi) in &ranges {
            let (band, tail) = rest.split_at_mut((hi - lo) * ncols);
            bands.push(band);
            rest = tail;
        }
    }
    std::thread::scope(|scope| {
        for (&(lo, hi), band) in ranges.iter().zip(bands) {
            scope.spawn(move || {
                for (r, orow) in (lo..hi).zip(band.chunks_mut(ncols)) {
                    let (cols, vals) = at.row(r);
                    for (&k, &av) in cols.iter().zip(vals) {
                        let drow = d.row(k as usize);
                        for (o, &dv) in orow.iter_mut().zip(drow) {
                            *o += av * dv;
                        }
                    }
                }
            });
        }
    });
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::ops::{dense_sparse_mul, sparse_t_dense_mul, spmm};

    pub(crate) fn sample(n: usize, m: usize, seed: u64) -> Csr {
        // A deterministic pseudo-random sparse matrix.
        let mut triplets = Vec::new();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for r in 0..n {
            for _ in 0..3 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let c = (state >> 33) as usize % m;
                let v = ((state >> 11) % 7) as f64 + 1.0;
                triplets.push((r as u32, c as u32, v));
            }
        }
        Csr::from_triplets(n, m, triplets)
    }

    #[test]
    fn spmm_par_matches_serial() {
        let a = sample(37, 23, 1);
        let b = sample(23, 19, 2);
        for threads in [1, 2, 4, 8, 64] {
            assert_eq!(spmm_par(&a, &b, threads), spmm(&a, &b), "threads={threads}");
        }
    }

    #[test]
    fn dense_sparse_par_matches_serial() {
        let a = sample(23, 19, 3);
        let d = sample(11, 23, 4).to_dense();
        for threads in [1, 3, 7] {
            assert_eq!(
                dense_sparse_mul_par(&d, &a, threads),
                dense_sparse_mul(&d, &a),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn sparse_t_dense_par_matches_serial() {
        let a = sample(23, 19, 5);
        let at = a.transpose();
        let d = sample(23, 7, 6).to_dense();
        for threads in [1, 2, 5] {
            assert_eq!(
                sparse_t_dense_mul_par(&at, &d, threads),
                sparse_t_dense_mul(&a, &d),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn shard_bands_are_disjoint_and_covering() {
        for n in [0usize, 1, 3, 7, 16, 100] {
            for count in [1usize, 2, 3, 4, 7] {
                let mut next = 0;
                for i in 0..count {
                    let (lo, hi) = shard_band(n, i, count);
                    assert_eq!(lo, next, "contiguous for n={n} count={count}");
                    assert!(hi >= lo, "ordered for n={n} count={count}");
                    next = hi;
                }
                assert_eq!(next, n, "covering for n={n} count={count}");
                // Non-empty bands agree with the chunking the kernels use.
                let nonempty: Vec<(usize, usize)> = (0..count)
                    .map(|i| shard_band(n, i, count))
                    .filter(|(lo, hi)| hi > lo)
                    .collect();
                assert_eq!(nonempty, chunks(n, count), "n={n} count={count}");
            }
        }
    }

    #[test]
    fn weighted_chunking_covers_everything() {
        let cases: Vec<(Vec<u64>, usize)> = vec![
            (vec![1, 1, 1, 1, 1, 1], 3),
            (vec![100, 1, 1, 1, 1, 1], 3),
            (vec![0, 0, 0, 0], 2),
            (vec![], 4),
            (vec![5], 3),
            (vec![1, 2, 3, 4, 5, 6, 7, 8], 4),
            (vec![0, 0, 0, 9], 2),
        ];
        for (w, t) in cases {
            let ranges = weighted_chunks(&w, t);
            let total: usize = ranges.iter().map(|(lo, hi)| hi - lo).sum();
            assert_eq!(total, w.len(), "coverage for {w:?} x{t}");
            assert!(ranges.len() <= t.max(1), "band count for {w:?} x{t}");
            for r in &ranges {
                assert!(r.0 < r.1, "no empty bands for {w:?} x{t}");
            }
            for win in ranges.windows(2) {
                assert_eq!(win[0].1, win[1].0, "contiguous for {w:?} x{t}");
            }
        }
    }

    #[test]
    fn weighted_chunking_isolates_heavy_prefix() {
        // One hub row dominating the flop count gets a band to itself
        // instead of dragging half the matrix with it.
        let mut w = vec![1u64; 16];
        w[0] = 1_000;
        let ranges = weighted_chunks(&w, 4);
        assert_eq!(ranges.first(), Some(&(0, 1)));
    }

    #[test]
    fn chunking_covers_everything() {
        for (n, t) in [(10, 3), (1, 5), (7, 7), (8, 2), (0, 4)] {
            let ranges = chunks(n, t);
            let total: usize = ranges.iter().map(|(lo, hi)| hi - lo).sum();
            assert_eq!(total, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
        }
    }
}
