//! Small dense-vector helpers shared by the iterative algorithms.

/// L1 norm.
pub fn l1_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// L2 norm.
pub fn l2_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Largest absolute element-wise difference between two vectors.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// `y ← alpha·x + y`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales a vector in place so it sums to one (no-op on a zero vector).
pub fn normalize_l1(x: &mut [f64]) {
    let s = l1_norm(x);
    if s != 0.0 {
        for v in x.iter_mut() {
            *v /= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        assert_eq!(l1_norm(&[1.0, -2.0, 3.0]), 6.0);
        assert_eq!(l2_norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn diff_and_axpy() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 5.5]), 1.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn normalize() {
        let mut x = vec![2.0, 2.0];
        normalize_l1(&mut x);
        assert_eq!(x, vec![0.5, 0.5]);
        let mut z = vec![0.0, 0.0];
        normalize_l1(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }
}
