//! Compressed sparse row matrices.

use std::fmt;

/// A violated structural invariant of a [`Csr`] (see the struct docs).
///
/// Produced by [`Csr::validate`] / [`Csr::try_from_parts`]; every variant
/// names the first offending location so diagnostics can point at it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrInvariant {
    /// `row_ptr.len()` is not `nrows + 1`.
    RowPtrLength {
        /// `nrows + 1`.
        expected: usize,
        /// Actual length.
        found: usize,
    },
    /// `row_ptr[0]` is not zero.
    RowPtrStart {
        /// The stored first offset.
        found: usize,
    },
    /// `row_ptr` decreases between two consecutive rows.
    RowPtrNotMonotone {
        /// First row whose extent is negative.
        row: usize,
        /// `row_ptr[row]`.
        lo: usize,
        /// `row_ptr[row + 1]`.
        hi: usize,
    },
    /// `row_ptr[nrows]` does not equal the stored-entry count.
    NnzMismatch {
        /// `row_ptr[nrows]`.
        row_ptr_end: usize,
        /// `col_idx.len()`.
        cols: usize,
        /// `values.len()`.
        values: usize,
    },
    /// A column index is `>= ncols`.
    ColumnOutOfBounds {
        /// Row holding the entry.
        row: usize,
        /// The offending column index.
        col: u32,
        /// The matrix column count.
        ncols: usize,
    },
    /// Within a row, column indices are not strictly increasing (covers
    /// both unsorted and duplicate columns).
    ColumnsNotSorted {
        /// Row holding the offending pair.
        row: usize,
        /// The column that is `<=` its predecessor.
        col: u32,
    },
}

impl fmt::Display for CsrInvariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrInvariant::RowPtrLength { expected, found } => {
                write!(f, "row_ptr has length {found}, expected {expected}")
            }
            CsrInvariant::RowPtrStart { found } => {
                write!(f, "row_ptr starts at {found}, expected 0")
            }
            CsrInvariant::RowPtrNotMonotone { row, lo, hi } => {
                write!(f, "row_ptr decreases at row {row}: {lo} -> {hi}")
            }
            CsrInvariant::NnzMismatch {
                row_ptr_end,
                cols,
                values,
            } => write!(
                f,
                "entry counts disagree: row_ptr ends at {row_ptr_end}, \
                 {cols} columns, {values} values"
            ),
            CsrInvariant::ColumnOutOfBounds { row, col, ncols } => {
                write!(
                    f,
                    "column {col} in row {row} out of bounds for ncols {ncols}"
                )
            }
            CsrInvariant::ColumnsNotSorted { row, col } => {
                write!(
                    f,
                    "columns of row {row} not strictly increasing at column {col}"
                )
            }
        }
    }
}

impl std::error::Error for CsrInvariant {}

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// Invariants maintained by every constructor and operation:
///
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[nrows] == col_idx.len() == values.len()`;
/// * within each row, column indices are strictly increasing;
/// * all column indices are `< ncols`.
///
/// Explicit zeros may appear transiently (e.g. after subtraction); callers
/// that care can drop them with [`Csr::pruned`].
#[derive(Clone, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl fmt::Debug for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Csr({}x{}, nnz={})", self.nrows, self.ncols, self.nnz())
    }
}

impl Csr {
    /// An all-zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Csr {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds a matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed; zero sums are kept out of the
    /// result. Panics if any coordinate is out of bounds.
    ///
    /// ```
    /// use repsim_sparse::Csr;
    ///
    /// let m = Csr::from_triplets(2, 2, vec![(0, 1, 2.0), (0, 1, 3.0), (1, 0, 1.0)]);
    /// assert_eq!(m.get(0, 1), 5.0);
    /// assert_eq!(m.nnz(), 2);
    /// ```
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: impl IntoIterator<Item = (u32, u32, f64)>,
    ) -> Self {
        let mut entries: Vec<(u32, u32, f64)> = triplets.into_iter().collect();
        for &(r, c, _) in &entries {
            assert!(
                (r as usize) < nrows && (c as usize) < ncols,
                "triplet ({r},{c}) out of bounds for {nrows}x{ncols}"
            );
        }
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = vec![0usize; nrows + 1];
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        let mut i = 0;
        while i < entries.len() {
            let (r, c, _) = entries[i];
            let mut sum = 0.0;
            while i < entries.len() && entries[i].0 == r && entries[i].1 == c {
                sum += entries[i].2;
                i += 1;
            }
            if sum != 0.0 {
                col_idx.push(c);
                values.push(sum);
                row_ptr[r as usize + 1] += 1;
            }
        }
        for r in 0..nrows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Csr {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a matrix from per-row `(col, value)` lists.
    ///
    /// Each row's list must have strictly increasing column indices; this is
    /// the cheapest constructor when the caller already has sorted adjacency.
    pub fn from_rows(ncols: usize, rows: &[Vec<(u32, f64)>]) -> Self {
        let nrows = rows.len();
        let nnz: usize = rows.iter().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for row in rows {
            let mut last: Option<u32> = None;
            for &(c, v) in row {
                assert!((c as usize) < ncols, "column {c} out of bounds");
                assert!(
                    last.is_none_or(|l| l < c),
                    "row columns not strictly increasing"
                );
                last = Some(c);
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds a matrix directly from its CSR parts.
    ///
    /// The caller must uphold the type's invariants (see the struct docs);
    /// they are checked in debug builds. This is the zero-copy constructor
    /// used by the two-phase SpGEMM kernel, which sizes the output arrays
    /// in a symbolic pass and writes them in place in the numeric pass.
    pub(crate) fn from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        let m = Csr {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        };
        m.debug_validate();
        m
    }

    /// Builds a matrix from raw CSR parts, checking every structural
    /// invariant first (the fallible twin of the internal zero-copy
    /// constructor). This is the entry point for untrusted CSR data —
    /// e.g. matrices deserialized from disk by `repsim check`.
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self, CsrInvariant> {
        let m = Csr {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        };
        m.validate()?;
        Ok(m)
    }

    /// Checks every structural invariant of the CSR representation (see
    /// the struct docs), returning the first violation found.
    ///
    /// Every constructor and kernel in this crate maintains these
    /// invariants, so on a matrix built through the public API this
    /// always returns `Ok`; it exists as the public hook for property
    /// tests and for validating externally-sourced CSR data. Debug
    /// builds also run it after construction via `debug_assert!`.
    pub fn validate(&self) -> Result<(), CsrInvariant> {
        if self.row_ptr.len() != self.nrows + 1 {
            return Err(CsrInvariant::RowPtrLength {
                expected: self.nrows + 1,
                found: self.row_ptr.len(),
            });
        }
        if self.row_ptr[0] != 0 {
            return Err(CsrInvariant::RowPtrStart {
                found: self.row_ptr[0],
            });
        }
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            if lo > hi {
                return Err(CsrInvariant::RowPtrNotMonotone { row: r, lo, hi });
            }
        }
        if self.row_ptr[self.nrows] != self.col_idx.len() || self.col_idx.len() != self.values.len()
        {
            return Err(CsrInvariant::NnzMismatch {
                row_ptr_end: self.row_ptr[self.nrows],
                cols: self.col_idx.len(),
                values: self.values.len(),
            });
        }
        for r in 0..self.nrows {
            let cols = &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]];
            for (i, &c) in cols.iter().enumerate() {
                if c as usize >= self.ncols {
                    return Err(CsrInvariant::ColumnOutOfBounds {
                        row: r,
                        col: c,
                        ncols: self.ncols,
                    });
                }
                if i > 0 && cols[i - 1] >= c {
                    return Err(CsrInvariant::ColumnsNotSorted { row: r, col: c });
                }
            }
        }
        Ok(())
    }

    /// `debug_assert!` that [`Csr::validate`] passes; a no-op in release
    /// builds. Called at construction sites and after every SpGEMM.
    #[inline]
    pub(crate) fn debug_validate(&self) {
        #[cfg(debug_assertions)]
        if let Err(e) = self.validate() {
            #[allow(clippy::panic)] // the debug-build analogue of debug_assert!
            {
                panic!("CSR invariant violated: {e}");
            }
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (including any explicit zeros).
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The stored entries of row `r` as parallel `(columns, values)` slices.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// The raw CSR arrays `(row_ptr, col_idx, values)` — the kernels'
    /// zero-copy view for operand streaming and compaction.
    pub(crate) fn parts(&self) -> (&[usize], &[u32], &[f64]) {
        (&self.row_ptr, &self.col_idx, &self.values)
    }

    /// The value at `(r, c)`, zero if not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(c as u32)) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// Iterates over all stored `(row, col, value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// The transpose.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for c in 0..self.ncols {
            counts[c + 1] += counts[c];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let slot = next[c as usize];
                next[c as usize] += 1;
                col_idx[slot] = r as u32;
                values[slot] = v;
            }
        }
        let t = Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        };
        t.debug_validate();
        t
    }

    /// The main diagonal as a dense vector of length `min(nrows, ncols)`.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.nrows.min(self.ncols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Returns a copy with the main diagonal zeroed out.
    ///
    /// This is the `M_s - M_s^d` step of R-PathSim (§4.3): it removes, from a
    /// commuting matrix of a same-entity-label segment, the walks that leave
    /// an entity and come straight back to it (the non-informative walks).
    pub fn subtract_diagonal(&self) -> Csr {
        let mut out = self.clone();
        for r in 0..out.nrows.min(out.ncols) {
            let lo = out.row_ptr[r];
            let hi = out.row_ptr[r + 1];
            if let Ok(i) = out.col_idx[lo..hi].binary_search(&(r as u32)) {
                out.values[lo + i] = 0.0;
            }
        }
        out.pruned()
    }

    /// Returns a copy where every non-zero entry becomes `1.0`.
    ///
    /// This is the \*-label collapse of §5.2: the walks between two entities
    /// through a \*-labelled segment count as a single edge, so only the
    /// existence of a connection survives.
    pub fn binarized(&self) -> Csr {
        let mut out = self.pruned();
        for v in &mut out.values {
            *v = 1.0;
        }
        out
    }

    /// Returns a copy with explicit zeros removed.
    pub fn pruned(&self) -> Csr {
        if self.values.iter().all(|&v| v != 0.0) {
            return self.clone();
        }
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Element-wise `self + other`. Panics on shape mismatch.
    pub fn add(&self, other: &Csr) -> Csr {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise `self - other`. Panics on shape mismatch.
    pub fn sub(&self, other: &Csr) -> Csr {
        self.zip_with(other, |a, b| a - b)
    }

    fn zip_with(&self, other: &Csr, f: impl Fn(f64, f64) -> f64) -> Csr {
        assert_eq!(
            (self.nrows, self.ncols),
            (other.nrows, other.ncols),
            "shape mismatch in element-wise op"
        );
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..self.nrows {
            let (ac, av) = self.row(r);
            let (bc, bv) = other.row(r);
            let (mut i, mut j) = (0, 0);
            while i < ac.len() || j < bc.len() {
                let (c, v) = if j >= bc.len() || (i < ac.len() && ac[i] < bc[j]) {
                    let e = (ac[i], f(av[i], 0.0));
                    i += 1;
                    e
                } else if i >= ac.len() || bc[j] < ac[i] {
                    let e = (bc[j], f(0.0, bv[j]));
                    j += 1;
                    e
                } else {
                    let e = (ac[i], f(av[i], bv[j]));
                    i += 1;
                    j += 1;
                    e
                };
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Returns a copy scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Csr {
        let mut out = self.clone();
        for v in &mut out.values {
            *v *= factor;
        }
        out
    }

    /// Per-row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|r| self.row(r).1.iter().sum())
            .collect()
    }

    /// Per-row sums of squared values (used for `M·Mᵀ` diagonals).
    pub fn row_sq_sums(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|r| self.row(r).1.iter().map(|v| v * v).sum())
            .collect()
    }

    /// Returns a copy with each row scaled so it sums to one.
    ///
    /// Rows that sum to zero are left as-is (a dangling node in a random
    /// walk keeps its zero out-distribution).
    pub fn row_normalized(&self) -> Csr {
        let sums = self.row_sums();
        let mut out = self.clone();
        for (r, &s) in sums.iter().enumerate() {
            if s != 0.0 {
                let lo = out.row_ptr[r];
                let hi = out.row_ptr[r + 1];
                for v in &mut out.values[lo..hi] {
                    *v /= s;
                }
            }
        }
        out
    }

    /// The Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Converts to a dense row-major buffer (for tests and small matrices).
    pub fn to_dense(&self) -> crate::Dense {
        let mut d = crate::Dense::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            d[(r, c)] = v;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        Csr::from_triplets(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)],
        )
    }

    #[test]
    fn from_triplets_sums_duplicates() {
        let m = Csr::from_triplets(2, 2, vec![(0, 1, 1.0), (0, 1, 2.5), (1, 0, -1.0)]);
        assert_eq!(m.get(0, 1), 3.5);
        assert_eq!(m.get(1, 0), -1.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn from_triplets_drops_zero_sums() {
        let m = Csr::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, -1.0)]);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_triplets_bounds_checked() {
        let _ = Csr::from_triplets(2, 2, vec![(2, 0, 1.0)]);
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Csr::from_rows(
            3,
            &[vec![(0, 1.0), (2, 2.0)], vec![], vec![(0, 3.0), (1, 4.0)]],
        );
        assert_eq!(m, sample());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_rows_rejects_unsorted() {
        let _ = Csr::from_rows(3, &[vec![(2, 1.0), (0, 2.0)]]);
    }

    #[test]
    fn get_and_row() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
        let (cols, vals) = m.row(2);
        assert_eq!(cols, &[0, 1]);
        assert_eq!(vals, &[3.0, 4.0]);
        assert_eq!(m.row(1).0.len(), 0);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 2), 4.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_rectangular() {
        let m = Csr::from_triplets(2, 4, vec![(0, 3, 1.0), (1, 0, 2.0)]);
        let t = m.transpose();
        assert_eq!((t.nrows(), t.ncols()), (4, 2));
        assert_eq!(t.get(3, 0), 1.0);
        assert_eq!(t.get(0, 1), 2.0);
    }

    #[test]
    fn diagonal_ops() {
        let m = Csr::from_triplets(
            2,
            2,
            vec![(0, 0, 5.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, 7.0)],
        );
        assert_eq!(m.diagonal(), vec![5.0, 7.0]);
        let nd = m.subtract_diagonal();
        assert_eq!(nd.diagonal(), vec![0.0, 0.0]);
        assert_eq!(nd.get(0, 1), 1.0);
        assert_eq!(nd.nnz(), 2, "zeroed diagonal entries are pruned");
    }

    #[test]
    fn binarized_sets_ones() {
        let b = sample().binarized();
        assert_eq!(b.get(0, 2), 1.0);
        assert_eq!(b.get(2, 1), 1.0);
        assert_eq!(b.get(1, 1), 0.0);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = sample();
        let b = Csr::from_triplets(3, 3, vec![(0, 1, 1.0), (2, 0, -3.0)]);
        let s = a.add(&b);
        assert_eq!(s.get(0, 1), 1.0);
        assert_eq!(s.get(2, 0), 0.0);
        assert_eq!(s.sub(&b), a);
    }

    #[test]
    fn identity_is_neutral() {
        let m = sample();
        let i = Csr::identity(3);
        assert_eq!(crate::ops::spmm(&m, &i), m);
        assert_eq!(crate::ops::spmm(&i, &m), m);
    }

    #[test]
    fn row_sums_and_normalization() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 7.0]);
        let n = m.row_normalized();
        assert!((n.row_sums()[0] - 1.0).abs() < 1e-12);
        assert_eq!(n.row_sums()[1], 0.0);
        assert_eq!(m.row_sq_sums(), vec![5.0, 0.0, 25.0]);
    }

    #[test]
    fn scaled_and_frobenius() {
        let m = sample();
        let s = m.scaled(2.0);
        assert_eq!(s.get(0, 2), 4.0);
        assert_eq!(s.get(2, 1), 8.0);
        // ‖M‖_F = √(1+4+9+16) = √30.
        assert!((m.frobenius_norm() - 30f64.sqrt()).abs() < 1e-12);
        assert_eq!(Csr::zeros(3, 3).frobenius_norm(), 0.0);
        assert_eq!(m.scaled(0.0).frobenius_norm(), 0.0, "scaling by zero");
    }

    #[test]
    fn zeros_shape_and_emptiness() {
        let z = Csr::zeros(2, 5);
        assert_eq!((z.nrows(), z.ncols()), (2, 5));
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.row(1).0.len(), 0);
        assert_eq!(crate::ops::spmm(&z, &Csr::zeros(5, 1)).nnz(), 0);
    }

    #[test]
    fn validate_accepts_constructed_matrices() {
        assert_eq!(sample().validate(), Ok(()));
        assert_eq!(Csr::zeros(4, 2).validate(), Ok(()));
        assert_eq!(Csr::identity(5).validate(), Ok(()));
        assert_eq!(sample().transpose().validate(), Ok(()));
    }

    #[test]
    fn try_from_parts_accepts_valid_parts() {
        let m = Csr::try_from_parts(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0])
            .expect("valid parts");
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 3.0);
    }

    #[test]
    fn try_from_parts_pins_each_invariant() {
        // row_ptr wrong length.
        let e = Csr::try_from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).unwrap_err();
        assert_eq!(
            e,
            CsrInvariant::RowPtrLength {
                expected: 3,
                found: 2
            }
        );
        // row_ptr not starting at zero.
        let e = Csr::try_from_parts(1, 2, vec![1, 1], vec![], vec![]).unwrap_err();
        assert_eq!(e, CsrInvariant::RowPtrStart { found: 1 });
        // row_ptr decreasing.
        let e = Csr::try_from_parts(2, 2, vec![0, 2, 1], vec![0], vec![1.0]).unwrap_err();
        assert_eq!(
            e,
            CsrInvariant::RowPtrNotMonotone {
                row: 1,
                lo: 2,
                hi: 1
            }
        );
        // nnz disagreement between row_ptr and the entry arrays.
        let e = Csr::try_from_parts(1, 2, vec![0, 2], vec![0], vec![1.0]).unwrap_err();
        assert_eq!(
            e,
            CsrInvariant::NnzMismatch {
                row_ptr_end: 2,
                cols: 1,
                values: 1
            }
        );
        // Column index out of bounds.
        let e = Csr::try_from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).unwrap_err();
        assert_eq!(
            e,
            CsrInvariant::ColumnOutOfBounds {
                row: 0,
                col: 5,
                ncols: 2
            }
        );
        // Unsorted (and duplicate) columns within a row.
        let e = Csr::try_from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).unwrap_err();
        assert_eq!(e, CsrInvariant::ColumnsNotSorted { row: 0, col: 0 });
        let e = Csr::try_from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).unwrap_err();
        assert_eq!(e, CsrInvariant::ColumnsNotSorted { row: 0, col: 1 });
    }

    #[test]
    fn invariant_display_names_the_location() {
        let e = Csr::try_from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).unwrap_err();
        assert_eq!(e.to_string(), "column 5 in row 0 out of bounds for ncols 2");
        let e = Csr::try_from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).unwrap_err();
        assert!(e.to_string().contains("not strictly increasing"));
    }

    #[test]
    fn iter_visits_all() {
        let entries: Vec<_> = sample().iter().collect();
        assert_eq!(
            entries,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }
}
