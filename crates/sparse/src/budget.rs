//! Resource-governed execution: budgets, structured errors, failpoints.
//!
//! A production similarity-search service cannot let one query run an
//! unbounded SpGEMM chain: every kernel in this crate therefore accepts a
//! [`Budget`] — a wall-clock deadline, an output-size cap, and a
//! cooperative cancellation flag — and reports exhaustion through the
//! [`ExecError`] taxonomy instead of panicking. Budgets are checked at
//! row-band granularity inside the kernels (see [`crate::ops`]), so a
//! cancelled or over-deadline multiplication aborts within one band
//! sweep rather than running to completion.
//!
//! Defaults mirror the thread-budget precedence from
//! [`crate::Parallelism`]: a process-wide override installed by the CLI's
//! `--deadline-ms` / `--max-nnz` flags wins, then the `REPSIM_DEADLINE_MS`
//! / `REPSIM_MAX_NNZ` environment variables, then unlimited.
//!
//! The [`failpoints`] module is the fault-injection harness: named
//! abort sites (`spgemm-cancel`, `alloc-fail`, `deadline-now`) that are
//! zero-cost unless armed via the `REPSIM_FAILPOINTS` environment
//! variable or a scoped test guard — and even then only fire on budgets
//! that opted in with [`Budget::with_fault_injection`], so an armed
//! process still runs its unbudgeted work normally.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Errors from budgeted (fallible) execution paths.
///
/// The infallible wrappers (`spmm`, `matvec`, …) keep their historical
/// panicking behaviour by unwrapping these; the `try_*` APIs surface them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The wall-clock deadline passed before the computation finished.
    DeadlineExceeded {
        /// The configured limit in milliseconds (0 when injected by a
        /// failpoint rather than a real deadline).
        limit_ms: u64,
    },
    /// An output or intermediate would exceed the stored-entry cap.
    MemoryExceeded {
        /// Entries the computation needed to allocate.
        nnz: usize,
        /// The configured cap (0 when injected by a failpoint).
        limit: usize,
    },
    /// The cooperative cancellation flag was raised.
    Cancelled,
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// The operation name (`"spmm"`, `"matvec"`, …).
        op: &'static str,
        /// `(rows, cols)` of the left operand.
        lhs: (usize, usize),
        /// `(rows, cols)` of the right operand (vectors report `(len, 1)`).
        rhs: (usize, usize),
    },
    /// A structural precondition on the inputs (other than shape
    /// agreement) does not hold — e.g. an empty multiplication chain or
    /// a \*-label where a plain meta-walk is required.
    InvalidInput {
        /// The operation name (`"spmm_chain"`, `"commuting"`, …).
        op: &'static str,
        /// What was wrong with the input.
        message: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::DeadlineExceeded { limit_ms } => {
                write!(f, "deadline exceeded ({limit_ms} ms)")
            }
            ExecError::MemoryExceeded { nnz, limit } => {
                write!(
                    f,
                    "memory budget exceeded ({nnz} entries needed, cap {limit})"
                )
            }
            ExecError::Cancelled => write!(f, "cancelled"),
            ExecError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "{op} shape mismatch: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            ExecError::InvalidInput { op, message } => write!(f, "{op}: {message}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl ExecError {
    /// Whether the error is resource exhaustion (and a cheaper execution
    /// tier might still answer), as opposed to cancellation or misuse.
    pub fn is_exhaustion(&self) -> bool {
        matches!(
            self,
            ExecError::DeadlineExceeded { .. } | ExecError::MemoryExceeded { .. }
        )
    }
}

/// `--deadline-ms` override; 0 means "not set".
static GLOBAL_DEADLINE_MS: AtomicU64 = AtomicU64::new(0);
/// `--max-nnz` override; 0 means "not set".
static GLOBAL_MAX_NNZ: AtomicUsize = AtomicUsize::new(0);

fn env_limit<T: std::str::FromStr + PartialOrd + Default>(var: &str) -> Option<T> {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<T>().ok())
        .filter(|n| *n > T::default())
}

/// A per-computation resource budget.
///
/// Cheap to clone (an `Option<Instant>`, two integers, and an optional
/// `Arc`), so callers hand copies down to worker threads freely. The
/// default is [`Budget::from_env`].
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    /// The original limit, kept for error reporting.
    deadline_ms: u64,
    max_nnz: Option<usize>,
    cancel: Option<Arc<AtomicBool>>,
    /// Whether armed [`failpoints`] may fire on this budget's checks.
    inject: bool,
}

impl Budget {
    /// No deadline, no size cap, no cancellation: checks never fail.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// The process default: CLI overrides ([`Budget::set_global_deadline_ms`]
    /// / [`Budget::set_global_max_nnz`]) first, then the `REPSIM_DEADLINE_MS`
    /// and `REPSIM_MAX_NNZ` environment variables, then unlimited.
    /// Unparsable or zero values fall through to the next source. The
    /// deadline clock starts at this call.
    pub fn from_env() -> Budget {
        static ENV_DEADLINE: OnceLock<Option<u64>> = OnceLock::new();
        static ENV_MAX_NNZ: OnceLock<Option<usize>> = OnceLock::new();
        let deadline_ms = match GLOBAL_DEADLINE_MS.load(Ordering::Relaxed) {
            0 => *ENV_DEADLINE.get_or_init(|| env_limit::<u64>("REPSIM_DEADLINE_MS")),
            n => Some(n),
        };
        let max_nnz = match GLOBAL_MAX_NNZ.load(Ordering::Relaxed) {
            0 => *ENV_MAX_NNZ.get_or_init(|| env_limit::<usize>("REPSIM_MAX_NNZ")),
            n => Some(n),
        };
        let mut b = Budget::unlimited();
        if let Some(ms) = deadline_ms {
            b = b.with_deadline_ms(ms);
        }
        if let Some(cap) = max_nnz {
            b = b.with_max_nnz(cap);
        }
        b
    }

    /// Installs a process-wide deadline override (the CLI's
    /// `--deadline-ms` flag), taking precedence over the environment.
    pub fn set_global_deadline_ms(ms: u64) {
        GLOBAL_DEADLINE_MS.store(ms, Ordering::Relaxed);
    }

    /// Installs a process-wide output-size cap override (the CLI's
    /// `--max-nnz` flag), taking precedence over the environment.
    pub fn set_global_max_nnz(cap: usize) {
        GLOBAL_MAX_NNZ.store(cap, Ordering::Relaxed);
    }

    /// Caps wall-clock time at `ms` milliseconds from now.
    pub fn with_deadline_ms(mut self, ms: u64) -> Budget {
        self.deadline = Some(Instant::now() + Duration::from_millis(ms));
        self.deadline_ms = ms;
        self
    }

    /// Caps any single allocation of output/intermediate entries at `cap`.
    pub fn with_max_nnz(mut self, cap: usize) -> Budget {
        self.max_nnz = Some(cap);
        self
    }

    /// Attaches a cooperative cancellation flag; raising it makes the next
    /// check fail with [`ExecError::Cancelled`].
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Budget {
        self.cancel = Some(flag);
        self
    }

    /// Opts this budget into armed [`failpoints`]. Fault injection never
    /// fires on budgets that did not opt in, so arming a whole process
    /// (`REPSIM_FAILPOINTS=…`) only perturbs computations that asked.
    pub fn with_fault_injection(mut self) -> Budget {
        self.inject = true;
        self
    }

    /// A copy with fault injection disabled — used by degradation tiers so
    /// the harness can force the *primary* path to fail while the
    /// fallback path runs for real.
    pub fn without_fault_injection(&self) -> Budget {
        let mut b = self.clone();
        b.inject = false;
        b
    }

    /// Whether no limit, flag, or injection is attached (checks are
    /// then constant and can never fail).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_nnz.is_none() && self.cancel.is_none() && !self.inject
    }

    /// The stored-entry cap, if any.
    pub fn max_nnz(&self) -> Option<usize> {
        self.max_nnz
    }

    /// Time left before the deadline (None when no deadline is set).
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether the cancellation flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// Whether the named failpoint should fire for this budget. A firing
    /// failpoint is reported to the trace stream
    /// (`repsim.sparse.failpoint`) so fault-injection runs show *where*
    /// the fault was injected.
    pub fn injected(&self, point: &str) -> bool {
        let fires = self.inject && failpoints::armed(point);
        if fires && repsim_obs::enabled() {
            repsim_obs::point(
                "repsim.sparse.failpoint",
                repsim_obs::Level::Warn,
                point.to_owned(),
            );
        }
        fires
    }

    /// Reports a failed budget check to the trace stream
    /// (`repsim.sparse.budget.trip`), so traces show where execution was
    /// cut short.
    fn trip(e: ExecError) -> ExecError {
        if repsim_obs::enabled() {
            repsim_obs::point(
                "repsim.sparse.budget.trip",
                repsim_obs::Level::Warn,
                e.to_string(),
            );
        }
        e
    }

    /// The cancellation/deadline check, called at row-band granularity
    /// inside the kernels. The `deadline-now` failpoint forces expiry here.
    /// Failures are reported to the trace stream as
    /// `repsim.sparse.budget.trip` point events.
    pub fn check(&self) -> Result<(), ExecError> {
        if self.injected(failpoints::DEADLINE_NOW) {
            return Err(Self::trip(ExecError::DeadlineExceeded {
                limit_ms: self.deadline_ms,
            }));
        }
        if self.is_cancelled() {
            return Err(Self::trip(ExecError::Cancelled));
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(Self::trip(ExecError::DeadlineExceeded {
                    limit_ms: self.deadline_ms,
                }));
            }
        }
        Ok(())
    }

    /// The allocation check, called before sizing output arrays. The
    /// `alloc-fail` failpoint forces failure here. Failures are reported
    /// to the trace stream as `repsim.sparse.budget.trip` point events.
    pub fn check_alloc(&self, nnz: usize) -> Result<(), ExecError> {
        if self.injected(failpoints::ALLOC_FAIL) {
            return Err(Self::trip(ExecError::MemoryExceeded { nnz, limit: 0 }));
        }
        match self.max_nnz {
            Some(cap) if nnz > cap => {
                Err(Self::trip(ExecError::MemoryExceeded { nnz, limit: cap }))
            }
            _ => Ok(()),
        }
    }
}

/// Named abort sites for fault injection.
///
/// A failpoint fires when (a) it is *armed* — listed in the
/// `REPSIM_FAILPOINTS` environment variable (comma-separated) or in a live
/// [`scoped`] guard — and (b) the executing [`Budget`] opted in with
/// [`Budget::with_fault_injection`]. The un-armed fast path is one relaxed
/// atomic load.
pub mod failpoints {
    use super::*;

    /// Forces [`ExecError::Cancelled`] at the start of every SpGEMM band
    /// and between chain joins.
    pub const SPGEMM_CANCEL: &str = "spgemm-cancel";
    /// Forces [`ExecError::Cancelled`] at the first in-band checkpoint of
    /// the SpGEMM *numeric* phase — after the symbolic pass has sized the
    /// output and accumulator tiles are in flight — exercising the
    /// mid-tile abort path (no partial matrix, no poisoned caches).
    pub const SPGEMM_NUMERIC_CANCEL: &str = "spgemm-numeric-cancel";
    /// Forces [`ExecError::MemoryExceeded`] where SpGEMM sizes its output.
    pub const ALLOC_FAIL: &str = "alloc-fail";
    /// Forces [`ExecError::DeadlineExceeded`] at the next budget check.
    pub const DEADLINE_NOW: &str = "deadline-now";
    /// Makes snapshot persistence fail mid-write (after the temp file has
    /// partial contents, before the atomic rename), exercising the
    /// crash-during-save recovery path in `repsim-serve`.
    pub const SNAPSHOT_WRITE: &str = "snapshot.write";
    /// Makes snapshot persistence flip a byte in the payload before the
    /// checksum is stamped, so the next load sees a checksum mismatch and
    /// must quarantine-and-rebuild.
    pub const SNAPSHOT_CORRUPT: &str = "snapshot.corrupt";
    /// Stalls a serve worker mid-request, backing up the bounded queue so
    /// admission control (shedding, breaker) can be driven in tests.
    pub const SERVE_SLOW_WORKER: &str = "serve.slow_worker";
    /// Makes a write-ahead-log append fail before any bytes reach the
    /// file: the mutation is rejected cleanly and the log is unchanged.
    pub const WAL_APPEND: &str = "wal.append";
    /// Makes a write-ahead-log append write only a prefix of the record
    /// and then fail, simulating a crash mid-append; recovery must detect
    /// the torn tail and truncate it.
    pub const WAL_TORN_TAIL: &str = "wal.torn_tail";
    /// Makes the incremental commuting-matrix delta path report failure,
    /// forcing the caller onto its rebuild/evict fallback.
    pub const DELTA_APPLY: &str = "delta.apply";

    /// 0 = uninitialized, 1 = known off, 2 = possibly armed.
    static STATE: AtomicU8 = AtomicU8::new(0);
    static SCOPED: Mutex<Vec<String>> = Mutex::new(Vec::new());
    /// Serializes tests that arm failpoints programmatically.
    static SCOPE_LOCK: Mutex<()> = Mutex::new(());

    fn env_points() -> &'static Vec<String> {
        static POINTS: OnceLock<Vec<String>> = OnceLock::new();
        POINTS.get_or_init(|| {
            std::env::var("REPSIM_FAILPOINTS")
                .map(|v| {
                    v.split(',')
                        .map(str::trim)
                        .filter(|p| !p.is_empty())
                        .map(str::to_owned)
                        .collect()
                })
                .unwrap_or_default()
        })
    }

    fn lock_scoped() -> MutexGuard<'static, Vec<String>> {
        SCOPED.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether the named failpoint is currently armed (by environment or a
    /// live scoped guard). Zero-cost when nothing was ever armed.
    pub fn armed(point: &str) -> bool {
        match STATE.load(Ordering::Relaxed) {
            1 => false,
            2 => {
                env_points().iter().any(|p| p == point) || lock_scoped().iter().any(|p| p == point)
            }
            _ => {
                let armed_env = !env_points().is_empty();
                STATE.store(if armed_env { 2 } else { 1 }, Ordering::Relaxed);
                armed_env && env_points().iter().any(|p| p == point)
            }
        }
    }

    /// Whether any failpoint is armed via the environment.
    pub fn env_armed() -> bool {
        !env_points().is_empty()
    }

    /// Arms `points` until the returned guard drops. Guards serialize on a
    /// global lock so concurrently running tests cannot interleave
    /// injections; the armed set reverts (to the environment set, if any)
    /// on drop.
    pub fn scoped(points: &[&str]) -> ScopedFailpoints {
        let lock = SCOPE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        *lock_scoped() = points.iter().map(|p| (*p).to_owned()).collect();
        STATE.store(2, Ordering::Relaxed);
        ScopedFailpoints { _lock: lock }
    }

    /// RAII guard from [`scoped`]; disarms its failpoints on drop.
    pub struct ScopedFailpoints {
        _lock: MutexGuard<'static, ()>,
    }

    impl Drop for ScopedFailpoints {
        fn drop(&mut self) {
            lock_scoped().clear();
            STATE.store(if env_armed() { 2 } else { 1 }, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.check().is_ok());
        assert!(b.check_alloc(usize::MAX).is_ok());
    }

    #[test]
    fn expired_deadline_fails_check() {
        let b = Budget::unlimited().with_deadline_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(b.check(), Err(ExecError::DeadlineExceeded { limit_ms: 0 }));
        let generous = Budget::unlimited().with_deadline_ms(60_000);
        assert!(generous.check().is_ok());
        assert!(generous.remaining_time().unwrap() > Duration::from_secs(1));
    }

    #[test]
    fn nnz_cap_fails_alloc_check() {
        let b = Budget::unlimited().with_max_nnz(10);
        assert!(b.check_alloc(10).is_ok());
        assert_eq!(
            b.check_alloc(11),
            Err(ExecError::MemoryExceeded { nnz: 11, limit: 10 })
        );
    }

    #[test]
    fn cancellation_flag_is_cooperative() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = Budget::unlimited().with_cancel(flag.clone());
        assert!(b.check().is_ok());
        flag.store(true, Ordering::Relaxed);
        assert_eq!(b.check(), Err(ExecError::Cancelled));
        assert!(b.is_cancelled());
    }

    #[test]
    fn scoped_failpoints_fire_only_on_injectable_budgets() {
        let plain = Budget::unlimited();
        let inject = Budget::unlimited().with_fault_injection();
        {
            let _guard = failpoints::scoped(&[failpoints::DEADLINE_NOW, failpoints::ALLOC_FAIL]);
            assert!(plain.check().is_ok(), "non-injectable budgets are immune");
            assert!(matches!(
                inject.check(),
                Err(ExecError::DeadlineExceeded { .. })
            ));
            assert!(matches!(
                inject.check_alloc(1),
                Err(ExecError::MemoryExceeded { .. })
            ));
            assert!(inject.injected(failpoints::ALLOC_FAIL));
        }
        // Disarmed on drop (unless the environment armed them for the
        // whole process — the CI fault-injection job does exactly that).
        if !failpoints::env_armed() {
            assert!(inject.check().is_ok());
            assert!(inject.check_alloc(1).is_ok());
        }
    }

    #[test]
    fn error_display_is_informative() {
        assert_eq!(
            ExecError::DeadlineExceeded { limit_ms: 50 }.to_string(),
            "deadline exceeded (50 ms)"
        );
        assert_eq!(
            ExecError::MemoryExceeded { nnz: 12, limit: 10 }.to_string(),
            "memory budget exceeded (12 entries needed, cap 10)"
        );
        assert_eq!(ExecError::Cancelled.to_string(), "cancelled");
        let s = ExecError::ShapeMismatch {
            op: "spmm",
            lhs: (2, 3),
            rhs: (4, 5),
        }
        .to_string();
        assert_eq!(s, "spmm shape mismatch: 2x3 vs 4x5");
        assert!(!ExecError::Cancelled.is_exhaustion());
        assert!(ExecError::DeadlineExceeded { limit_ms: 1 }.is_exhaustion());
    }
}
