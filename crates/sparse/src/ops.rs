//! Matrix-matrix and matrix-vector kernels.
//!
//! Every kernel comes in two flavours: the historical infallible form
//! (`spmm`, `matvec`, …) that panics on shape mismatch and ignores
//! resource limits, and a fallible `try_*` form returning
//! [`ExecError`] that also honours a [`Budget`] — checked at row-band
//! granularity in both the symbolic and numeric SpGEMM phases, so a
//! cancelled or over-deadline product aborts mid-sweep. The infallible
//! wrappers delegate to the fallible ones with an unlimited budget.

use crate::accum::{
    accumulator, compact_into, compact_mode, sparse_cutoff, Accumulator, CompactMode, NumericTally,
    Operand, PlainView, SpgemmArena, WorkerScratch,
};
use crate::budget::{failpoints, Budget, ExecError};
use crate::compact::CsrCompact;
use crate::par::weighted_chunks;
use crate::{Csr, Dense};
use repsim_obs::{CounterHandle, HistogramHandle};

/// Kernel metrics (`repsim.sparse.spgemm.*`): call/phase counters, log₂
/// histograms of phase latencies and output sizes, and the adaptive
/// accumulator's per-row policy tallies. All no-ops until a sink is
/// installed (see [`repsim_obs::enabled`]).
static SPGEMM_CALLS: CounterHandle = CounterHandle::new("repsim.sparse.spgemm.calls");
static SPGEMM_SYMBOLIC_NS: HistogramHandle =
    HistogramHandle::new("repsim.sparse.spgemm.symbolic_ns");
static SPGEMM_NUMERIC_NS: HistogramHandle = HistogramHandle::new("repsim.sparse.spgemm.numeric_ns");
static SPGEMM_OUT_NNZ: HistogramHandle = HistogramHandle::new("repsim.sparse.spgemm.out_nnz");
static SPGEMM_FLOPS: HistogramHandle = HistogramHandle::new("repsim.sparse.spgemm.flops");
static SPGEMM_DENSE_ROWS: CounterHandle =
    CounterHandle::new("repsim.sparse.spgemm.numeric.dense_rows");
static SPGEMM_SPARSE_ROWS: CounterHandle =
    CounterHandle::new("repsim.sparse.spgemm.numeric.sparse_rows");
static SPGEMM_TILE_COUNT: CounterHandle =
    CounterHandle::new("repsim.sparse.spgemm.numeric.tile_count");

/// How many rows a band worker processes between budget checks. Checks
/// cost one `Instant::now` plus two atomic loads — negligible at this
/// granularity, yet an expired deadline aborts within ~a thousand rows.
const ROWS_PER_CHECK: usize = 1024;

/// Sparse × sparse multiplication (`A · B`).
///
/// Two-phase row-by-row Gustavson algorithm: a symbolic pass sizes each
/// output row (distinct touched columns), then a numeric pass writes
/// sorted columns and values straight into the pre-allocated CSR arrays.
/// Output rows carry sorted column indices and no explicit zeros (an
/// exact-zero sum of products is dropped during the numeric pass).
pub fn spmm(a: &Csr, b: &Csr) -> Csr {
    spmm_with_threads(a, b, 1)
}

/// Fallible [`spmm`]: shape errors are returned, not panicked.
pub fn try_spmm(a: &Csr, b: &Csr) -> Result<Csr, ExecError> {
    try_spmm_with_budget(a, b, 1, &Budget::unlimited())
}

/// [`spmm`] over row bands on up to `threads` worker threads.
///
/// Serial and parallel runs share [`RowWorkspace`]'s per-row kernel, so
/// each output row is accumulated in the same order regardless of the
/// thread count and the results are bit-identical.
pub(crate) fn spmm_with_threads(a: &Csr, b: &Csr, threads: usize) -> Csr {
    match try_spmm_with_budget(a, b, threads, &Budget::unlimited()) {
        Ok(c) => c,
        #[allow(clippy::panic)] // documented infallible wrapper over the try_ API
        Err(e) => panic!("spmm shape mismatch: {e} ({a:?} x {b:?})"),
    }
}

/// Budget-governed [`spmm`]: the budget is checked at the start of every
/// row band and every [`ROWS_PER_CHECK`] rows within a band, in both the
/// symbolic and numeric phases; the output allocation (sized by the
/// symbolic phase) is checked against the budget's nnz cap. On any
/// failure every band stops at its next checkpoint and the first error is
/// returned — no partial matrix escapes.
///
/// Allocates a fresh [`SpgemmArena`] per call; chains of products should
/// use [`try_spmm_with_budget_in`] to reuse one arena throughout.
pub fn try_spmm_with_budget(
    a: &Csr,
    b: &Csr,
    threads: usize,
    budget: &Budget,
) -> Result<Csr, ExecError> {
    let mut arena = SpgemmArena::new();
    try_spmm_with_budget_in(a, b, threads, budget, &mut arena)
}

/// [`try_spmm_with_budget`] with caller-provided scratch.
///
/// The arena holds every transient the product needs — per-worker
/// accumulators, symbolic bounds, flop weights, and the delta-encoded
/// operand buffers — so a chain of joins driven through one arena
/// performs one scratch allocation per worker for the whole chain. The
/// adaptive accumulator policy, flop-balanced banding, and automatic
/// operand compaction all happen here; output is bit-identical for every
/// policy, thread count, and representation (see [`crate::accum`]).
pub fn try_spmm_with_budget_in(
    a: &Csr,
    b: &Csr,
    threads: usize,
    budget: &Budget,
    arena: &mut SpgemmArena,
) -> Result<Csr, ExecError> {
    if a.ncols() != b.nrows() {
        return Err(ExecError::ShapeMismatch {
            op: "spmm",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    if budget.injected(failpoints::SPGEMM_CANCEL) {
        return Err(ExecError::Cancelled);
    }
    budget.check()?;
    let nrows = a.nrows();
    let ncols = b.ncols();
    let SpgemmArena {
        workers,
        bound,
        bound_ptr,
        row_flops,
        count,
        out_cols,
        out_vals,
        compact_row_ptr,
        compact_delta,
        compact_vals,
    } = arena;

    // Exact per-row Gustavson flop counts (one b-row scan per stored
    // a-entry). These drive the flop-balanced bands, the adaptive
    // symbolic-phase policy, and the compaction decision, so they are
    // always computed — the sweep is two pointer arrays, far cheaper than
    // either phase it steers.
    let (a_ptr, a_cols, _) = a.parts();
    let (b_ptr, _, _) = b.parts();
    row_flops.clear();
    row_flops.reserve(nrows);
    let mut flops_total = 0u64;
    // audit:allow(RA0101, pointer-array flop sweep — strictly cheaper than the phases it steers)
    for w in a_ptr.windows(2) {
        let mut f = 0u64;
        // audit:allow(RA0101, inner half of the same bounded pointer sweep)
        for &k in &a_cols[w[0]..w[1]] {
            let k = k as usize;
            f += (b_ptr[k + 1] - b_ptr[k]) as u64;
        }
        flops_total += f;
        row_flops.push(f);
    }

    // Thread spawn/join costs ~10µs per worker; for tiny products one band
    // (run inline, no spawn) is faster than any parallel split.
    let threads = if a.nnz().max(b.nnz()) < 4096 {
        1
    } else {
        threads.max(1)
    };
    let bands = weighted_chunks(row_flops, threads);
    if workers.len() < bands.len() {
        workers.resize_with(bands.len(), WorkerScratch::new);
    }
    let workers = &mut workers[..bands.len()];
    // audit:allow(RA0101, one prepare per worker band — bounded by thread count)
    for w in workers.iter_mut() {
        w.prepare(ncols);
    }

    // Stream the right operand delta-encoded when the shape permits and
    // the flop volume amortizes the conversion pass (or the process-wide
    // mode forces it). Only `b` is compacted: each of its rows is
    // re-scanned once per referencing a-entry, while `a` is read once.
    let eligible = CsrCompact::eligible(ncols, b.nnz());
    let use_compact = match compact_mode() {
        CompactMode::Off => false,
        CompactMode::On => eligible,
        CompactMode::Auto => {
            eligible && flops_total as f64 >= crate::accum::COMPACT_MIN_REUSE * b.nnz() as f64
        }
    };

    SPGEMM_CALLS.add(1);
    let mut kernel_span = repsim_obs::span("repsim.sparse.spgemm");
    if kernel_span.is_active() {
        kernel_span.attr("rows", nrows);
        kernel_span.attr("cols", ncols);
        kernel_span.attr("nnz_a", a.nnz());
        kernel_span.attr("nnz_b", b.nnz());
        kernel_span.attr("bands", bands.len());
        kernel_span.attr("compact_b", usize::from(use_compact));
        // The chain planner's cost model for this pair, reported next to
        // the measured Gustavson flops so estimate quality is auditable.
        let est = crate::chain::estimate_chain_nnz(&[
            crate::chain::ChainStats::of(a),
            crate::chain::ChainStats::of(b),
        ]);
        kernel_span.attr("est_nnz", est);
        kernel_span.attr("flops", flops_total);
        SPGEMM_FLOPS.record(flops_total);
    }

    let scratch = PhaseScratch {
        workers,
        bound,
        bound_ptr,
        count,
        out_cols,
        out_vals,
    };
    let (out, tally) = if use_compact {
        let view = compact_into(b, compact_row_ptr, compact_delta, compact_vals);
        spgemm_phases(a, view, ncols, &bands, row_flops, budget, scratch)?
    } else {
        spgemm_phases(
            a,
            PlainView::of(b),
            ncols,
            &bands,
            row_flops,
            budget,
            scratch,
        )?
    };

    SPGEMM_DENSE_ROWS.add(tally.dense_rows);
    SPGEMM_SPARSE_ROWS.add(tally.sparse_rows);
    SPGEMM_TILE_COUNT.add(tally.tile_count);
    if kernel_span.is_active() {
        kernel_span.attr("out_nnz", out.nnz());
        kernel_span.attr("dense_rows", tally.dense_rows);
        kernel_span.attr("sparse_rows", tally.sparse_rows);
        kernel_span.attr("tile_count", tally.tile_count);
        SPGEMM_OUT_NNZ.record(out.nnz() as u64);
    }
    Ok(out)
}

/// The shared per-product scratch slices [`spgemm_phases`] fills, carved
/// out of a [`SpgemmArena`] by the caller.
struct PhaseScratch<'a> {
    workers: &'a mut [WorkerScratch],
    bound: &'a mut Vec<usize>,
    bound_ptr: &'a mut Vec<usize>,
    count: &'a mut Vec<usize>,
    out_cols: &'a mut Vec<u32>,
    out_vals: &'a mut Vec<f64>,
}

/// The two-phase Gustavson engine, monomorphized over the right operand's
/// representation (plain or delta-encoded CSR). Each band's rows run
/// through the symbolic then numeric pass with the per-row accumulator
/// chosen by the process-wide [`Accumulator`] policy; output rows are
/// bit-identical under every choice because every path accumulates each
/// column's products in ascending-`k` order (see [`crate::accum`]).
fn spgemm_phases<B: Operand>(
    a: &Csr,
    b: B,
    ncols: usize,
    bands: &[(usize, usize)],
    row_flops: &[u64],
    budget: &Budget,
    scratch: PhaseScratch<'_>,
) -> Result<(Csr, NumericTally), ExecError> {
    let nrows = a.nrows();
    let stop = std::sync::atomic::AtomicBool::new(false);
    let policy = accumulator();
    // The hash path's empty-slot sentinel is u32::MAX; a matrix wide
    // enough to use that as a real column index must stay dense.
    let sparse_ok = ncols <= u32::MAX as usize;
    let cutoff = sparse_cutoff(ncols);

    // Phase 1 — symbolic: per-row nnz upper bounds (distinct columns;
    // exact-zero cancellation can only shrink them). Rows whose flop
    // count is small go through the hash counter, hub rows through the
    // bitmap; flops bound distinct columns from above, so the choice is
    // conservative and free.
    let symbolic_t0 = if repsim_obs::enabled() {
        repsim_obs::now_ns()
    } else {
        0
    };
    let symbolic_span = repsim_obs::span("repsim.sparse.spgemm.symbolic");
    scratch.bound.clear();
    scratch.bound.resize(nrows, 0);
    let mut errs: Vec<Option<ExecError>> = vec![None; bands.len()];
    {
        let mut rest = scratch.bound.as_mut_slice();
        let mut err_rest = errs.as_mut_slice();
        let mut work_rest: &mut [WorkerScratch] = &mut *scratch.workers;
        run_bands(bands, |&(lo, hi)| {
            let (band, tail) = std::mem::take(&mut rest).split_at_mut(hi - lo);
            rest = tail;
            let (err, etail) = std::mem::take(&mut err_rest).split_at_mut(1);
            err_rest = etail;
            let (w, wtail) = std::mem::take(&mut work_rest).split_at_mut(1);
            work_rest = wtail;
            let stop = &stop;
            move || {
                let ws = &mut w[0];
                for (i, (r, slot)) in (lo..hi).zip(band.iter_mut()).enumerate() {
                    if i % ROWS_PER_CHECK == 0 {
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            return;
                        }
                        if let Err(e) = budget.check() {
                            err[0] = Some(e);
                            stop.store(true, std::sync::atomic::Ordering::Relaxed);
                            return;
                        }
                    }
                    let (acols, _) = a.row(r);
                    let go_sparse = sparse_ok
                        && match policy {
                            Accumulator::Sparse => true,
                            Accumulator::Dense => false,
                            Accumulator::Adaptive => row_flops[r] <= cutoff as u64,
                        };
                    *slot = if go_sparse {
                        ws.symbolic_row_sparse(acols, &b, row_flops[r] as usize)
                    } else {
                        ws.symbolic_row_dense(acols, &b)
                    };
                }
            }
        });
    }
    drop(symbolic_span);
    if repsim_obs::enabled() {
        SPGEMM_SYMBOLIC_NS.record(repsim_obs::now_ns().saturating_sub(symbolic_t0));
    }
    if let Some(e) = errs.iter_mut().find_map(Option::take) {
        return Err(e);
    }
    scratch.bound_ptr.clear();
    scratch.bound_ptr.reserve(nrows + 1);
    let mut total = 0usize;
    scratch.bound_ptr.push(0);
    // audit:allow(RA0101, prefix sum feeding the check_alloc admission right below)
    for &n in scratch.bound.iter() {
        total += n;
        scratch.bound_ptr.push(total);
    }
    let bound_ptr: &[usize] = scratch.bound_ptr;
    // The symbolic phase sized the output exactly (up to cancellation):
    // this is the allocation the memory budget caps.
    budget.check_alloc(total)?;

    // Phase 2 — numeric: write each row's entries at its bounded offset;
    // record the actual count (cancellation may fall short of the bound).
    // The accumulator is chosen per row from the now-exact bound: at most
    // `cutoff` distinct columns fits a few-KiB hash table; anything
    // larger sweeps the L1-resident column tile.
    let numeric_t0 = if repsim_obs::enabled() {
        repsim_obs::now_ns()
    } else {
        0
    };
    let numeric_span = repsim_obs::span("repsim.sparse.spgemm.numeric");
    // Stage rows at their bound offsets in the arena buffers — grown to
    // the chain's high-water size once, then reused without the zero-fill
    // a fresh allocation would pay. Phase 3 copies the exact entries out.
    if scratch.out_cols.len() < total {
        scratch.out_cols.resize(total, 0);
    }
    if scratch.out_vals.len() < total {
        scratch.out_vals.resize(total, 0.0);
    }
    scratch.count.clear();
    scratch.count.resize(nrows, 0);
    let mut tallies = vec![NumericTally::default(); bands.len()];
    {
        let mut col_rest = &mut scratch.out_cols[..total];
        let mut val_rest = &mut scratch.out_vals[..total];
        let mut cnt_rest = scratch.count.as_mut_slice();
        let mut err_rest = errs.as_mut_slice();
        let mut tally_rest = tallies.as_mut_slice();
        let mut work_rest: &mut [WorkerScratch] = &mut *scratch.workers;
        run_bands(bands, |&(lo, hi)| {
            let width = bound_ptr[hi] - bound_ptr[lo];
            let (cols_band, ct) = std::mem::take(&mut col_rest).split_at_mut(width);
            col_rest = ct;
            let (vals_band, vt) = std::mem::take(&mut val_rest).split_at_mut(width);
            val_rest = vt;
            let (cnt_band, nt) = std::mem::take(&mut cnt_rest).split_at_mut(hi - lo);
            cnt_rest = nt;
            let (err, etail) = std::mem::take(&mut err_rest).split_at_mut(1);
            err_rest = etail;
            let (tally, ttail) = std::mem::take(&mut tally_rest).split_at_mut(1);
            tally_rest = ttail;
            let (w, wtail) = std::mem::take(&mut work_rest).split_at_mut(1);
            work_rest = wtail;
            let stop = &stop;
            move || {
                let ws = &mut w[0];
                let t = &mut tally[0];
                let base = bound_ptr[lo];
                for (i, (r, cnt)) in (lo..hi).zip(cnt_band.iter_mut()).enumerate() {
                    if i % ROWS_PER_CHECK == 0 {
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            return;
                        }
                        if budget.injected(failpoints::SPGEMM_NUMERIC_CANCEL) {
                            err[0] = Some(ExecError::Cancelled);
                            stop.store(true, std::sync::atomic::Ordering::Relaxed);
                            return;
                        }
                        if let Err(e) = budget.check() {
                            err[0] = Some(e);
                            stop.store(true, std::sync::atomic::Ordering::Relaxed);
                            return;
                        }
                    }
                    let off = bound_ptr[r] - base;
                    let len = bound_ptr[r + 1] - bound_ptr[r];
                    if len == 0 {
                        *cnt = 0;
                        continue;
                    }
                    let (acols, avals) = a.row(r);
                    let cols_out = &mut cols_band[off..off + len];
                    let vals_out = &mut vals_band[off..off + len];
                    let go_sparse = sparse_ok
                        && match policy {
                            Accumulator::Sparse => true,
                            Accumulator::Dense => false,
                            Accumulator::Adaptive => len <= cutoff,
                        };
                    if go_sparse {
                        *cnt = ws.numeric_row_sparse(acols, avals, &b, len, cols_out, vals_out);
                        t.sparse_rows += 1;
                    } else {
                        let (n, tiles) = ws.numeric_row_dense(
                            acols,
                            avals,
                            &b,
                            ncols,
                            row_flops[r],
                            cols_out,
                            vals_out,
                        );
                        *cnt = n;
                        t.dense_rows += 1;
                        t.tile_count += tiles;
                    }
                }
            }
        });
    }
    drop(numeric_span);
    if repsim_obs::enabled() {
        SPGEMM_NUMERIC_NS.record(repsim_obs::now_ns().saturating_sub(numeric_t0));
    }
    if let Some(e) = errs.iter_mut().find_map(Option::take) {
        return Err(e);
    }
    let mut tally = NumericTally::default();
    // audit:allow(RA0101, one absorb per worker band — bounded by thread count)
    for t in &tallies {
        tally.absorb(*t);
    }

    // Phase 3 — compact: copy the staged rows out of the arena into
    // exact-size vectors, closing any cancellation gaps. Contiguous runs
    // of gap-free rows are coalesced into single memcpys.
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    row_ptr.push(0);
    let mut nnz_out = 0usize;
    // audit:allow(RA0101, prefix sum over per-row counts of the admitted product)
    for r in 0..nrows {
        nnz_out += scratch.count[r];
        row_ptr.push(nnz_out);
    }
    let mut col_idx = Vec::with_capacity(nnz_out);
    let mut values = Vec::with_capacity(nnz_out);
    let mut run_start = 0usize;
    let mut run_len = 0usize;
    // audit:allow(RA0101, memcpy compaction of entries already admitted by check_alloc)
    for (&src, &n) in bound_ptr[..nrows].iter().zip(&scratch.count[..nrows]) {
        if src == run_start + run_len {
            run_len += n;
        } else {
            col_idx.extend_from_slice(&scratch.out_cols[run_start..run_start + run_len]);
            values.extend_from_slice(&scratch.out_vals[run_start..run_start + run_len]);
            run_start = src;
            run_len = n;
        }
    }
    col_idx.extend_from_slice(&scratch.out_cols[run_start..run_start + run_len]);
    values.extend_from_slice(&scratch.out_vals[run_start..run_start + run_len]);
    debug_assert_eq!(col_idx.len(), nnz_out);
    Ok((
        Csr::from_parts(nrows, ncols, row_ptr, col_idx, values),
        tally,
    ))
}

/// Runs one closure per band: inline when there is a single band, on
/// scoped threads otherwise. `make_work` is called on the caller's thread
/// (it may carve out the band's mutable slices); the returned closure runs
/// on the worker.
fn run_bands<'s, F, W>(bands: &'s [(usize, usize)], mut make_work: F)
where
    F: FnMut(&'s (usize, usize)) -> W,
    W: FnOnce() + Send + 's,
{
    if bands.len() <= 1 {
        if let Some(band) = bands.first() {
            make_work(band)();
        }
        return;
    }
    std::thread::scope(|scope| {
        for band in bands {
            scope.spawn(make_work(band));
        }
    });
}

/// Multiplies a chain of sparse matrices.
///
/// Panics on an empty chain or on any shape mismatch. Multiplication is
/// associative; the association order is chosen by a matrix-chain DP over
/// estimated flops (see [`crate::chain`]), which beats a blind left fold
/// when a long chain has a cheap join deep on its right.
pub fn spmm_chain(matrices: &[&Csr]) -> Csr {
    crate::chain::spmm_chain_with_threads(matrices, 1)
}

/// Sparse matrix × dense vector (`A · x`).
pub fn matvec(a: &Csr, x: &[f64]) -> Vec<f64> {
    match try_matvec(a, x) {
        Ok(y) => y,
        #[allow(clippy::panic)] // documented infallible wrapper over the try_ API
        Err(e) => panic!("matvec shape mismatch: {e}"),
    }
}

/// Fallible [`matvec`].
pub fn try_matvec(a: &Csr, x: &[f64]) -> Result<Vec<f64>, ExecError> {
    try_matvec_with_budget(a, x, &Budget::unlimited())
}

/// Budget-governed [`matvec`]: the budget is checked every
/// [`ROWS_PER_CHECK`] rows of the sweep.
pub fn try_matvec_with_budget(a: &Csr, x: &[f64], budget: &Budget) -> Result<Vec<f64>, ExecError> {
    if a.ncols() != x.len() {
        return Err(ExecError::ShapeMismatch {
            op: "matvec",
            lhs: (a.nrows(), a.ncols()),
            rhs: (x.len(), 1),
        });
    }
    budget.check()?;
    let mut y = vec![0.0; a.nrows()];
    for (r, yr) in y.iter_mut().enumerate() {
        if r % ROWS_PER_CHECK == 0 && r > 0 {
            budget.check()?;
        }
        let (cols, vals) = a.row(r);
        let mut sum = 0.0;
        // audit:allow(RA0101, single row — bounded by the outer ROWS_PER_CHECK poll)
        for (&c, &v) in cols.iter().zip(vals) {
            sum += v * x[c as usize];
        }
        *yr = sum;
    }
    Ok(y)
}

/// Dense row vector × sparse matrix (`xᵀ · A`), returned as a dense vector.
pub fn vecmat(x: &[f64], a: &Csr) -> Vec<f64> {
    match try_vecmat(x, a) {
        Ok(y) => y,
        #[allow(clippy::panic)] // documented infallible wrapper over the try_ API
        Err(e) => panic!("vecmat shape mismatch: {e}"),
    }
}

/// Fallible [`vecmat`].
pub fn try_vecmat(x: &[f64], a: &Csr) -> Result<Vec<f64>, ExecError> {
    if a.nrows() != x.len() {
        return Err(ExecError::ShapeMismatch {
            op: "vecmat",
            lhs: (1, x.len()),
            rhs: (a.nrows(), a.ncols()),
        });
    }
    let mut y = vec![0.0; a.ncols()];
    for (r, &xr) in x.iter().enumerate() {
        if xr == 0.0 {
            continue;
        }
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            y[c as usize] += xr * v;
        }
    }
    Ok(y)
}

/// Dense × sparse multiplication (`D · A`), used by SimRank's `S·W` step.
pub fn dense_sparse_mul(d: &Dense, a: &Csr) -> Dense {
    match try_dense_sparse_mul(d, a) {
        Ok(out) => out,
        #[allow(clippy::panic)] // documented infallible wrapper over the try_ API
        Err(e) => panic!("dense_sparse_mul shape mismatch: {e}"),
    }
}

/// Fallible [`dense_sparse_mul`].
pub fn try_dense_sparse_mul(d: &Dense, a: &Csr) -> Result<Dense, ExecError> {
    if d.ncols() != a.nrows() {
        return Err(ExecError::ShapeMismatch {
            op: "dense_sparse_mul",
            lhs: (d.nrows(), d.ncols()),
            rhs: (a.nrows(), a.ncols()),
        });
    }
    let mut out = Dense::zeros(d.nrows(), a.ncols());
    for r in 0..d.nrows() {
        let drow = d.row(r);
        let orow = out.row_mut(r);
        for (k, &dv) in drow.iter().enumerate() {
            if dv == 0.0 {
                continue;
            }
            let (cols, vals) = a.row(k);
            for (&c, &av) in cols.iter().zip(vals) {
                orow[c as usize] += dv * av;
            }
        }
    }
    Ok(out)
}

/// Sparse-transpose × dense multiplication (`Aᵀ · D`), used by SimRank's
/// `Wᵀ·(S·W)` step without materializing `Aᵀ`.
pub fn sparse_t_dense_mul(a: &Csr, d: &Dense) -> Dense {
    match try_sparse_t_dense_mul(a, d) {
        Ok(out) => out,
        #[allow(clippy::panic)] // documented infallible wrapper over the try_ API
        Err(e) => panic!("sparse_t_dense_mul shape mismatch: {e}"),
    }
}

/// Fallible [`sparse_t_dense_mul`].
pub fn try_sparse_t_dense_mul(a: &Csr, d: &Dense) -> Result<Dense, ExecError> {
    if a.nrows() != d.nrows() {
        return Err(ExecError::ShapeMismatch {
            op: "sparse_t_dense_mul",
            lhs: (a.nrows(), a.ncols()),
            rhs: (d.nrows(), d.ncols()),
        });
    }
    let mut out = Dense::zeros(a.ncols(), d.ncols());
    for k in 0..a.nrows() {
        let (cols, vals) = a.row(k);
        let drow = d.row(k);
        for (&r, &av) in cols.iter().zip(vals) {
            let orow = out.row_mut(r as usize);
            for (o, &dv) in orow.iter_mut().zip(drow) {
                *o += av * dv;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Csr {
        // [1 2]
        // [0 3]
        Csr::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)])
    }

    fn b() -> Csr {
        // [4 0 1]
        // [5 6 0]
        Csr::from_triplets(
            2,
            3,
            vec![(0, 0, 4.0), (0, 2, 1.0), (1, 0, 5.0), (1, 1, 6.0)],
        )
    }

    #[test]
    fn spmm_matches_hand_computation() {
        let c = spmm(&a(), &b());
        // [1*4+2*5, 2*6, 1] = [14, 12, 1]
        // [15, 18, 0]
        assert_eq!(c.get(0, 0), 14.0);
        assert_eq!(c.get(0, 1), 12.0);
        assert_eq!(c.get(0, 2), 1.0);
        assert_eq!(c.get(1, 0), 15.0);
        assert_eq!(c.get(1, 1), 18.0);
        assert_eq!(c.get(1, 2), 0.0);
    }

    #[test]
    fn spmm_cancellation_pruned() {
        // [1 -1] x [1;1] = [0] — exact zero must not be stored.
        let a = Csr::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 1, -1.0)]);
        let b = Csr::from_triplets(2, 1, vec![(0, 0, 1.0), (1, 0, 1.0)]);
        let c = spmm(&a, &b);
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn spmm_chain_matches_pairwise_product() {
        let i = Csr::identity(2);
        let c = spmm_chain(&[&a(), &i, &b()]);
        assert_eq!(c, spmm(&a(), &b()));
    }

    #[test]
    fn spmm_chain_single_matrix_is_identity_op() {
        let c = spmm_chain(&[&a()]);
        assert_eq!(c, a());
    }

    #[test]
    fn spmm_matches_seed_reference_kernel() {
        // The seed kernel built Vec<Vec<(u32,f64)>> rows then copied into
        // CSR; the two-phase kernel must produce bit-identical output.
        let a = crate::par::tests::sample(41, 29, 11);
        let b = crate::par::tests::sample(29, 31, 12);
        let expected = seed_reference_spmm(&a, &b);
        assert_eq!(spmm(&a, &b), expected);
    }

    /// The pre-two-phase kernel, kept verbatim as a reference oracle.
    fn seed_reference_spmm(a: &Csr, b: &Csr) -> Csr {
        let ncols = b.ncols();
        let mut acc = vec![0.0f64; ncols];
        let mut seen = vec![false; ncols];
        let mut touched: Vec<u32> = Vec::new();
        let mut rows: Vec<Vec<(u32, f64)>> = Vec::with_capacity(a.nrows());
        for r in 0..a.nrows() {
            touched.clear();
            let (ac, av) = a.row(r);
            for (&k, &va) in ac.iter().zip(av) {
                let (bc, bv) = b.row(k as usize);
                for (&c, &vb) in bc.iter().zip(bv) {
                    if !seen[c as usize] {
                        seen[c as usize] = true;
                        touched.push(c);
                    }
                    acc[c as usize] += va * vb;
                }
            }
            touched.sort_unstable();
            let mut row = Vec::with_capacity(touched.len());
            for &c in &touched {
                let v = acc[c as usize];
                acc[c as usize] = 0.0;
                seen[c as usize] = false;
                if v != 0.0 {
                    row.push((c, v));
                }
            }
            rows.push(row);
        }
        Csr::from_rows(ncols, &rows)
    }

    #[test]
    #[should_panic(expected = "empty spmm chain")]
    fn spmm_chain_rejects_empty() {
        let _ = spmm_chain(&[]);
    }

    #[test]
    fn matvec_and_vecmat() {
        let y = matvec(&b(), &[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![5.0, 11.0]);
        let z = vecmat(&[1.0, 1.0], &b());
        assert_eq!(z, vec![9.0, 6.0, 1.0]);
    }

    #[test]
    fn dense_sparse_agrees_with_spmm() {
        let d = a().to_dense();
        let prod = dense_sparse_mul(&d, &b());
        assert_eq!(prod, spmm(&a(), &b()).to_dense());
    }

    #[test]
    fn sparse_t_dense_agrees_with_transpose() {
        let d = b().to_dense();
        let prod = sparse_t_dense_mul(&a(), &d);
        assert_eq!(prod, spmm(&a().transpose(), &b()).to_dense());
    }

    #[test]
    fn try_apis_report_shape_mismatch() {
        let wide = Csr::zeros(3, 7);
        assert_eq!(
            try_spmm(&a(), &wide).unwrap_err(),
            ExecError::ShapeMismatch {
                op: "spmm",
                lhs: (2, 2),
                rhs: (3, 7),
            }
        );
        assert!(matches!(
            try_matvec(&b(), &[1.0]).unwrap_err(),
            ExecError::ShapeMismatch { op: "matvec", .. }
        ));
        assert!(matches!(
            try_vecmat(&[1.0], &b()).unwrap_err(),
            ExecError::ShapeMismatch { op: "vecmat", .. }
        ));
        assert!(matches!(
            try_dense_sparse_mul(&b().to_dense(), &b()).unwrap_err(),
            ExecError::ShapeMismatch {
                op: "dense_sparse_mul",
                ..
            }
        ));
        assert!(matches!(
            try_sparse_t_dense_mul(&a(), &Csr::zeros(3, 3).to_dense()).unwrap_err(),
            ExecError::ShapeMismatch {
                op: "sparse_t_dense_mul",
                ..
            }
        ));
    }

    #[test]
    #[should_panic(expected = "spmm shape mismatch")]
    fn infallible_spmm_still_panics_on_shape() {
        let _ = spmm(&a(), &Csr::zeros(3, 3));
    }

    #[test]
    fn budgeted_spmm_honours_nnz_cap() {
        let a = crate::par::tests::sample(30, 20, 7);
        let b = crate::par::tests::sample(20, 25, 8);
        let exact = spmm(&a, &b);
        // A cap at the exact size passes and is bit-identical...
        let fits = Budget::unlimited().with_max_nnz(exact.nnz());
        assert_eq!(try_spmm_with_budget(&a, &b, 1, &fits).unwrap(), exact);
        // ...but the symbolic bound is what the allocation check sees, so
        // budget one entry below it and the product must abort.
        let starved = Budget::unlimited().with_max_nnz(0);
        assert!(matches!(
            try_spmm_with_budget(&a, &b, 1, &starved).unwrap_err(),
            ExecError::MemoryExceeded { .. }
        ));
    }

    #[test]
    fn budgeted_spmm_observes_cancellation() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let a = crate::par::tests::sample(30, 20, 9);
        let b = crate::par::tests::sample(20, 25, 10);
        let flag = Arc::new(AtomicBool::new(true));
        let budget = Budget::unlimited().with_cancel(flag.clone());
        assert_eq!(
            try_spmm_with_budget(&a, &b, 2, &budget).unwrap_err(),
            ExecError::Cancelled
        );
        flag.store(false, Ordering::Relaxed);
        assert_eq!(
            try_spmm_with_budget(&a, &b, 2, &budget).unwrap(),
            spmm(&a, &b)
        );
    }

    #[test]
    fn budgeted_spmm_observes_expired_deadline() {
        let a = crate::par::tests::sample(30, 20, 11);
        let b = crate::par::tests::sample(20, 25, 12);
        let expired = Budget::unlimited().with_deadline_ms(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(matches!(
            try_spmm_with_budget(&a, &b, 1, &expired).unwrap_err(),
            ExecError::DeadlineExceeded { .. }
        ));
    }

    #[test]
    fn spgemm_cancel_failpoint_aborts_injectable_products() {
        let a = crate::par::tests::sample(10, 10, 13);
        let b = crate::par::tests::sample(10, 10, 14);
        let _guard = failpoints::scoped(&[failpoints::SPGEMM_CANCEL]);
        let inject = Budget::unlimited().with_fault_injection();
        assert_eq!(
            try_spmm_with_budget(&a, &b, 1, &inject).unwrap_err(),
            ExecError::Cancelled
        );
        // Non-injectable budgets (and the infallible wrapper) are immune.
        assert_eq!(
            try_spmm_with_budget(&a, &b, 1, &Budget::unlimited()).unwrap(),
            spmm(&a, &b)
        );
    }

    #[test]
    fn numeric_cancel_failpoint_aborts_mid_product() {
        // Fires after the symbolic pass sized the output, at the numeric
        // phase's first in-band checkpoint — mid-tile from the caller's
        // point of view. No partial matrix escapes and the same inputs
        // multiply cleanly afterwards.
        let a = crate::par::tests::sample(30, 20, 16);
        let b = crate::par::tests::sample(20, 25, 17);
        let _guard = failpoints::scoped(&[failpoints::SPGEMM_NUMERIC_CANCEL]);
        let inject = Budget::unlimited().with_fault_injection();
        for threads in [1, 3] {
            assert_eq!(
                try_spmm_with_budget(&a, &b, threads, &inject).unwrap_err(),
                ExecError::Cancelled,
                "threads={threads}"
            );
        }
        assert_eq!(
            try_spmm_with_budget(&a, &b, 1, &Budget::unlimited()).unwrap(),
            spmm(&a, &b)
        );
    }

    #[test]
    fn arena_reuse_is_bit_identical_across_products() {
        // One arena through a sequence of differently-shaped products —
        // including one aborted mid-numeric — always matches the
        // fresh-arena kernel bit for bit.
        let mut arena = crate::accum::SpgemmArena::new();
        let shapes = [(40, 30, 25), (7, 9, 4), (120, 40, 60), (1, 5, 3)];
        for (i, &(n, k, m)) in shapes.iter().enumerate() {
            let a = crate::par::tests::sample(n, k, 40 + i as u64);
            let b = crate::par::tests::sample(k, m, 50 + i as u64);
            if i == 1 {
                let _guard = failpoints::scoped(&[failpoints::SPGEMM_NUMERIC_CANCEL]);
                let inject = Budget::unlimited().with_fault_injection();
                assert_eq!(
                    try_spmm_with_budget_in(&a, &b, 2, &inject, &mut arena).unwrap_err(),
                    ExecError::Cancelled
                );
            }
            let got = try_spmm_with_budget_in(&a, &b, 2, &Budget::unlimited(), &mut arena).unwrap();
            assert_eq!(got, spmm(&a, &b), "product {i}");
        }
    }

    #[test]
    fn forced_policies_and_compaction_are_bit_identical() {
        use crate::accum::{set_accumulator, set_compact_mode, Accumulator, CompactMode};
        let a = crate::par::tests::sample(60, 45, 18);
        let b = crate::par::tests::sample(45, 50, 19);
        let reference = seed_reference_spmm(&a, &b);
        for policy in [
            Accumulator::Dense,
            Accumulator::Sparse,
            Accumulator::Adaptive,
        ] {
            for mode in [CompactMode::Off, CompactMode::On, CompactMode::Auto] {
                set_accumulator(policy);
                set_compact_mode(mode);
                let got = spmm(&a, &b);
                set_accumulator(Accumulator::Adaptive);
                set_compact_mode(CompactMode::Auto);
                assert_eq!(got, reference, "{policy:?}/{mode:?}");
                for r in 0..got.nrows() {
                    let (gc, gv) = got.row(r);
                    let (rc, rv) = reference.row(r);
                    assert_eq!(gc, rc, "{policy:?}/{mode:?} row {r}");
                    for (x, y) in gv.iter().zip(rv) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{policy:?}/{mode:?} row {r}");
                    }
                }
            }
        }
    }

    #[test]
    fn budgeted_matvec_checks_shape_and_deadline() {
        let m = crate::par::tests::sample(10, 10, 15);
        let x = vec![1.0; 10];
        let expired = Budget::unlimited().with_deadline_ms(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(matches!(
            try_matvec_with_budget(&m, &x, &expired).unwrap_err(),
            ExecError::DeadlineExceeded { .. }
        ));
        assert_eq!(
            try_matvec_with_budget(&m, &x, &Budget::unlimited()).unwrap(),
            matvec(&m, &x)
        );
    }
}
