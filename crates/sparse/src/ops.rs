//! Matrix-matrix and matrix-vector kernels.

use crate::{Csr, Dense};

/// Sparse × sparse multiplication (`A · B`).
///
/// Row-by-row Gustavson algorithm with a dense accumulator over the output
/// row. Output rows are emitted with sorted column indices and without
/// explicit zeros (an exact-zero sum of products is dropped).
pub fn spmm(a: &Csr, b: &Csr) -> Csr {
    assert_eq!(a.ncols(), b.nrows(), "spmm shape mismatch: {a:?} x {b:?}");
    let ncols = b.ncols();
    let mut acc = vec![0.0f64; ncols];
    let mut seen = vec![false; ncols];
    let mut touched: Vec<u32> = Vec::new();
    let mut rows: Vec<Vec<(u32, f64)>> = Vec::with_capacity(a.nrows());
    for r in 0..a.nrows() {
        touched.clear();
        let (ac, av) = a.row(r);
        for (&k, &va) in ac.iter().zip(av) {
            let (bc, bv) = b.row(k as usize);
            for (&c, &vb) in bc.iter().zip(bv) {
                if !seen[c as usize] {
                    seen[c as usize] = true;
                    touched.push(c);
                }
                acc[c as usize] += va * vb;
            }
        }
        touched.sort_unstable();
        let mut row = Vec::with_capacity(touched.len());
        for &c in &touched {
            let v = acc[c as usize];
            acc[c as usize] = 0.0;
            seen[c as usize] = false;
            if v != 0.0 {
                row.push((c, v));
            }
        }
        rows.push(row);
    }
    Csr::from_rows(ncols, &rows)
}

/// Multiplies a chain of sparse matrices left to right.
///
/// Panics on an empty chain or on any shape mismatch. Multiplication is
/// associative; we fold left which matches the short meta-walks used by
/// PathSim (intermediate products stay small when the chain starts from a
/// narrow label).
pub fn spmm_chain(matrices: &[&Csr]) -> Csr {
    let (first, rest) = matrices.split_first().expect("empty spmm chain");
    rest.iter().fold((*first).clone(), |acc, m| spmm(&acc, m))
}

/// Sparse matrix × dense vector (`A · x`).
pub fn matvec(a: &Csr, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.ncols(), x.len(), "matvec shape mismatch");
    let mut y = vec![0.0; a.nrows()];
    for (r, yr) in y.iter_mut().enumerate() {
        let (cols, vals) = a.row(r);
        let mut sum = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            sum += v * x[c as usize];
        }
        *yr = sum;
    }
    y
}

/// Dense row vector × sparse matrix (`xᵀ · A`), returned as a dense vector.
pub fn vecmat(x: &[f64], a: &Csr) -> Vec<f64> {
    assert_eq!(a.nrows(), x.len(), "vecmat shape mismatch");
    let mut y = vec![0.0; a.ncols()];
    for (r, &xr) in x.iter().enumerate() {
        if xr == 0.0 {
            continue;
        }
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            y[c as usize] += xr * v;
        }
    }
    y
}

/// Dense × sparse multiplication (`D · A`), used by SimRank's `S·W` step.
pub fn dense_sparse_mul(d: &Dense, a: &Csr) -> Dense {
    assert_eq!(d.ncols(), a.nrows(), "dense_sparse_mul shape mismatch");
    let mut out = Dense::zeros(d.nrows(), a.ncols());
    for r in 0..d.nrows() {
        let drow = d.row(r);
        let orow = out.row_mut(r);
        for (k, &dv) in drow.iter().enumerate() {
            if dv == 0.0 {
                continue;
            }
            let (cols, vals) = a.row(k);
            for (&c, &av) in cols.iter().zip(vals) {
                orow[c as usize] += dv * av;
            }
        }
    }
    out
}

/// Sparse-transpose × dense multiplication (`Aᵀ · D`), used by SimRank's
/// `Wᵀ·(S·W)` step without materializing `Aᵀ`.
pub fn sparse_t_dense_mul(a: &Csr, d: &Dense) -> Dense {
    assert_eq!(a.nrows(), d.nrows(), "sparse_t_dense_mul shape mismatch");
    let mut out = Dense::zeros(a.ncols(), d.ncols());
    for k in 0..a.nrows() {
        let (cols, vals) = a.row(k);
        let drow = d.row(k);
        for (&r, &av) in cols.iter().zip(vals) {
            let orow = out.row_mut(r as usize);
            for (o, &dv) in orow.iter_mut().zip(drow) {
                *o += av * dv;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Csr {
        // [1 2]
        // [0 3]
        Csr::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)])
    }

    fn b() -> Csr {
        // [4 0 1]
        // [5 6 0]
        Csr::from_triplets(
            2,
            3,
            vec![(0, 0, 4.0), (0, 2, 1.0), (1, 0, 5.0), (1, 1, 6.0)],
        )
    }

    #[test]
    fn spmm_matches_hand_computation() {
        let c = spmm(&a(), &b());
        // [1*4+2*5, 2*6, 1] = [14, 12, 1]
        // [15, 18, 0]
        assert_eq!(c.get(0, 0), 14.0);
        assert_eq!(c.get(0, 1), 12.0);
        assert_eq!(c.get(0, 2), 1.0);
        assert_eq!(c.get(1, 0), 15.0);
        assert_eq!(c.get(1, 1), 18.0);
        assert_eq!(c.get(1, 2), 0.0);
    }

    #[test]
    fn spmm_cancellation_pruned() {
        // [1 -1] x [1;1] = [0] — exact zero must not be stored.
        let a = Csr::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 1, -1.0)]);
        let b = Csr::from_triplets(2, 1, vec![(0, 0, 1.0), (1, 0, 1.0)]);
        let c = spmm(&a, &b);
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn spmm_chain_folds_left() {
        let i = Csr::identity(2);
        let c = spmm_chain(&[&a(), &i, &b()]);
        assert_eq!(c, spmm(&a(), &b()));
    }

    #[test]
    #[should_panic(expected = "empty spmm chain")]
    fn spmm_chain_rejects_empty() {
        let _ = spmm_chain(&[]);
    }

    #[test]
    fn matvec_and_vecmat() {
        let y = matvec(&b(), &[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![5.0, 11.0]);
        let z = vecmat(&[1.0, 1.0], &b());
        assert_eq!(z, vec![9.0, 6.0, 1.0]);
    }

    #[test]
    fn dense_sparse_agrees_with_spmm() {
        let d = a().to_dense();
        let prod = dense_sparse_mul(&d, &b());
        assert_eq!(prod, spmm(&a(), &b()).to_dense());
    }

    #[test]
    fn sparse_t_dense_agrees_with_transpose() {
        let d = b().to_dense();
        let prod = sparse_t_dense_mul(&a(), &d);
        assert_eq!(prod, spmm(&a().transpose(), &b()).to_dense());
    }
}
