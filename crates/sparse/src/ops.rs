//! Matrix-matrix and matrix-vector kernels.

use crate::par::chunks;
use crate::{Csr, Dense};

/// Reusable per-thread scratch for Gustavson row products: a dense
/// accumulator over the output row, an occupancy mask, and the list of
/// touched columns. One instance serves every row a worker computes, so
/// the serial and parallel kernels share the exact same inner loop (and
/// therefore the exact same floating-point accumulation order per row).
pub(crate) struct RowWorkspace {
    acc: Vec<f64>,
    seen: Vec<bool>,
    touched: Vec<u32>,
}

impl RowWorkspace {
    pub(crate) fn new(ncols: usize) -> Self {
        RowWorkspace {
            acc: vec![0.0; ncols],
            seen: vec![false; ncols],
            touched: Vec::new(),
        }
    }

    /// Symbolic pass: the number of distinct columns touched by output row
    /// `r` of `a·b` — an upper bound on its nnz (exact-zero cancellation
    /// can only shrink it).
    fn symbolic_row(&mut self, a: &Csr, b: &Csr, r: usize) -> usize {
        self.touched.clear();
        let (ac, _) = a.row(r);
        for &k in ac {
            let (bc, _) = b.row(k as usize);
            for &c in bc {
                if !self.seen[c as usize] {
                    self.seen[c as usize] = true;
                    self.touched.push(c);
                }
            }
        }
        for &c in &self.touched {
            self.seen[c as usize] = false;
        }
        self.touched.len()
    }

    /// Numeric pass: computes output row `r` of `a·b`, writing sorted
    /// column indices and values (exact-zero sums dropped) into the
    /// pre-sized slices. Returns the number of entries written.
    fn numeric_row(
        &mut self,
        a: &Csr,
        b: &Csr,
        r: usize,
        cols: &mut [u32],
        vals: &mut [f64],
    ) -> usize {
        self.touched.clear();
        let (ac, av) = a.row(r);
        for (&k, &va) in ac.iter().zip(av) {
            let (bc, bv) = b.row(k as usize);
            for (&c, &vb) in bc.iter().zip(bv) {
                if !self.seen[c as usize] {
                    self.seen[c as usize] = true;
                    self.touched.push(c);
                }
                self.acc[c as usize] += va * vb;
            }
        }
        self.touched.sort_unstable();
        let mut n = 0;
        for &c in &self.touched {
            let v = self.acc[c as usize];
            self.acc[c as usize] = 0.0;
            self.seen[c as usize] = false;
            if v != 0.0 {
                cols[n] = c;
                vals[n] = v;
                n += 1;
            }
        }
        n
    }
}

/// Sparse × sparse multiplication (`A · B`).
///
/// Two-phase row-by-row Gustavson algorithm: a symbolic pass sizes each
/// output row (distinct touched columns), then a numeric pass writes
/// sorted columns and values straight into the pre-allocated CSR arrays.
/// Output rows carry sorted column indices and no explicit zeros (an
/// exact-zero sum of products is dropped during the numeric pass).
pub fn spmm(a: &Csr, b: &Csr) -> Csr {
    spmm_with_threads(a, b, 1)
}

/// [`spmm`] over row bands on up to `threads` worker threads.
///
/// Serial and parallel runs share [`RowWorkspace`]'s per-row kernel, so
/// each output row is accumulated in the same order regardless of the
/// thread count and the results are bit-identical.
pub(crate) fn spmm_with_threads(a: &Csr, b: &Csr, threads: usize) -> Csr {
    assert_eq!(a.ncols(), b.nrows(), "spmm shape mismatch: {a:?} x {b:?}");
    let nrows = a.nrows();
    let ncols = b.ncols();
    // Thread spawn/join costs ~10µs per worker; for tiny products one band
    // (run inline, no spawn) is faster than any parallel split.
    let threads = if a.nnz().max(b.nnz()) < 4096 {
        1
    } else {
        threads.max(1)
    };
    let bands = chunks(nrows, threads);

    // Phase 1 — symbolic: per-row nnz upper bounds.
    let mut bound = vec![0usize; nrows];
    {
        let mut rest = bound.as_mut_slice();
        run_bands(&bands, |&(lo, hi)| {
            let (band, tail) = std::mem::take(&mut rest).split_at_mut(hi - lo);
            rest = tail;
            move || {
                let mut ws = RowWorkspace::new(ncols);
                for (r, slot) in (lo..hi).zip(band.iter_mut()) {
                    *slot = ws.symbolic_row(a, b, r);
                }
            }
        });
    }
    let mut bound_ptr = Vec::with_capacity(nrows + 1);
    let mut total = 0usize;
    bound_ptr.push(0);
    for &n in &bound {
        total += n;
        bound_ptr.push(total);
    }

    // Phase 2 — numeric: write each row's entries at its bounded offset;
    // record the actual count (cancellation may fall short of the bound).
    let mut col_idx = vec![0u32; total];
    let mut values = vec![0.0f64; total];
    let mut count = vec![0usize; nrows];
    {
        let mut col_rest = col_idx.as_mut_slice();
        let mut val_rest = values.as_mut_slice();
        let mut cnt_rest = count.as_mut_slice();
        run_bands(&bands, |&(lo, hi)| {
            let width = bound_ptr[hi] - bound_ptr[lo];
            let (cols_band, ct) = std::mem::take(&mut col_rest).split_at_mut(width);
            col_rest = ct;
            let (vals_band, vt) = std::mem::take(&mut val_rest).split_at_mut(width);
            val_rest = vt;
            let (cnt_band, nt) = std::mem::take(&mut cnt_rest).split_at_mut(hi - lo);
            cnt_rest = nt;
            let bound_ptr = &bound_ptr;
            move || {
                let mut ws = RowWorkspace::new(ncols);
                let base = bound_ptr[lo];
                for (r, cnt) in (lo..hi).zip(cnt_band.iter_mut()) {
                    let off = bound_ptr[r] - base;
                    let len = bound_ptr[r + 1] - bound_ptr[r];
                    *cnt = ws.numeric_row(
                        a,
                        b,
                        r,
                        &mut cols_band[off..off + len],
                        &mut vals_band[off..off + len],
                    );
                }
            }
        });
    }

    // Phase 3 — compact: close the cancellation gaps in place and build
    // the final row pointers.
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    row_ptr.push(0);
    let mut dst = 0usize;
    for r in 0..nrows {
        let src = bound_ptr[r];
        let n = count[r];
        if src != dst {
            col_idx.copy_within(src..src + n, dst);
            values.copy_within(src..src + n, dst);
        }
        dst += n;
        row_ptr.push(dst);
    }
    col_idx.truncate(dst);
    values.truncate(dst);
    col_idx.shrink_to_fit();
    values.shrink_to_fit();
    Csr::from_parts(nrows, ncols, row_ptr, col_idx, values)
}

/// Runs one closure per band: inline when there is a single band, on
/// scoped threads otherwise. `make_work` is called on the caller's thread
/// (it may carve out the band's mutable slices); the returned closure runs
/// on the worker.
fn run_bands<'s, F, W>(bands: &'s [(usize, usize)], mut make_work: F)
where
    F: FnMut(&'s (usize, usize)) -> W,
    W: FnOnce() + Send + 's,
{
    if bands.len() <= 1 {
        if let Some(band) = bands.first() {
            make_work(band)();
        }
        return;
    }
    std::thread::scope(|scope| {
        for band in bands {
            scope.spawn(make_work(band));
        }
    });
}

/// Multiplies a chain of sparse matrices.
///
/// Panics on an empty chain or on any shape mismatch. Multiplication is
/// associative; the association order is chosen by a matrix-chain DP over
/// estimated flops (see [`crate::chain`]), which beats a blind left fold
/// when a long chain has a cheap join deep on its right.
pub fn spmm_chain(matrices: &[&Csr]) -> Csr {
    crate::chain::spmm_chain_with_threads(matrices, 1)
}

/// Sparse matrix × dense vector (`A · x`).
pub fn matvec(a: &Csr, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.ncols(), x.len(), "matvec shape mismatch");
    let mut y = vec![0.0; a.nrows()];
    for (r, yr) in y.iter_mut().enumerate() {
        let (cols, vals) = a.row(r);
        let mut sum = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            sum += v * x[c as usize];
        }
        *yr = sum;
    }
    y
}

/// Dense row vector × sparse matrix (`xᵀ · A`), returned as a dense vector.
pub fn vecmat(x: &[f64], a: &Csr) -> Vec<f64> {
    assert_eq!(a.nrows(), x.len(), "vecmat shape mismatch");
    let mut y = vec![0.0; a.ncols()];
    for (r, &xr) in x.iter().enumerate() {
        if xr == 0.0 {
            continue;
        }
        let (cols, vals) = a.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            y[c as usize] += xr * v;
        }
    }
    y
}

/// Dense × sparse multiplication (`D · A`), used by SimRank's `S·W` step.
pub fn dense_sparse_mul(d: &Dense, a: &Csr) -> Dense {
    assert_eq!(d.ncols(), a.nrows(), "dense_sparse_mul shape mismatch");
    let mut out = Dense::zeros(d.nrows(), a.ncols());
    for r in 0..d.nrows() {
        let drow = d.row(r);
        let orow = out.row_mut(r);
        for (k, &dv) in drow.iter().enumerate() {
            if dv == 0.0 {
                continue;
            }
            let (cols, vals) = a.row(k);
            for (&c, &av) in cols.iter().zip(vals) {
                orow[c as usize] += dv * av;
            }
        }
    }
    out
}

/// Sparse-transpose × dense multiplication (`Aᵀ · D`), used by SimRank's
/// `Wᵀ·(S·W)` step without materializing `Aᵀ`.
pub fn sparse_t_dense_mul(a: &Csr, d: &Dense) -> Dense {
    assert_eq!(a.nrows(), d.nrows(), "sparse_t_dense_mul shape mismatch");
    let mut out = Dense::zeros(a.ncols(), d.ncols());
    for k in 0..a.nrows() {
        let (cols, vals) = a.row(k);
        let drow = d.row(k);
        for (&r, &av) in cols.iter().zip(vals) {
            let orow = out.row_mut(r as usize);
            for (o, &dv) in orow.iter_mut().zip(drow) {
                *o += av * dv;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Csr {
        // [1 2]
        // [0 3]
        Csr::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)])
    }

    fn b() -> Csr {
        // [4 0 1]
        // [5 6 0]
        Csr::from_triplets(
            2,
            3,
            vec![(0, 0, 4.0), (0, 2, 1.0), (1, 0, 5.0), (1, 1, 6.0)],
        )
    }

    #[test]
    fn spmm_matches_hand_computation() {
        let c = spmm(&a(), &b());
        // [1*4+2*5, 2*6, 1] = [14, 12, 1]
        // [15, 18, 0]
        assert_eq!(c.get(0, 0), 14.0);
        assert_eq!(c.get(0, 1), 12.0);
        assert_eq!(c.get(0, 2), 1.0);
        assert_eq!(c.get(1, 0), 15.0);
        assert_eq!(c.get(1, 1), 18.0);
        assert_eq!(c.get(1, 2), 0.0);
    }

    #[test]
    fn spmm_cancellation_pruned() {
        // [1 -1] x [1;1] = [0] — exact zero must not be stored.
        let a = Csr::from_triplets(1, 2, vec![(0, 0, 1.0), (0, 1, -1.0)]);
        let b = Csr::from_triplets(2, 1, vec![(0, 0, 1.0), (1, 0, 1.0)]);
        let c = spmm(&a, &b);
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn spmm_chain_matches_pairwise_product() {
        let i = Csr::identity(2);
        let c = spmm_chain(&[&a(), &i, &b()]);
        assert_eq!(c, spmm(&a(), &b()));
    }

    #[test]
    fn spmm_chain_single_matrix_is_identity_op() {
        let c = spmm_chain(&[&a()]);
        assert_eq!(c, a());
    }

    #[test]
    fn spmm_matches_seed_reference_kernel() {
        // The seed kernel built Vec<Vec<(u32,f64)>> rows then copied into
        // CSR; the two-phase kernel must produce bit-identical output.
        let a = crate::par::tests::sample(41, 29, 11);
        let b = crate::par::tests::sample(29, 31, 12);
        let expected = seed_reference_spmm(&a, &b);
        assert_eq!(spmm(&a, &b), expected);
    }

    /// The pre-two-phase kernel, kept verbatim as a reference oracle.
    fn seed_reference_spmm(a: &Csr, b: &Csr) -> Csr {
        let ncols = b.ncols();
        let mut acc = vec![0.0f64; ncols];
        let mut seen = vec![false; ncols];
        let mut touched: Vec<u32> = Vec::new();
        let mut rows: Vec<Vec<(u32, f64)>> = Vec::with_capacity(a.nrows());
        for r in 0..a.nrows() {
            touched.clear();
            let (ac, av) = a.row(r);
            for (&k, &va) in ac.iter().zip(av) {
                let (bc, bv) = b.row(k as usize);
                for (&c, &vb) in bc.iter().zip(bv) {
                    if !seen[c as usize] {
                        seen[c as usize] = true;
                        touched.push(c);
                    }
                    acc[c as usize] += va * vb;
                }
            }
            touched.sort_unstable();
            let mut row = Vec::with_capacity(touched.len());
            for &c in &touched {
                let v = acc[c as usize];
                acc[c as usize] = 0.0;
                seen[c as usize] = false;
                if v != 0.0 {
                    row.push((c, v));
                }
            }
            rows.push(row);
        }
        Csr::from_rows(ncols, &rows)
    }

    #[test]
    #[should_panic(expected = "empty spmm chain")]
    fn spmm_chain_rejects_empty() {
        let _ = spmm_chain(&[]);
    }

    #[test]
    fn matvec_and_vecmat() {
        let y = matvec(&b(), &[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![5.0, 11.0]);
        let z = vecmat(&[1.0, 1.0], &b());
        assert_eq!(z, vec![9.0, 6.0, 1.0]);
    }

    #[test]
    fn dense_sparse_agrees_with_spmm() {
        let d = a().to_dense();
        let prod = dense_sparse_mul(&d, &b());
        assert_eq!(prod, spmm(&a(), &b()).to_dense());
    }

    #[test]
    fn sparse_t_dense_agrees_with_transpose() {
        let d = b().to_dense();
        let prod = sparse_t_dense_mul(&a(), &d);
        assert_eq!(prod, spmm(&a().transpose(), &b()).to_dense());
    }
}
