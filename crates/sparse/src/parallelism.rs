//! Workspace-wide thread-count configuration.
//!
//! Every parallel kernel in the workspace takes an explicit thread count;
//! [`Parallelism`] decides what that count defaults to. Resolution order:
//!
//! 1. a process-wide override installed with [`Parallelism::set_global`]
//!    (the CLI's `--threads` flag);
//! 2. the `REPSIM_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! The environment lookup is cached after the first read, so hot paths can
//! call [`Parallelism::default`] freely.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A resolved worker-thread budget (always at least 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

/// `--threads` override; 0 means "not set".
static GLOBAL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

impl Parallelism {
    /// Exactly one worker: serial execution.
    pub fn serial() -> Parallelism {
        Parallelism { threads: 1 }
    }

    /// An explicit thread budget (clamped up to 1).
    pub fn with_threads(threads: usize) -> Parallelism {
        Parallelism {
            threads: threads.max(1),
        }
    }

    /// All hardware threads the scheduler reports.
    pub fn available() -> Parallelism {
        Parallelism::with_threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The process default: global override, then `REPSIM_THREADS`, then
    /// [`Parallelism::available`]. Unparsable or zero `REPSIM_THREADS`
    /// values fall through to auto-detection.
    pub fn from_env() -> Parallelism {
        let over = GLOBAL_OVERRIDE.load(Ordering::Relaxed);
        if over != 0 {
            return Parallelism::with_threads(over);
        }
        static ENV: OnceLock<Parallelism> = OnceLock::new();
        *ENV.get_or_init(|| {
            match std::env::var("REPSIM_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
            {
                Some(n) if n > 0 => Parallelism::with_threads(n),
                _ => Parallelism::available(),
            }
        })
    }

    /// Installs a process-wide override (the CLI's `--threads` flag),
    /// taking precedence over `REPSIM_THREADS` from then on.
    pub fn set_global(threads: usize) {
        GLOBAL_OVERRIDE.store(threads.max(1), Ordering::Relaxed);
    }

    /// The worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_budgets_clamp_to_one() {
        assert_eq!(Parallelism::with_threads(0).threads(), 1);
        assert_eq!(Parallelism::with_threads(7).threads(), 7);
        assert_eq!(Parallelism::serial().threads(), 1);
    }

    #[test]
    fn available_reports_at_least_one() {
        assert!(Parallelism::available().threads() >= 1);
    }

    #[test]
    fn global_override_wins() {
        // Note: mutates process state; keep this the only test doing so.
        Parallelism::set_global(3);
        assert_eq!(Parallelism::from_env().threads(), 3);
        assert_eq!(Parallelism::default().threads(), 3);
    }
}
