//! Dense row-major matrices (used by exact SimRank and in tests).

use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
#[derive(Clone, PartialEq, Debug)]
pub struct Dense {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Dense {
    /// An all-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Dense {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut d = Dense::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = 1.0;
        }
        d
    }

    /// Builds from a row-major buffer. Panics if the length does not match.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "buffer length mismatch");
        Dense { nrows, ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Row `r` as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying row-major buffer, mutably (used by the parallel
    /// kernels to split the output into disjoint row bands).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Largest absolute element-wise difference from `other`.
    pub fn max_abs_diff(&self, other: &Dense) -> f64 {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Sets the whole matrix to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

impl Index<(usize, usize)> for Dense {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        &self.data[r * self.ncols + c]
    }
}

impl IndexMut<(usize, usize)> for Dense {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        &mut self.data[r * self.ncols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let mut d = Dense::zeros(2, 3);
        d[(1, 2)] = 4.5;
        assert_eq!(d[(1, 2)], 4.5);
        assert_eq!(d[(0, 0)], 0.0);
        assert_eq!(d.row(1), &[0.0, 0.0, 4.5]);
    }

    #[test]
    fn identity_diag() {
        let i = Dense::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(2, 2)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Dense::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Dense::from_vec(1, 2, vec![1.5, 1.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_checks_len() {
        let _ = Dense::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn clear_keeps_shape() {
        let mut d = Dense::from_vec(2, 2, vec![1.0; 4]);
        d.clear();
        assert_eq!(d, Dense::zeros(2, 2));
    }
}
