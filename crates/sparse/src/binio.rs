//! Binary encoding of [`Csr`] matrices for crash-safe snapshots.
//!
//! The serving layer persists commuting matrices across restarts; the
//! paper's whole point is that R-PathSim's answers survive
//! representational change, so a reloaded index must reproduce the exact
//! bits of a cold rebuild. The encoding is therefore deliberately
//! lossless and boring: little-endian fixed-width integers and raw
//! `f64::to_bits` values, no compression, no floating-point re-parsing.
//!
//! Decoding treats input as untrusted: lengths are validated against the
//! available bytes *before* any allocation, and the reconstructed matrix
//! passes through [`Csr::try_from_parts`] so every structural CSR
//! invariant is re-checked. Integrity of a whole snapshot file is the
//! caller's job (see `repsim-serve`), built on [`checksum`] — a 64-bit
//! FNV-1a over the encoded bytes.

use crate::compact::{CompactInvariant, CsrCompact};
use crate::csr::{Csr, CsrInvariant};
use std::fmt;

/// Leading tag of a compact (delta-encoded) record. The plain format's
/// first field is `nrows`, which in any real snapshot is far below 2⁶³,
/// so a decoder can discriminate the two formats on the first `u64`:
/// old-format snapshots keep loading unchanged, and an old binary fed a
/// compact record fails safe (the magic reads as an implausible `nrows`
/// and is rejected before allocation).
const COMPACT_MAGIC: u64 = 0xC5C2_0001_D17A_C0DE;

/// Errors from decoding an encoded [`Csr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the named section was complete.
    Truncated {
        /// Which section was being read (`"header"`, `"row_ptr"`, …).
        section: &'static str,
        /// Bytes the section needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A declared length is impossible for the available input (corrupt
    /// or hostile header; rejected before allocating).
    LengthOverflow {
        /// Which header field overflowed (`"nrows"`, `"nnz"`, …).
        field: &'static str,
        /// The declared value.
        declared: u64,
    },
    /// The decoded parts violate a CSR structural invariant.
    Invariant(CsrInvariant),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated {
                section,
                needed,
                have,
            } => write!(f, "truncated {section}: needed {needed} bytes, have {have}"),
            DecodeError::LengthOverflow { field, declared } => {
                write!(f, "implausible {field} {declared} for input size")
            }
            DecodeError::Invariant(e) => write!(f, "csr invariant violated: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<CsrInvariant> for DecodeError {
    fn from(e: CsrInvariant) -> Self {
        DecodeError::Invariant(e)
    }
}

/// 64-bit FNV-1a over `bytes` — the workspace's snapshot checksum.
///
/// Not cryptographic; it detects the torn writes, truncations and
/// bit-flips a crashed or corrupted snapshot file exhibits.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, section: &'static str) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::LengthOverflow {
            field: section,
            declared: n as u64,
        })?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated {
                section,
                needed: n,
                have: self.bytes.len().saturating_sub(self.pos),
            })?;
        self.pos = end;
        Ok(slice)
    }

    fn u64(&mut self, section: &'static str) -> Result<u64, DecodeError> {
        let b = self.take(8, section)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Validates that `count` elements of `width` bytes fit in the
    /// remaining input, guarding allocations against corrupt headers.
    fn check_len(
        &self,
        count: u64,
        width: usize,
        field: &'static str,
    ) -> Result<usize, DecodeError> {
        let n = usize::try_from(count).map_err(|_| DecodeError::LengthOverflow {
            field,
            declared: count,
        })?;
        let bytes = n.checked_mul(width).ok_or(DecodeError::LengthOverflow {
            field,
            declared: count,
        })?;
        if bytes > self.bytes.len().saturating_sub(self.pos) {
            return Err(DecodeError::Truncated {
                section: field,
                needed: bytes,
                have: self.bytes.len().saturating_sub(self.pos),
            });
        }
        Ok(n)
    }
}

impl Csr {
    /// Appends the lossless binary encoding of `self` to `out` and
    /// returns the number of bytes written.
    ///
    /// Layout (all little-endian): `nrows: u64`, `ncols: u64`,
    /// `nnz: u64`, then `nrows + 1` row-pointer `u64`s, `nnz` column
    /// `u32`s, and `nnz` value bit patterns (`f64::to_bits` as `u64`).
    pub fn encode_into(&self, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        let (nrows, nnz) = (self.nrows(), self.nnz());
        out.reserve(24 + (nrows + 1) * 8 + nnz * 12);
        push_u64(out, nrows as u64);
        push_u64(out, self.ncols() as u64);
        push_u64(out, nnz as u64);
        // row_ptr reconstructed from the public row view: offset 0, then
        // one cumulative end per row.
        push_u64(out, 0);
        let mut end = 0u64;
        for r in 0..nrows {
            end += self.row(r).0.len() as u64;
            push_u64(out, end);
        }
        for r in 0..nrows {
            for &c in self.row(r).0 {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        for r in 0..nrows {
            for &v in self.row(r).1 {
                push_u64(out, v.to_bits());
            }
        }
        out.len() - start
    }

    /// The encoding of [`Csr::encode_into`] as an owned buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Appends the most compact lossless encoding of `self`: the
    /// delta-encoded [`CsrCompact`] record when the shape is eligible
    /// (~60% of the plain column-structure bytes), the plain record
    /// otherwise. [`Csr::decode`] reads both transparently, and either
    /// round trip is bit-identical.
    pub fn encode_auto_into(&self, out: &mut Vec<u8>) -> usize {
        match CsrCompact::try_from_csr(self) {
            Some(c) => c.encode_into(out),
            None => self.encode_into(out),
        }
    }

    /// Decodes one matrix — plain or compact record — from the front of
    /// `bytes`, returning it with the number of bytes consumed. The
    /// reconstruction re-validates every CSR invariant, so corrupt input
    /// yields a [`DecodeError`], never a malformed matrix.
    pub fn decode(bytes: &[u8]) -> Result<(Csr, usize), DecodeError> {
        if bytes.len() >= 8 {
            let mut head = [0u8; 8];
            head.copy_from_slice(&bytes[..8]);
            if u64::from_le_bytes(head) == COMPACT_MAGIC {
                let (c, used) = CsrCompact::decode(bytes)?;
                return Ok((c.try_to_csr()?, used));
            }
        }
        let mut r = Reader { bytes, pos: 0 };
        let nrows_decl = r.u64("header")?;
        let ncols_decl = r.u64("header")?;
        let nnz_decl = r.u64("header")?;
        // row_ptr is u64 on disk; col_idx u32; values u64 bit patterns.
        let nrows = r.check_len(nrows_decl.saturating_add(1), 8, "nrows")?;
        let ncols = usize::try_from(ncols_decl).map_err(|_| DecodeError::LengthOverflow {
            field: "ncols",
            declared: ncols_decl,
        })?;
        let mut row_ptr = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let v = r.u64("row_ptr")?;
            row_ptr.push(usize::try_from(v).map_err(|_| DecodeError::LengthOverflow {
                field: "row_ptr",
                declared: v,
            })?);
        }
        let nnz = r.check_len(nnz_decl, 4, "nnz")?;
        let mut col_idx = Vec::with_capacity(nnz);
        for chunk in r.take(nnz * 4, "col_idx")?.chunks_exact(4) {
            let mut arr = [0u8; 4];
            arr.copy_from_slice(chunk);
            col_idx.push(u32::from_le_bytes(arr));
        }
        let _ = r.check_len(nnz_decl, 8, "values")?;
        let mut values = Vec::with_capacity(nnz);
        for chunk in r.take(nnz * 8, "values")?.chunks_exact(8) {
            let mut arr = [0u8; 8];
            arr.copy_from_slice(chunk);
            values.push(f64::from_bits(u64::from_le_bytes(arr)));
        }
        let m = Csr::try_from_parts(
            usize::try_from(nrows_decl).map_err(|_| DecodeError::LengthOverflow {
                field: "nrows",
                declared: nrows_decl,
            })?,
            ncols,
            row_ptr,
            col_idx,
            values,
        )?;
        Ok((m, r.pos))
    }
}

impl CsrCompact {
    /// Appends the compact record encoding of `self` to `out` and returns
    /// the number of bytes written.
    ///
    /// Layout (little-endian): [`COMPACT_MAGIC`]`: u64`, `nrows: u64`,
    /// `ncols: u64`, `nnz: u64`, then `nrows + 1` row-pointer `u32`s,
    /// `nnz` column-delta `u16`s, and `nnz` value bit patterns
    /// (`f64::to_bits` as `u64`).
    pub fn encode_into(&self, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        let (row_ptr, deltas, values) = self.raw();
        out.reserve(32 + row_ptr.len() * 4 + deltas.len() * 2 + values.len() * 8);
        push_u64(out, COMPACT_MAGIC);
        push_u64(out, self.nrows() as u64);
        push_u64(out, self.ncols() as u64);
        push_u64(out, self.nnz() as u64);
        for &p in row_ptr {
            out.extend_from_slice(&p.to_le_bytes());
        }
        for &d in deltas {
            out.extend_from_slice(&d.to_le_bytes());
        }
        for &v in values {
            push_u64(out, v.to_bits());
        }
        out.len() - start
    }

    /// The encoding of [`CsrCompact::encode_into`] as an owned buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes one compact record from the front of `bytes`, returning it
    /// with the number of bytes consumed. Structural invariants are
    /// re-checked here; full CSR invariants (column bounds, sortedness)
    /// are re-checked when the result is expanded via
    /// [`CsrCompact::try_to_csr`], which [`Csr::decode`] always does.
    pub fn decode(bytes: &[u8]) -> Result<(CsrCompact, usize), DecodeError> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.u64("magic")?;
        if magic != COMPACT_MAGIC {
            return Err(DecodeError::LengthOverflow {
                field: "magic",
                declared: magic,
            });
        }
        let nrows_decl = r.u64("header")?;
        let ncols_decl = r.u64("header")?;
        let nnz_decl = r.u64("header")?;
        let nrows = usize::try_from(nrows_decl).map_err(|_| DecodeError::LengthOverflow {
            field: "nrows",
            declared: nrows_decl,
        })?;
        let ncols = usize::try_from(ncols_decl).map_err(|_| DecodeError::LengthOverflow {
            field: "ncols",
            declared: ncols_decl,
        })?;
        let nptr = r.check_len(nrows_decl.saturating_add(1), 4, "row_ptr")?;
        let mut row_ptr = Vec::with_capacity(nptr);
        for chunk in r.take(nptr * 4, "row_ptr")?.chunks_exact(4) {
            let mut arr = [0u8; 4];
            arr.copy_from_slice(chunk);
            row_ptr.push(u32::from_le_bytes(arr));
        }
        let nnz = r.check_len(nnz_decl, 2, "col_delta")?;
        let mut deltas = Vec::with_capacity(nnz);
        for chunk in r.take(nnz * 2, "col_delta")?.chunks_exact(2) {
            let mut arr = [0u8; 2];
            arr.copy_from_slice(chunk);
            deltas.push(u16::from_le_bytes(arr));
        }
        let _ = r.check_len(nnz_decl, 8, "values")?;
        let mut values = Vec::with_capacity(nnz);
        for chunk in r.take(nnz * 8, "values")?.chunks_exact(8) {
            let mut arr = [0u8; 8];
            arr.copy_from_slice(chunk);
            values.push(f64::from_bits(u64::from_le_bytes(arr)));
        }
        // The raw constructor names the violated invariant; translate to
        // the decoder's error vocabulary (the plain-CSR invariant when
        // one corresponds, a header overflow for ineligible shapes).
        let c = CsrCompact::try_from_raw(nrows, ncols, row_ptr, deltas, values).map_err(
            |e| match e {
                CompactInvariant::RowPtrShape { start, found, .. } if found == nrows + 1 => {
                    CsrInvariant::RowPtrStart {
                        found: start as usize,
                    }
                    .into()
                }
                CompactInvariant::RowPtrShape {
                    expected, found, ..
                } => CsrInvariant::RowPtrLength { expected, found }.into(),
                CompactInvariant::RowPtrNotMonotone { row, lo, hi } => {
                    CsrInvariant::RowPtrNotMonotone {
                        row,
                        lo: lo as usize,
                        hi: hi as usize,
                    }
                    .into()
                }
                CompactInvariant::PartsMismatch {
                    row_ptr_end,
                    deltas,
                    values,
                } => CsrInvariant::NnzMismatch {
                    row_ptr_end: row_ptr_end as usize,
                    cols: deltas,
                    values,
                }
                .into(),
                CompactInvariant::DeltaOutOfBounds { row, col, ncols } => {
                    CsrInvariant::ColumnOutOfBounds {
                        row,
                        col: u32::try_from(col).unwrap_or(u32::MAX),
                        ncols,
                    }
                    .into()
                }
                CompactInvariant::Ineligible { .. } => DecodeError::LengthOverflow {
                    field: "ncols",
                    declared: ncols_decl,
                },
            },
        )?;
        Ok((c, r.pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // Built from raw parts so the explicit -0.0 survives (triplet
        // construction drops zero sums), keeping the bit-identity check
        // meaningful.
        Csr::try_from_parts(
            3,
            4,
            vec![0, 2, 3, 4],
            vec![1, 3, 0, 2],
            vec![2.5, -0.0, f64::MIN_POSITIVE, 1e300],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        for m in [
            sample(),
            Csr::zeros(0, 0),
            Csr::zeros(5, 2),
            Csr::identity(7),
        ] {
            let bytes = m.encode();
            let (back, used) = Csr::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(back, m);
            // Bit-level equality, beyond PartialEq's -0.0 == 0.0.
            for r in 0..m.nrows() {
                let (ca, va) = m.row(r);
                let (cb, vb) = back.row(r);
                assert_eq!(ca, cb);
                for (x, y) in va.iter().zip(vb) {
                    assert_eq!(x.to_bits(), y.to_bits(), "row {r}");
                }
            }
        }
    }

    #[test]
    fn decode_consumes_only_its_own_bytes() {
        let a = sample();
        let b = Csr::identity(2);
        let mut bytes = a.encode();
        let first_len = bytes.len();
        b.encode_into(&mut bytes);
        let (da, used) = Csr::decode(&bytes).unwrap();
        assert_eq!(used, first_len);
        assert_eq!(da, a);
        let (db, used2) = Csr::decode(&bytes[used..]).unwrap();
        assert_eq!(db, b);
        assert_eq!(used + used2, bytes.len());
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let err = Csr::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    DecodeError::Truncated { .. } | DecodeError::LengthOverflow { .. }
                ),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bit_flips_fail_validation_or_shift_shape() {
        // Corrupting structural bytes must never yield a matrix that
        // passes validation *and* differs silently: decode either errs
        // or returns a matrix (whose checksum mismatch the snapshot
        // layer catches). Here we pin the structural cases.
        let m = sample();
        let bytes = m.encode();
        // Flip a row_ptr byte: monotonicity or nnz agreement breaks.
        let mut corrupt = bytes.clone();
        corrupt[24] ^= 0xff;
        assert!(Csr::decode(&corrupt).is_err());
        // Declare an absurd nnz: rejected before allocation.
        let mut huge = bytes.clone();
        huge[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Csr::decode(&huge).unwrap_err(),
            DecodeError::LengthOverflow { .. } | DecodeError::Truncated { .. }
        ));
    }

    #[test]
    fn compact_record_roundtrips_to_identical_bytes() {
        // encode → decode → encode must reproduce the exact byte stream
        // (and the expanded matrix must be bit-identical to the source).
        let m = sample();
        let c = CsrCompact::try_from_csr(&m).unwrap();
        let bytes = c.encode();
        let (back, used) = CsrCompact::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back.encode(), bytes);
        let expanded = back.try_to_csr().unwrap();
        for r in 0..m.nrows() {
            let (ca, va) = m.row(r);
            let (cb, vb) = expanded.row(r);
            assert_eq!(ca, cb);
            for (x, y) in va.iter().zip(vb) {
                assert_eq!(x.to_bits(), y.to_bits(), "row {r}");
            }
        }
    }

    #[test]
    fn decode_reads_both_record_formats() {
        // A stream holding a plain record then a compact one decodes
        // transparently through the same entry point.
        let a = sample();
        let b = Csr::identity(3);
        let mut bytes = a.encode();
        let plain_len = bytes.len();
        let auto_len = b.encode_auto_into(&mut bytes);
        // identity(3) is narrow, so auto chose the compact record —
        // strictly smaller than its plain encoding.
        assert!(auto_len < b.encode().len());
        let (da, used) = Csr::decode(&bytes).unwrap();
        assert_eq!((used, &da), (plain_len, &a));
        let (db, used2) = Csr::decode(&bytes[used..]).unwrap();
        assert_eq!((used + used2, &db), (bytes.len(), &b));
    }

    #[test]
    fn wide_matrices_fall_back_to_plain_record() {
        let wide = Csr::zeros(2, crate::compact::MAX_COMPACT_NCOLS + 1);
        let mut auto = Vec::new();
        wide.encode_auto_into(&mut auto);
        assert_eq!(auto, wide.encode());
        let (back, _) = Csr::decode(&auto).unwrap();
        assert_eq!(back, wide);
    }

    #[test]
    fn compact_truncation_is_detected_at_every_length() {
        let c = CsrCompact::try_from_csr(&sample()).unwrap();
        let bytes = c.encode();
        for cut in 0..bytes.len() {
            let err = Csr::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    DecodeError::Truncated { .. } | DecodeError::LengthOverflow { .. }
                ),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_compact_structure_is_rejected() {
        let c = CsrCompact::try_from_csr(&sample()).unwrap();
        let bytes = c.encode();
        // Flip a row_ptr byte (offset 32 = after magic + header): the
        // structural re-checks must reject it.
        let mut corrupt = bytes.clone();
        corrupt[32] ^= 0xff;
        assert!(Csr::decode(&corrupt).is_err());
        // A delta pushing a column past ncols is caught by the full CSR
        // re-validation on expansion.
        let mut oob = bytes.clone();
        let delta_at = 32 + 4 * 4; // 4 row-ptr u32s for 3 rows
        oob[delta_at] = 0xff;
        oob[delta_at + 1] = 0xff;
        assert!(matches!(
            Csr::decode(&oob).unwrap_err(),
            DecodeError::Invariant(CsrInvariant::ColumnOutOfBounds { .. })
        ));
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let bytes = sample().encode();
        let base = checksum(&bytes);
        assert_eq!(base, checksum(&bytes), "deterministic");
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 1;
            assert_ne!(base, checksum(&flipped), "byte {i}");
        }
        assert_ne!(checksum(b""), checksum(b"\0"));
    }
}
