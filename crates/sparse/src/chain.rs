//! Cost-ordered sparse matrix-chain multiplication.
//!
//! Commuting matrices are products of biadjacency chains (§4.3). The chain
//! product is associative, so the association order is a pure performance
//! choice — and a blind left fold can be orders of magnitude more expensive
//! than the optimum when a cheap join sits deep on the chain's right (e.g.
//! a wide hub label early in the walk). This module estimates each
//! intermediate product's nnz with the same independent-fan-out model the
//! core planner uses for physical-plan choice, runs the classic
//! matrix-chain DP over estimated Gustavson flops, and evaluates the chain
//! in the chosen order.
//!
//! The estimator is deliberately a function of the *sub-chain*, not of the
//! association order, so the DP's size table is well-defined.

use crate::accum::{SpgemmArena, COMPACT_CONVERT_COST, COMPACT_FLOP_DISCOUNT, COMPACT_MIN_REUSE};
use crate::budget::{failpoints, Budget, ExecError};
use crate::compact::MAX_COMPACT_NCOLS;
use crate::ops::try_spmm_with_budget_in;
use crate::Csr;
use repsim_obs::CounterHandle;

/// Planner metrics (`repsim.sparse.chain.*`).
static CHAIN_CALLS: CounterHandle = CounterHandle::new("repsim.sparse.chain.calls");
static CHAIN_JOINS: CounterHandle = CounterHandle::new("repsim.sparse.chain.joins");

/// Shape and occupancy statistics of one chain factor.
#[derive(Clone, Copy, Debug)]
pub struct ChainStats {
    /// Row count as a float (estimates only).
    pub rows: f64,
    /// Column count as a float.
    pub cols: f64,
    /// Stored-entry count as a float.
    pub nnz: f64,
}

impl ChainStats {
    /// Statistics of a concrete matrix.
    pub fn of(m: &Csr) -> ChainStats {
        ChainStats {
            rows: m.nrows() as f64,
            cols: m.ncols() as f64,
            nnz: m.nnz() as f64,
        }
    }
}

/// Estimated nnz of the product of the chain described by `stats`,
/// assuming independent-ish fan-out: running estimate
/// `nnz(AB) ≈ min(rows·cols, nnz(A)·nnz(B)/shared_dim)`.
///
/// This is the estimator the core planner applies to label chains; it is
/// lifted here so chain ordering and plan choice share one cost model.
/// Returns 0 for an empty chain.
pub fn estimate_chain_nnz(stats: &[ChainStats]) -> f64 {
    let rows = match stats.first() {
        Some(s) => s.rows,
        None => return 0.0,
    };
    let mut nnz = rows.max(1.0);
    for s in stats {
        nnz = (nnz * s.nnz / s.rows.max(1.0)).min(rows * s.cols).max(0.0);
    }
    nnz
}

/// A binary association order over chain indices `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainOrder {
    /// The chain factor at this index.
    Leaf(usize),
    /// The product of two sub-orders.
    Join(Box<ChainOrder>, Box<ChainOrder>),
}

impl ChainOrder {
    /// Renders the order as a parenthesized expression, e.g. `((0*1)*2)`.
    pub fn render(&self) -> String {
        match self {
            ChainOrder::Leaf(i) => i.to_string(),
            ChainOrder::Join(l, r) => format!("({}*{})", l.render(), r.render()),
        }
    }
}

/// The DP's output: an association order plus its estimated cost.
#[derive(Clone, Debug)]
pub struct ChainPlan {
    /// The chosen association order.
    pub order: ChainOrder,
    /// Estimated Gustavson flops of evaluating in that order.
    pub est_flops: f64,
    /// Estimated nnz of the final product.
    pub est_nnz: f64,
}

/// Chooses an association order for the chain by the standard O(n³)
/// matrix-chain DP, minimizing estimated Gustavson flops
/// `nnz(L)·nnz(R)/rows(R)` per join with [`estimate_chain_nnz`] sizing the
/// intermediates. Ties break toward the left fold (largest split point).
///
/// Panics on an empty chain.
pub fn plan_chain(stats: &[ChainStats]) -> ChainPlan {
    let n = stats.len();
    assert!(n > 0, "empty spmm chain");
    // est[i][j]: estimated nnz of the product of factors i..=j.
    let mut est = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in i..n {
            est[i][j] = estimate_chain_nnz(&stats[i..=j]);
        }
    }
    // cost[i][j]: minimal estimated flops for factors i..=j;
    // split[i][j]: the k achieving it (left part is i..=k).
    let mut cost = vec![vec![0.0f64; n]; n];
    let mut split = vec![vec![0usize; n]; n];
    for len in 2..=n {
        for i in 0..=n - len {
            let j = i + len - 1;
            let mut best = f64::INFINITY;
            let mut best_k = i;
            for k in i..j {
                // Gustavson flops of L·R ≈ nnz(L) · avg nnz per row of R.
                let flops = est[i][k] * est[k + 1][j] / stats[k + 1].rows.max(1.0);
                // Mirror the kernel's auto-compaction: a narrow right
                // operand re-scanned often enough is streamed delta-encoded
                // — cheaper per flop, plus a linear conversion pass.
                let rnnz = est[k + 1][j];
                let join = if stats[j].cols <= MAX_COMPACT_NCOLS as f64
                    && flops >= COMPACT_MIN_REUSE * rnnz
                {
                    flops * COMPACT_FLOP_DISCOUNT + rnnz * COMPACT_CONVERT_COST
                } else {
                    flops
                };
                let total = cost[i][k] + cost[k + 1][j] + join;
                if total <= best {
                    best = total;
                    best_k = k;
                }
            }
            cost[i][j] = best;
            split[i][j] = best_k;
        }
    }
    fn build(split: &[Vec<usize>], i: usize, j: usize) -> ChainOrder {
        if i == j {
            return ChainOrder::Leaf(i);
        }
        let k = split[i][j];
        ChainOrder::Join(
            Box::new(build(split, i, k)),
            Box::new(build(split, k + 1, j)),
        )
    }
    ChainPlan {
        order: build(&split, 0, n - 1),
        est_flops: cost[0][n - 1],
        est_nnz: est[0][n - 1],
    }
}

/// Either a borrowed chain factor or an owned intermediate product.
enum Factor<'a> {
    Borrowed(&'a Csr),
    Owned(Csr),
}

impl Factor<'_> {
    fn as_ref(&self) -> &Csr {
        match self {
            Factor::Borrowed(m) => m,
            Factor::Owned(m) => m,
        }
    }
}

fn eval<'a>(
    order: &ChainOrder,
    matrices: &[&'a Csr],
    threads: usize,
    budget: &Budget,
    arena: &mut SpgemmArena,
) -> Result<Factor<'a>, ExecError> {
    match order {
        ChainOrder::Leaf(i) => Ok(Factor::Borrowed(matrices[*i])),
        ChainOrder::Join(l, r) => {
            let left = eval(l, matrices, threads, budget, arena)?;
            let right = eval(r, matrices, threads, budget, arena)?;
            // Each join is a fresh cancellation point: a long chain aborts
            // between joins (and, via the banded kernel, within one).
            if budget.injected(failpoints::SPGEMM_CANCEL) {
                return Err(ExecError::Cancelled);
            }
            CHAIN_JOINS.add(1);
            // Every join reuses the one arena, so the chain performs a
            // single accumulator allocation per worker, not one per join.
            Ok(Factor::Owned(try_spmm_with_budget_in(
                left.as_ref(),
                right.as_ref(),
                threads,
                budget,
                arena,
            )?))
        }
    }
}

/// Multiplies a chain of sparse matrices in the order chosen by
/// [`plan_chain`], running each join on up to `threads` workers.
///
/// Panics on an empty chain or on any shape mismatch. Equal to the left
/// fold of [`crate::ops::spmm`] whenever the chain's values are exactly
/// representable integers (walk counts are — see the crate docs); for
/// general floats the results may differ by reassociation rounding.
pub fn spmm_chain_with_threads(matrices: &[&Csr], threads: usize) -> Csr {
    match try_spmm_chain_with_budget(matrices, threads, &Budget::unlimited()) {
        Ok(m) => m,
        #[allow(clippy::panic)] // documented infallible wrapper over the try_ API
        Err(e) => panic!("spmm chain: {e}"),
    }
}

/// Budget-governed [`spmm_chain_with_threads`]: shape mismatches and an
/// empty chain are returned as errors instead of panicking, every join
/// runs under `budget` (checked at row-band granularity inside the
/// kernel), and the budget is re-checked between joins so a cancelled
/// chain stops before its next intermediate product.
pub fn try_spmm_chain_with_budget(
    matrices: &[&Csr],
    threads: usize,
    budget: &Budget,
) -> Result<Csr, ExecError> {
    let mut arena = SpgemmArena::new();
    try_spmm_chain_with_budget_in(matrices, threads, budget, &mut arena)
}

/// [`try_spmm_chain_with_budget`] with caller-provided scratch: every
/// join of the chain (and, for callers like `metawalk`'s commuting
/// builds, every chain of a multi-chain construction) reuses the one
/// [`SpgemmArena`], so accumulator buffers are allocated once per worker
/// for the whole build instead of once per product.
pub fn try_spmm_chain_with_budget_in(
    matrices: &[&Csr],
    threads: usize,
    budget: &Budget,
    arena: &mut SpgemmArena,
) -> Result<Csr, ExecError> {
    if matrices.is_empty() {
        return Err(ExecError::InvalidInput {
            op: "spmm_chain",
            message: "empty spmm chain".to_owned(),
        });
    }
    // audit:allow(RA0101, shape validation over factor metadata only — no data touched)
    for pair in matrices.windows(2) {
        if pair[0].ncols() != pair[1].nrows() {
            return Err(ExecError::ShapeMismatch {
                op: "spmm_chain",
                lhs: (pair[0].nrows(), pair[0].ncols()),
                rhs: (pair[1].nrows(), pair[1].ncols()),
            });
        }
    }
    if matrices.len() == 1 {
        budget.check()?;
        return Ok(matrices[0].clone());
    }
    CHAIN_CALLS.add(1);
    let mut chain_span = repsim_obs::span("repsim.sparse.chain");
    let plan = {
        let mut plan_span = repsim_obs::span("repsim.sparse.chain.plan");
        let stats: Vec<ChainStats> = matrices.iter().map(|m| ChainStats::of(m)).collect();
        let plan = plan_chain(&stats);
        if plan_span.is_active() {
            plan_span.attr("n", matrices.len());
            plan_span.attr("order", plan.order.render());
            plan_span.attr("est_flops", plan.est_flops);
            plan_span.attr("est_nnz", plan.est_nnz);
        }
        plan
    };
    let out = match eval(&plan.order, matrices, threads, budget, arena)? {
        Factor::Owned(m) => m,
        Factor::Borrowed(m) => m.clone(),
    };
    if chain_span.is_active() {
        chain_span.attr("n", matrices.len());
        chain_span.attr("order", plan.order.render());
        chain_span.attr("out_nnz", out.nnz());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::spmm;

    fn stats(dims: &[(usize, usize, usize)]) -> Vec<ChainStats> {
        dims.iter()
            .map(|&(r, c, nnz)| ChainStats {
                rows: r as f64,
                cols: c as f64,
                nnz: nnz as f64,
            })
            .collect()
    }

    #[test]
    fn estimate_clamps_to_dense_and_zero() {
        // nnz can never exceed rows·cols of the product...
        let s = stats(&[(4, 1000, 4000), (1000, 4, 4000)]);
        assert!(estimate_chain_nnz(&s) <= 16.0);
        // ...and an empty factor zeroes the chain.
        let s = stats(&[(4, 8, 0), (8, 4, 32)]);
        assert_eq!(estimate_chain_nnz(&s), 0.0);
    }

    #[test]
    fn dp_avoids_expensive_left_fold() {
        // A·B joins two dense square factors (~10⁶ est. flops); C collapses
        // everything to one column, making B·C and then A·(B·C) nearly
        // free. The DP must start from the right.
        let s = stats(&[
            (100, 100, 10_000), // A: dense
            (100, 100, 10_000), // B: dense
            (100, 1, 100),      // C: a single column
        ]);
        let plan = plan_chain(&s);
        assert_eq!(plan.order.render(), "(0*(1*2))");
    }

    #[test]
    fn single_factor_plan_is_a_leaf() {
        let plan = plan_chain(&stats(&[(3, 4, 5)]));
        assert_eq!(plan.order, ChainOrder::Leaf(0));
        assert_eq!(plan.est_flops, 0.0);
    }

    #[test]
    fn budgeted_chain_reports_shape_mismatch_and_cancellation() {
        let a = crate::par::tests::sample(8, 5, 31);
        let b = crate::par::tests::sample(5, 6, 32);
        let bad = crate::par::tests::sample(9, 4, 33);
        assert!(matches!(
            try_spmm_chain_with_budget(&[&a, &bad], 1, &Budget::unlimited()).unwrap_err(),
            ExecError::ShapeMismatch {
                op: "spmm_chain",
                ..
            }
        ));
        let _guard = failpoints::scoped(&[failpoints::SPGEMM_CANCEL]);
        let inject = Budget::unlimited().with_fault_injection();
        assert_eq!(
            try_spmm_chain_with_budget(&[&a, &b], 1, &inject).unwrap_err(),
            ExecError::Cancelled
        );
        // A single-factor chain has no join, so no mid-chain cancellation
        // fires — but an explicit cancel flag still does.
        assert!(try_spmm_chain_with_budget(&[&a], 1, &inject).is_ok());
    }

    #[test]
    fn empty_chain_is_invalid_input_not_a_panic() {
        let e = try_spmm_chain_with_budget(&[], 1, &Budget::unlimited()).unwrap_err();
        assert_eq!(
            e,
            ExecError::InvalidInput {
                op: "spmm_chain",
                message: "empty spmm chain".to_owned(),
            }
        );
        assert_eq!(e.to_string(), "spmm_chain: empty spmm chain");
        assert!(!e.is_exhaustion());
    }

    #[test]
    fn planned_chain_equals_left_fold_on_integer_matrices() {
        let a = crate::par::tests::sample(30, 12, 21);
        let b = crate::par::tests::sample(12, 40, 22);
        let c = crate::par::tests::sample(40, 9, 23);
        let d = crate::par::tests::sample(9, 17, 24);
        let chain = [&a, &b, &c, &d];
        let folded = chain[1..].iter().fold(a.clone(), |acc, m| spmm(&acc, m));
        for threads in [1, 4] {
            assert_eq!(spmm_chain_with_threads(&chain, threads), folded);
        }
    }
}
