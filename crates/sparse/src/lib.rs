#![warn(missing_docs)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::indexing_slicing
    )
)]

//! Sparse and dense linear algebra for `repsim`.
//!
//! The similarity search algorithms in this workspace are all, at bottom,
//! matrix computations over adjacency structure:
//!
//! * PathSim / R-PathSim multiply chains of *biadjacency* matrices into
//!   commuting matrices ([`Csr`] and [`ops::spmm`]);
//! * R-PathSim's informative-walk restriction subtracts diagonals between
//!   multiplications ([`Csr::subtract_diagonal`]);
//! * the \*-label extension binarizes segment products ([`Csr::binarized`]);
//! * random walk with restart is a sparse power iteration
//!   ([`ops::matvec`]); and
//! * SimRank iterates `S ← max(C · Wᵀ S W, I)` over a dense score matrix
//!   ([`Dense`] with [`ops::dense_sparse_mul`] / [`ops::sparse_t_dense_mul`]).
//!
//! Values are stored as `f64`. Walk *counts* are integers; `f64` arithmetic
//! on integers is exact below 2^53, far beyond any count produced by the
//! meta-walk lengths used in the paper, so equality of counts across database
//! representations (Theorems 4.2, 4.3, 5.2, 5.3) can be asserted exactly.
//!
//! The crate has no dependencies and makes no attempt at SIMD heroics; it
//! follows the usual CSR discipline (sorted column indices, no explicit
//! zeros after construction via [`Csr::from_triplets`], dense accumulator
//! for row-by-row spmm).
//!
//! Execution is resource-governed: every kernel has a fallible `try_*`
//! variant that takes a [`Budget`] (wall-clock deadline, output-size cap,
//! cooperative cancellation) and returns a structured [`ExecError`]
//! instead of panicking; see [`budget`] for the taxonomy and the
//! fault-injection failpoints used to test the abort paths.

pub mod accum;
pub mod binio;
pub mod budget;
pub mod chain;
pub mod compact;
pub mod csr;
pub mod dense;
pub mod ops;
pub mod par;
pub mod parallelism;
pub mod vector;

pub use accum::{
    accumulator, compact_mode, set_accumulator, set_compact_mode, Accumulator, CompactMode,
    SpgemmArena,
};
pub use binio::{checksum, DecodeError};
pub use budget::{Budget, ExecError};
pub use compact::{CompactInvariant, CsrCompact};
pub use csr::{Csr, CsrInvariant};
pub use dense::Dense;
pub use parallelism::Parallelism;
