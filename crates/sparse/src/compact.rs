//! Succinct CSR: narrowed, delta-encoded column storage.
//!
//! [`CsrCompact`] stores the same matrix as [`Csr`] in ~60% of the
//! column-structure bytes: row pointers narrowed to `u32` and column
//! indices as `u16` *deltas* from the previous column in the row (the
//! first entry of a row is its delta from column 0). Values stay `f64`
//! bit-for-bit — the representation is lossless, so a round trip through
//! it is bit-identical, which is what lets the SpGEMM kernel stream a
//! compacted operand and still produce output equal to the plain kernel.
//!
//! Eligibility is a property of the shape: every column must fit a
//! `u16` delta (`ncols <= 65_536`; deltas of a strictly increasing row
//! are then `<= 65_535`) and the entry count must fit the narrowed row
//! pointers (`nnz <= u32::MAX`). [`CsrCompact::try_from_csr`] returns
//! `None` otherwise, and callers fall back to the plain representation.
//!
//! Decode happens *on the fly* in the kernel inner loops (a running
//! prefix sum, one add per entry) — the compact form is never expanded
//! to a plain CSR on the hot path. `binio` persists it as a versioned
//! record type so snapshots of eligible matrices shrink too.

use crate::csr::Csr;

/// The widest matrix whose columns delta-encode into `u16`.
pub const MAX_COMPACT_NCOLS: usize = u16::MAX as usize + 1;

/// A structural invariant of the compact representation, violated by
/// untrusted raw parts. Mirrors [`crate::csr::CsrInvariant`] for the
/// delta-encoded layout; `repsim check` maps these onto the stable
/// `RS0406`–`RS0408` codes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompactInvariant {
    /// `row_ptr.len()` is not `nrows + 1`, or it does not start at 0.
    RowPtrShape {
        /// `nrows + 1`.
        expected: usize,
        /// Actual length.
        found: usize,
        /// The stored first offset (must be 0).
        start: u32,
    },
    /// `row_ptr` decreases between two consecutive rows.
    RowPtrNotMonotone {
        /// First row whose extent is negative.
        row: usize,
        /// `row_ptr[row]`.
        lo: u32,
        /// `row_ptr[row + 1]`.
        hi: u32,
    },
    /// `row_ptr[nrows]`, the delta count and the value count disagree.
    PartsMismatch {
        /// `row_ptr[nrows]` (0 when `row_ptr` is empty).
        row_ptr_end: u32,
        /// `col_delta.len()`.
        deltas: usize,
        /// `values.len()`.
        values: usize,
    },
    /// A row's deltas prefix-sum past the last column: the record does
    /// not decode back to in-bounds column indices.
    DeltaOutOfBounds {
        /// Row holding the offending entry.
        row: usize,
        /// The decoded (out-of-range) column.
        col: u64,
        /// The matrix column count.
        ncols: usize,
    },
    /// The declared shape cannot be represented compactly at all
    /// (`ncols` too wide for `u16` deltas or `nnz` past the `u32` row
    /// pointers).
    Ineligible {
        /// The declared column count.
        ncols: usize,
        /// The stored-entry count.
        nnz: usize,
    },
}

impl std::fmt::Display for CompactInvariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompactInvariant::RowPtrShape {
                expected,
                found,
                start,
            } => write!(
                f,
                "compact row_ptr malformed: expected length {expected} starting at 0, \
                 got length {found} starting at {start}"
            ),
            CompactInvariant::RowPtrNotMonotone { row, lo, hi } => {
                write!(f, "compact row_ptr decreases at row {row}: {lo} > {hi}")
            }
            CompactInvariant::PartsMismatch {
                row_ptr_end,
                deltas,
                values,
            } => write!(
                f,
                "compact parts disagree: row_ptr ends at {row_ptr_end}, \
                 {deltas} column deltas, {values} values"
            ),
            CompactInvariant::DeltaOutOfBounds { row, col, ncols } => write!(
                f,
                "row {row} deltas decode to column {col}, past the {ncols}-column shape"
            ),
            CompactInvariant::Ineligible { ncols, nnz } => write!(
                f,
                "shape ineligible for compact narrowing: ncols {ncols} (max \
                 {MAX_COMPACT_NCOLS}) or nnz {nnz} (max {})",
                u32::MAX
            ),
        }
    }
}

/// A sparse matrix in delta-encoded compressed sparse row format.
///
/// See the module docs for the layout; construct via
/// [`CsrCompact::try_from_csr`] and convert back with
/// [`CsrCompact::to_csr`]. Both directions are lossless.
#[derive(Clone, PartialEq)]
pub struct CsrCompact {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<u32>,
    /// Per-entry column deltas: entry `i` of row `r` stores
    /// `col[i] - col[i-1]` (`col[-1]` taken as 0), so columns decode by
    /// running prefix sum restarted at each row.
    col_delta: Vec<u16>,
    values: Vec<f64>,
}

impl std::fmt::Debug for CsrCompact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CsrCompact({}x{}, nnz={})",
            self.nrows,
            self.ncols,
            self.nnz()
        )
    }
}

impl CsrCompact {
    /// Whether a matrix of this shape can be represented compactly.
    pub fn eligible(ncols: usize, nnz: usize) -> bool {
        ncols <= MAX_COMPACT_NCOLS && nnz <= u32::MAX as usize
    }

    /// Compacts `m`, or returns `None` when the shape is ineligible
    /// (too many columns for `u16` deltas or too many entries for `u32`
    /// row pointers).
    pub fn try_from_csr(m: &Csr) -> Option<CsrCompact> {
        if !Self::eligible(m.ncols(), m.nnz()) {
            return None;
        }
        let mut row_ptr = Vec::with_capacity(m.nrows() + 1);
        let mut col_delta = Vec::with_capacity(m.nnz());
        let mut values = Vec::with_capacity(m.nnz());
        row_ptr.push(0u32);
        for r in 0..m.nrows() {
            let (cols, vals) = m.row(r);
            let mut prev = 0u32;
            for (&c, &v) in cols.iter().zip(vals) {
                // Strictly increasing in-bounds columns (a CSR invariant)
                // keep every delta within u16.
                col_delta.push((c - prev) as u16);
                values.push(v);
                prev = c;
            }
            row_ptr.push(col_delta.len() as u32);
        }
        Some(CsrCompact {
            nrows: m.nrows(),
            ncols: m.ncols(),
            row_ptr,
            col_delta,
            values,
        })
    }

    /// Expands back to plain CSR parts `(row_ptr, col_idx, values)` by
    /// prefix-summing the deltas. Values are moved/copied verbatim, so
    /// the expansion is bit-lossless.
    fn expand(&self) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
        let row_ptr: Vec<usize> = self.row_ptr.iter().map(|&p| p as usize).collect();
        let mut col_idx = Vec::with_capacity(self.col_delta.len());
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let mut prev = 0u32;
            for &d in &self.col_delta[lo..hi] {
                prev += u32::from(d);
                col_idx.push(prev);
            }
        }
        (row_ptr, col_idx, self.values.clone())
    }

    /// Expands back to a plain [`Csr`], bit-identical to the compacted
    /// input. Only call on values built by [`CsrCompact::try_from_csr`]
    /// (whose invariants came from a valid `Csr`); decoded untrusted
    /// data goes through [`CsrCompact::try_to_csr`] instead.
    pub fn to_csr(&self) -> Csr {
        let (row_ptr, col_idx, values) = self.expand();
        Csr::from_parts(self.nrows, self.ncols, row_ptr, col_idx, values)
    }

    /// Fallible expansion for untrusted (deserialized) data: the plain
    /// parts are re-checked against every CSR structural invariant.
    pub fn try_to_csr(&self) -> Result<Csr, crate::csr::CsrInvariant> {
        let (row_ptr, col_idx, values) = self.expand();
        Csr::try_from_parts(self.nrows, self.ncols, row_ptr, col_idx, values)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_delta.len()
    }

    /// Heap bytes of the three arrays — the number the succinct format
    /// is trying to shrink (plain CSR: `8·(nrows+1) + 12·nnz`).
    pub fn heap_bytes(&self) -> usize {
        self.row_ptr.len() * 4 + self.col_delta.len() * 2 + self.values.len() * 8
    }

    /// The raw parts `(row_ptr, col_delta, values)` — the kernel's
    /// zero-copy view for on-the-fly decode.
    pub(crate) fn raw(&self) -> (&[u32], &[u16], &[f64]) {
        (&self.row_ptr, &self.col_delta, &self.values)
    }

    /// Builds from untrusted raw parts (deserialized records, text
    /// fixtures), naming the first violated invariant. Column
    /// *sortedness* is not re-checked here — a zero delta after the
    /// first entry of a row decodes to a duplicate column, which
    /// [`CsrCompact::try_to_csr`] rejects — but decodability (every
    /// prefix sum lands inside the shape) is, so a hostile record
    /// cannot reach the kernels' on-the-fly decode loops.
    pub fn try_from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<u32>,
        col_delta: Vec<u16>,
        values: Vec<f64>,
    ) -> Result<CsrCompact, CompactInvariant> {
        if row_ptr.len() != nrows + 1 || row_ptr.first() != Some(&0) {
            return Err(CompactInvariant::RowPtrShape {
                expected: nrows + 1,
                found: row_ptr.len(),
                start: row_ptr.first().copied().unwrap_or(0),
            });
        }
        if let Some(row) = row_ptr.windows(2).position(|w| w[0] > w[1]) {
            return Err(CompactInvariant::RowPtrNotMonotone {
                row,
                lo: row_ptr[row],
                hi: row_ptr[row + 1],
            });
        }
        if row_ptr.last().copied() != Some(col_delta.len() as u32)
            || col_delta.len() != values.len()
        {
            return Err(CompactInvariant::PartsMismatch {
                row_ptr_end: row_ptr.last().copied().unwrap_or(0),
                deltas: col_delta.len(),
                values: values.len(),
            });
        }
        if !Self::eligible(ncols, col_delta.len()) {
            return Err(CompactInvariant::Ineligible {
                ncols,
                nnz: col_delta.len(),
            });
        }
        for r in 0..nrows {
            let (lo, hi) = (row_ptr[r] as usize, row_ptr[r + 1] as usize);
            let decoded: u64 = col_delta[lo..hi].iter().map(|&d| u64::from(d)).sum();
            if hi > lo && decoded >= ncols as u64 {
                return Err(CompactInvariant::DeltaOutOfBounds {
                    row: r,
                    col: decoded,
                    ncols,
                });
            }
        }
        Ok(CsrCompact {
            nrows,
            ncols,
            row_ptr,
            col_delta,
            values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_triplets(
            4,
            7,
            vec![
                (0, 0, 1.0),
                (0, 6, 2.0),
                (1, 3, -3.5),
                (3, 0, 4.0),
                (3, 1, 5.0),
                (3, 6, 6.0),
            ],
        )
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let m = sample();
        let c = CsrCompact::try_from_csr(&m).expect("eligible");
        assert_eq!((c.nrows(), c.ncols(), c.nnz()), (4, 7, 6));
        let back = c.to_csr();
        assert_eq!(back, m);
        for r in 0..m.nrows() {
            let (ca, va) = m.row(r);
            let (cb, vb) = back.row(r);
            assert_eq!(ca, cb);
            for (x, y) in va.iter().zip(vb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn negative_zero_survives() {
        let m = Csr::try_from_parts(1, 2, vec![0, 1], vec![1], vec![-0.0]).unwrap();
        let c = CsrCompact::try_from_csr(&m).unwrap();
        let back = c.to_csr();
        assert_eq!(back.row(0).1[0].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn wide_matrices_are_ineligible() {
        assert!(!CsrCompact::eligible(MAX_COMPACT_NCOLS + 1, 0));
        assert!(CsrCompact::eligible(MAX_COMPACT_NCOLS, 10));
        let wide = Csr::zeros(2, MAX_COMPACT_NCOLS + 1);
        assert!(CsrCompact::try_from_csr(&wide).is_none());
    }

    #[test]
    fn boundary_columns_encode() {
        // First and last representable columns, adjacent duplicates of
        // the maximum delta.
        let n = MAX_COMPACT_NCOLS;
        let m = Csr::from_triplets(1, n, vec![(0, 0, 1.0), (0, (n - 1) as u32, 2.0)]);
        let c = CsrCompact::try_from_csr(&m).unwrap();
        assert_eq!(c.to_csr(), m);
    }

    #[test]
    fn heap_bytes_shrink() {
        let m = sample();
        let c = CsrCompact::try_from_csr(&m).unwrap();
        let plain = (m.nrows() + 1) * 8 + m.nnz() * 12;
        assert!(c.heap_bytes() < plain, "{} vs {plain}", c.heap_bytes());
    }

    #[test]
    fn try_from_raw_accepts_consistent_parts() {
        assert!(CsrCompact::try_from_raw(1, 4, vec![0, 1], vec![1], vec![1.0]).is_ok());
        // cols/values disagree.
        assert!(CsrCompact::try_from_raw(1, 4, vec![0, 1], vec![1], vec![]).is_err());
    }

    #[test]
    fn try_from_raw_names_the_violated_invariant() {
        let shape = CsrCompact::try_from_raw(2, 4, vec![0, 1], vec![1], vec![1.0]);
        assert!(
            matches!(
                shape,
                Err(CompactInvariant::RowPtrShape {
                    expected: 3,
                    found: 2,
                    ..
                })
            ),
            "{shape:?}"
        );
        let mono = CsrCompact::try_from_raw(2, 4, vec![0, 1, 0], vec![1], vec![1.0]);
        assert!(
            matches!(
                mono,
                Err(CompactInvariant::RowPtrNotMonotone { row: 1, .. })
            ),
            "{mono:?}"
        );
        let parts = CsrCompact::try_from_raw(1, 4, vec![0, 2], vec![1], vec![1.0]);
        assert!(
            matches!(
                parts,
                Err(CompactInvariant::PartsMismatch { deltas: 1, .. })
            ),
            "{parts:?}"
        );
        let wide =
            CsrCompact::try_from_raw(1, MAX_COMPACT_NCOLS + 1, vec![0, 1], vec![1], vec![1.0]);
        assert!(
            matches!(wide, Err(CompactInvariant::Ineligible { .. })),
            "{wide:?}"
        );
    }

    #[test]
    fn try_from_raw_rejects_undecodable_deltas() {
        // Row 0 decodes to column 3 + 2 = 5 in a 4-column shape.
        let oob = CsrCompact::try_from_raw(1, 4, vec![0, 2], vec![3, 2], vec![1.0, 2.0]);
        assert!(
            matches!(
                oob,
                Err(CompactInvariant::DeltaOutOfBounds {
                    row: 0,
                    col: 5,
                    ncols: 4
                })
            ),
            "{oob:?}"
        );
        // The same deltas fit once the shape is wide enough.
        assert!(CsrCompact::try_from_raw(1, 6, vec![0, 2], vec![3, 2], vec![1.0, 2.0]).is_ok());
        // A boundary delta landing exactly on the last column is fine.
        let edge = CsrCompact::try_from_raw(1, 4, vec![0, 1], vec![3], vec![1.0]);
        assert!(edge.is_ok(), "{edge:?}");
    }
}
