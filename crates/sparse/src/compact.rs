//! Succinct CSR: narrowed, delta-encoded column storage.
//!
//! [`CsrCompact`] stores the same matrix as [`Csr`] in ~60% of the
//! column-structure bytes: row pointers narrowed to `u32` and column
//! indices as `u16` *deltas* from the previous column in the row (the
//! first entry of a row is its delta from column 0). Values stay `f64`
//! bit-for-bit — the representation is lossless, so a round trip through
//! it is bit-identical, which is what lets the SpGEMM kernel stream a
//! compacted operand and still produce output equal to the plain kernel.
//!
//! Eligibility is a property of the shape: every column must fit a
//! `u16` delta (`ncols <= 65_536`; deltas of a strictly increasing row
//! are then `<= 65_535`) and the entry count must fit the narrowed row
//! pointers (`nnz <= u32::MAX`). [`CsrCompact::try_from_csr`] returns
//! `None` otherwise, and callers fall back to the plain representation.
//!
//! Decode happens *on the fly* in the kernel inner loops (a running
//! prefix sum, one add per entry) — the compact form is never expanded
//! to a plain CSR on the hot path. `binio` persists it as a versioned
//! record type so snapshots of eligible matrices shrink too.

use crate::csr::Csr;

/// The widest matrix whose columns delta-encode into `u16`.
pub const MAX_COMPACT_NCOLS: usize = u16::MAX as usize + 1;

/// A sparse matrix in delta-encoded compressed sparse row format.
///
/// See the module docs for the layout; construct via
/// [`CsrCompact::try_from_csr`] and convert back with
/// [`CsrCompact::to_csr`]. Both directions are lossless.
#[derive(Clone, PartialEq)]
pub struct CsrCompact {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<u32>,
    /// Per-entry column deltas: entry `i` of row `r` stores
    /// `col[i] - col[i-1]` (`col[-1]` taken as 0), so columns decode by
    /// running prefix sum restarted at each row.
    col_delta: Vec<u16>,
    values: Vec<f64>,
}

impl std::fmt::Debug for CsrCompact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CsrCompact({}x{}, nnz={})",
            self.nrows,
            self.ncols,
            self.nnz()
        )
    }
}

impl CsrCompact {
    /// Whether a matrix of this shape can be represented compactly.
    pub fn eligible(ncols: usize, nnz: usize) -> bool {
        ncols <= MAX_COMPACT_NCOLS && nnz <= u32::MAX as usize
    }

    /// Compacts `m`, or returns `None` when the shape is ineligible
    /// (too many columns for `u16` deltas or too many entries for `u32`
    /// row pointers).
    pub fn try_from_csr(m: &Csr) -> Option<CsrCompact> {
        if !Self::eligible(m.ncols(), m.nnz()) {
            return None;
        }
        let mut row_ptr = Vec::with_capacity(m.nrows() + 1);
        let mut col_delta = Vec::with_capacity(m.nnz());
        let mut values = Vec::with_capacity(m.nnz());
        row_ptr.push(0u32);
        for r in 0..m.nrows() {
            let (cols, vals) = m.row(r);
            let mut prev = 0u32;
            for (&c, &v) in cols.iter().zip(vals) {
                // Strictly increasing in-bounds columns (a CSR invariant)
                // keep every delta within u16.
                col_delta.push((c - prev) as u16);
                values.push(v);
                prev = c;
            }
            row_ptr.push(col_delta.len() as u32);
        }
        Some(CsrCompact {
            nrows: m.nrows(),
            ncols: m.ncols(),
            row_ptr,
            col_delta,
            values,
        })
    }

    /// Expands back to plain CSR parts `(row_ptr, col_idx, values)` by
    /// prefix-summing the deltas. Values are moved/copied verbatim, so
    /// the expansion is bit-lossless.
    fn expand(&self) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
        let row_ptr: Vec<usize> = self.row_ptr.iter().map(|&p| p as usize).collect();
        let mut col_idx = Vec::with_capacity(self.col_delta.len());
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let mut prev = 0u32;
            for &d in &self.col_delta[lo..hi] {
                prev += u32::from(d);
                col_idx.push(prev);
            }
        }
        (row_ptr, col_idx, self.values.clone())
    }

    /// Expands back to a plain [`Csr`], bit-identical to the compacted
    /// input. Only call on values built by [`CsrCompact::try_from_csr`]
    /// (whose invariants came from a valid `Csr`); decoded untrusted
    /// data goes through [`CsrCompact::try_to_csr`] instead.
    pub fn to_csr(&self) -> Csr {
        let (row_ptr, col_idx, values) = self.expand();
        Csr::from_parts(self.nrows, self.ncols, row_ptr, col_idx, values)
    }

    /// Fallible expansion for untrusted (deserialized) data: the plain
    /// parts are re-checked against every CSR structural invariant.
    pub fn try_to_csr(&self) -> Result<Csr, crate::csr::CsrInvariant> {
        let (row_ptr, col_idx, values) = self.expand();
        Csr::try_from_parts(self.nrows, self.ncols, row_ptr, col_idx, values)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_delta.len()
    }

    /// Heap bytes of the three arrays — the number the succinct format
    /// is trying to shrink (plain CSR: `8·(nrows+1) + 12·nnz`).
    pub fn heap_bytes(&self) -> usize {
        self.row_ptr.len() * 4 + self.col_delta.len() * 2 + self.values.len() * 8
    }

    /// The raw parts `(row_ptr, col_delta, values)` — the kernel's
    /// zero-copy view for on-the-fly decode.
    pub(crate) fn raw(&self) -> (&[u32], &[u16], &[f64]) {
        (&self.row_ptr, &self.col_delta, &self.values)
    }

    /// Builds from raw parts, used by `binio` decoding. Returns `None`
    /// when the parts are structurally inconsistent (the caller maps
    /// this to its own error type); full CSR invariants are re-checked
    /// by converting through [`Csr::try_from_parts`] in `binio`.
    pub(crate) fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<u32>,
        col_delta: Vec<u16>,
        values: Vec<f64>,
    ) -> Option<CsrCompact> {
        if row_ptr.len() != nrows + 1
            || row_ptr.first() != Some(&0)
            || row_ptr.last().copied() != Some(col_delta.len() as u32)
            || col_delta.len() != values.len()
            || !Self::eligible(ncols, col_delta.len())
        {
            return None;
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        Some(CsrCompact {
            nrows,
            ncols,
            row_ptr,
            col_delta,
            values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_triplets(
            4,
            7,
            vec![
                (0, 0, 1.0),
                (0, 6, 2.0),
                (1, 3, -3.5),
                (3, 0, 4.0),
                (3, 1, 5.0),
                (3, 6, 6.0),
            ],
        )
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let m = sample();
        let c = CsrCompact::try_from_csr(&m).expect("eligible");
        assert_eq!((c.nrows(), c.ncols(), c.nnz()), (4, 7, 6));
        let back = c.to_csr();
        assert_eq!(back, m);
        for r in 0..m.nrows() {
            let (ca, va) = m.row(r);
            let (cb, vb) = back.row(r);
            assert_eq!(ca, cb);
            for (x, y) in va.iter().zip(vb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn negative_zero_survives() {
        let m = Csr::try_from_parts(1, 2, vec![0, 1], vec![1], vec![-0.0]).unwrap();
        let c = CsrCompact::try_from_csr(&m).unwrap();
        let back = c.to_csr();
        assert_eq!(back.row(0).1[0].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn wide_matrices_are_ineligible() {
        assert!(!CsrCompact::eligible(MAX_COMPACT_NCOLS + 1, 0));
        assert!(CsrCompact::eligible(MAX_COMPACT_NCOLS, 10));
        let wide = Csr::zeros(2, MAX_COMPACT_NCOLS + 1);
        assert!(CsrCompact::try_from_csr(&wide).is_none());
    }

    #[test]
    fn boundary_columns_encode() {
        // First and last representable columns, adjacent duplicates of
        // the maximum delta.
        let n = MAX_COMPACT_NCOLS;
        let m = Csr::from_triplets(1, n, vec![(0, 0, 1.0), (0, (n - 1) as u32, 2.0)]);
        let c = CsrCompact::try_from_csr(&m).unwrap();
        assert_eq!(c.to_csr(), m);
    }

    #[test]
    fn heap_bytes_shrink() {
        let m = sample();
        let c = CsrCompact::try_from_csr(&m).unwrap();
        let plain = (m.nrows() + 1) * 8 + m.nnz() * 12;
        assert!(c.heap_bytes() < plain, "{} vs {plain}", c.heap_bytes());
    }

    #[test]
    fn from_raw_rejects_inconsistent_parts() {
        assert!(CsrCompact::from_raw(1, 4, vec![0, 1], vec![1], vec![1.0]).is_some());
        // Wrong row_ptr length.
        assert!(CsrCompact::from_raw(2, 4, vec![0, 1], vec![1], vec![1.0]).is_none());
        // row_ptr not ending at nnz.
        assert!(CsrCompact::from_raw(1, 4, vec![0, 2], vec![1], vec![1.0]).is_none());
        // Decreasing row_ptr.
        assert!(CsrCompact::from_raw(2, 4, vec![0, 1, 0], vec![1], vec![1.0]).is_none());
        // cols/values disagree.
        assert!(CsrCompact::from_raw(1, 4, vec![0, 1], vec![1], vec![]).is_none());
    }
}
