//! Serving-path workload generation, traffic capture and replay.
//!
//! Three pieces, wired together by `repsim bench serve`:
//!
//! 1. [`generate`] — a seeded, Zipf-skewed request mix (rank queries
//!    over one meta-walk, mutation churn, a deadline distribution) with
//!    exponential inter-arrival times. Same seed, same graph → the
//!    byte-identical request sequence, every time.
//! 2. [`run_requests`] — a client that drives the mix against a live
//!    server over one connection, pacing sends open-loop (at the
//!    recorded arrival offsets) or closed-loop (each send gated on the
//!    previous response), honouring `retry_after_ms` hints from
//!    `overloaded` sheds with the serve breaker's backoff discipline
//!    (doubling, deterministic xorshift64 jitter in `[0, wait/4]`),
//!    and optionally recording every admitted request to a
//!    [`repsim_serve::capture`] file.
//! 3. [`replay`] — re-runs a capture and reports latency quantiles,
//!    shed/degraded/exhausted rates and a FNV digest over the rank
//!    responses, so two replays of the same capture against fresh
//!    servers can assert bit-identical rankings (the paper's
//!    representation-stability claim, exercised end-to-end through the
//!    serving stack).
//!
//! Latency is measured per attempt (send → response line); retry
//! backoff waits are excluded. The digest covers successful rank
//! responses in request order — the transport keeps responses in
//! request order on a single connection, so the digest is
//! deterministic for a deterministic server.

use std::collections::BTreeMap;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

use rand::Rng as _;
use repsim_datasets::rng::{seeded, ZipfSampler};
use repsim_graph::Graph;
use repsim_obs::json::{self, Json};
use repsim_obs::{CounterHandle, HistogramHandle};
use repsim_serve::capture::{self, CaptureWriter};

static REPLAY_SENT: CounterHandle = CounterHandle::new("repsim.bench.replay.sent");
static REPLAY_OK: CounterHandle = CounterHandle::new("repsim.bench.replay.ok");
static REPLAY_SHED: CounterHandle = CounterHandle::new("repsim.bench.replay.shed");
static REPLAY_RETRIES: CounterHandle = CounterHandle::new("repsim.bench.replay.retries");
static REPLAY_RETRY_EXHAUSTED: CounterHandle =
    CounterHandle::new("repsim.bench.replay.retry_exhausted");
static REPLAY_DEGRADED: CounterHandle = CounterHandle::new("repsim.bench.replay.degraded");
static REPLAY_EXHAUSTED: CounterHandle = CounterHandle::new("repsim.bench.replay.exhausted");
static REPLAY_LATENCY: HistogramHandle = HistogramHandle::new("repsim.bench.replay.latency_ns");

/// Knobs for [`generate`]. Defaults model a read-heavy cache-friendly
/// mix: Zipf-skewed queries, 10% mutation churn, a spread of deadlines.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Master seed: workload identity.
    pub seed: u64,
    /// Requests to generate.
    pub requests: usize,
    /// Mean arrival rate (requests/second) for the exponential
    /// inter-arrival process; `<= 0` means back-to-back arrivals.
    pub rate_per_s: f64,
    /// Zipf exponent over the source entities (0 = uniform).
    pub zipf_exponent: f64,
    /// Fraction of requests that are mutations (`0.0..=1.0`).
    pub mutate_ratio: f64,
    /// Deadline choices, sampled uniformly per request; empty = no
    /// per-request deadlines.
    pub deadlines_ms: Vec<u64>,
    /// Top-k for rank requests.
    pub k: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 42,
            requests: 200,
            rate_per_s: 200.0,
            zipf_exponent: 1.0,
            mutate_ratio: 0.1,
            deadlines_ms: vec![100, 250, 1000],
            k: 5,
        }
    }
}

/// One generated (or replayed) request: when to send it and what to
/// send.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenRequest {
    /// Microseconds after workload start this request is due.
    pub arrival_offset_us: u64,
    /// The deadline it carries (already encoded in `line` too; kept
    /// separate for the capture record).
    pub deadline_ms: Option<u64>,
    /// The request as one newline-delimited-JSON line (no newline).
    pub line: String,
}

/// Generates the request mix for `walk` over `g`. The walk's first
/// label is the query source (Zipf-skewed over its entities); mutation
/// churn cycles add-entity → add-edge → remove-edge between the walk's
/// first two labels so the graph returns to its starting shape.
pub fn generate(g: &Graph, walk: &str, cfg: &WorkloadConfig) -> Result<Vec<GenRequest>, String> {
    let labels: Vec<&str> = walk.split_whitespace().collect();
    let (&src, &partner) = match (labels.first(), labels.get(1)) {
        (Some(s), Some(p)) => (s, p),
        _ => return Err(format!("meta-walk {walk:?} needs at least two labels")),
    };
    let values_of = |name: &str| -> Result<Vec<String>, String> {
        let id = g
            .labels()
            .get(name)
            .ok_or_else(|| format!("label {name:?} not in the graph"))?;
        let vals: Vec<String> = g
            .nodes_of_label(id)
            .iter()
            .filter_map(|&n| g.value_of(n).map(str::to_owned))
            .collect();
        if vals.is_empty() {
            return Err(format!("label {name:?} has no entities"));
        }
        Ok(vals)
    };
    let src_values = values_of(src)?;
    let partner_values = values_of(partner)?;

    let mut rng = seeded(cfg.seed);
    let zipf = ZipfSampler::new(src_values.len(), cfg.zipf_exponent.max(0.0));
    let mut out = Vec::with_capacity(cfg.requests);
    let mut arrival_us = 0u64;
    // Mutation churn state: each churn event is a 3-request cycle over
    // one fresh entity so replays on a fresh server see the same
    // add/remove outcomes.
    let mut churn_phase = 0usize;
    let mut churn_epoch = 0usize;
    let mut churn_partner = String::new();
    for i in 0..cfg.requests {
        if cfg.rate_per_s > 0.0 {
            let u: f64 = rng.random_range(0.0..1.0);
            arrival_us += (-(1.0 - u).ln() * 1e6 / cfg.rate_per_s) as u64;
        }
        let deadline_ms = if cfg.deadlines_ms.is_empty() {
            None
        } else {
            Some(cfg.deadlines_ms[rng.random_range(0..cfg.deadlines_ms.len())])
        };
        let deadline_field = deadline_ms.map_or(String::new(), |d| format!(",\"deadline_ms\":{d}"));
        let id = i + 1;
        let mutate: bool = cfg.mutate_ratio > 0.0 && rng.random_range(0.0..1.0) < cfg.mutate_ratio;
        let line = if mutate {
            let fresh = format!("bench_{}_{}", cfg.seed, churn_epoch);
            let body = match churn_phase {
                0 => format!("\"action\":\"add_entity\",\"label\":\"{src}\",\"value\":\"{fresh}\""),
                1 => {
                    churn_partner =
                        partner_values[rng.random_range(0..partner_values.len())].clone();
                    format!(
                        "\"action\":\"add_edge\",\"a\":\"{src}:{fresh}\",\"b\":\"{partner}:{}\"",
                        churn_partner
                    )
                }
                _ => format!(
                    "\"action\":\"remove_edge\",\"a\":\"{src}:{fresh}\",\"b\":\"{partner}:{}\"",
                    churn_partner
                ),
            };
            if churn_phase == 2 {
                churn_epoch += 1;
            }
            churn_phase = (churn_phase + 1) % 3;
            format!("{{\"id\":{id},\"op\":\"mutate\",{body}{deadline_field}}}")
        } else {
            let value = &src_values[zipf.sample(&mut rng)];
            format!(
                "{{\"id\":{id},\"op\":\"rank\",\"walk\":\"{walk}\",\"label\":\"{src}\",\
                 \"value\":\"{value}\",\"k\":{}{deadline_field}}}",
                cfg.k
            )
        };
        out.push(GenRequest {
            arrival_offset_us: arrival_us,
            deadline_ms,
            line,
        });
    }
    Ok(out)
}

/// How the client paces its sends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Send each request at its recorded arrival offset (falling
    /// behind is counted, never made up by bursting).
    Open,
    /// Send each request as soon as the previous response arrives.
    Closed,
}

/// Client tuning for [`run_requests`].
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// Server address, `host:port`.
    pub addr: String,
    /// Pacing mode.
    pub mode: Mode,
    /// Seed for the deterministic retry jitter stream.
    pub jitter_seed: u64,
    /// Retries per request after an `overloaded` shed (0 = give up on
    /// the first shed).
    pub max_retries: u32,
    /// Backoff floor when the server's `retry_after_ms` hint is
    /// missing or smaller.
    pub retry_floor_ms: u64,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            addr: String::new(),
            mode: Mode::Open,
            jitter_seed: 42,
            max_retries: 3,
            retry_floor_ms: 10,
        }
    }
}

/// What a workload run observed.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Request lines sent (first attempts; retries not included).
    pub sent: u64,
    /// Requests that got an `"ok":true` response (after retries).
    pub ok: u64,
    /// First attempts shed with `overloaded`.
    pub shed_first: u64,
    /// Retry attempts sent after sheds.
    pub retries: u64,
    /// Requests still shed after every allowed retry.
    pub retry_exhausted: u64,
    /// Requests rejected with budget exhaustion.
    pub exhausted: u64,
    /// Other error responses (bad request, WAL failure, …).
    pub errors: u64,
    /// Successful rank responses (subset of `ok`).
    pub rank_responses: u64,
    /// Rank responses per degradation tier (`"exact"`,
    /// `"half-factorized"`, `"prefix:…"`).
    pub tiers: BTreeMap<String, u64>,
    /// Open-loop sends that were already past their arrival offset.
    pub behind_schedule: u64,
    /// Wall-clock for the whole run.
    pub duration_us: u64,
    /// Per-success latency (send → response), microseconds, unsorted.
    pub latencies_us: Vec<u64>,
    /// FNV-1a over the successful rank response lines in request
    /// order; bit-identical rankings ⇒ equal digests.
    pub rank_digest: u64,
}

impl RunReport {
    /// Nearest-rank percentile over the run's latencies (µs).
    pub fn latency_percentile_us(&self, q: f64) -> u64 {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return 0;
        }
        let rank =
            ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

/// The serve breaker's xorshift64 step — the replay client's jitter
/// must come from the same generator family so recorded backoff
/// schedules are reproducible.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The response's error code, if it is an error envelope.
fn error_code(resp: &Json) -> Option<String> {
    resp.get("error")?
        .get("code")
        .and_then(Json::as_str)
        .map(str::to_owned)
}

/// Drives `requests` against a live server on one connection,
/// returning what happened. With `record`, every admitted request
/// (anything that was not still `overloaded` after the retry budget)
/// is appended to the capture with its scheduled arrival offset.
pub fn run_requests(
    requests: &[GenRequest],
    opts: &ClientOptions,
    mut record: Option<&mut CaptureWriter>,
) -> std::io::Result<RunReport> {
    let stream = TcpStream::connect(&opts.addr)?;
    // One small line per round trip: without nodelay, Nagle + delayed
    // ACK add ~40ms of idle wire time to every request.
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut report = RunReport::default();
    let mut digest_bytes: Vec<u8> = Vec::new();
    let mut jitter_rng = opts.jitter_seed | 1;
    let start = Instant::now();

    for req in requests {
        if opts.mode == Mode::Open {
            let due = Duration::from_micros(req.arrival_offset_us);
            match due.checked_sub(start.elapsed()) {
                Some(wait) if !wait.is_zero() => std::thread::sleep(wait),
                _ => report.behind_schedule += 1,
            }
        }
        report.sent += 1;
        REPLAY_SENT.add(1);

        // Attempt loop: resend after overloaded sheds, with the
        // breaker's doubling-plus-jitter schedule seeded from the
        // server's retry_after_ms hint.
        let mut attempt = 0u32;
        let outcome = loop {
            let sent_at = Instant::now();
            writer.write_all(req.line.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            let mut resp_line = String::new();
            if reader.read_line(&mut resp_line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-run",
                ));
            }
            let latency = sent_at.elapsed();
            let resp = match json::parse(resp_line.trim_end()) {
                Ok(v) => v,
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unparseable response {resp_line:?}: {e}"),
                    ))
                }
            };
            match error_code(&resp).as_deref() {
                Some("overloaded") => {
                    if attempt == 0 {
                        report.shed_first += 1;
                        REPLAY_SHED.add(1);
                    }
                    if attempt >= opts.max_retries {
                        report.retry_exhausted += 1;
                        REPLAY_RETRY_EXHAUSTED.add(1);
                        break false;
                    }
                    let hint = resp
                        .get("error")
                        .and_then(|e| e.get("retry_after_ms"))
                        .and_then(Json::as_num)
                        .map_or(0, |n| n as u64);
                    let backoff = hint
                        .max(opts.retry_floor_ms)
                        .saturating_mul(1u64 << attempt.min(16))
                        .min(5_000);
                    let jitter = if backoff >= 4 {
                        xorshift(&mut jitter_rng) % (backoff / 4 + 1)
                    } else {
                        0
                    };
                    std::thread::sleep(Duration::from_millis(backoff + jitter));
                    attempt += 1;
                    report.retries += 1;
                    REPLAY_RETRIES.add(1);
                    continue;
                }
                Some("exhausted") => {
                    report.exhausted += 1;
                    REPLAY_EXHAUSTED.add(1);
                    break true;
                }
                Some(_) => {
                    report.errors += 1;
                    break true;
                }
                None => {
                    report.ok += 1;
                    REPLAY_OK.add(1);
                    let latency_us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
                    report.latencies_us.push(latency_us);
                    REPLAY_LATENCY.record(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
                    if let Some(tier) = resp.get("tier").and_then(Json::as_str) {
                        report.rank_responses += 1;
                        *report.tiers.entry(tier.to_owned()).or_insert(0) += 1;
                        if tier != "exact" {
                            REPLAY_DEGRADED.add(1);
                        }
                        digest_bytes.extend_from_slice(resp_line.trim_end().as_bytes());
                        digest_bytes.push(b'\n');
                    }
                    break true;
                }
            }
        };
        if outcome {
            if let Some(w) = record.as_deref_mut() {
                w.append(req.arrival_offset_us, req.deadline_ms, &req.line)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
            }
        }
    }
    report.duration_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    report.rank_digest = repsim_sparse::checksum(&digest_bytes);
    Ok(report)
}

/// Runs a generated workload against `opts.addr`, recording the
/// admitted requests to `capture_path`. Returns the run report and the
/// number of records written.
pub fn record(
    requests: &[GenRequest],
    seed: u64,
    opts: &ClientOptions,
    capture_path: &Path,
) -> Result<(RunReport, u64), String> {
    let mut writer = CaptureWriter::create(capture_path, seed).map_err(|e| e.to_string())?;
    let report = run_requests(requests, opts, Some(&mut writer)).map_err(|e| e.to_string())?;
    let written = writer.next_seq() - 1;
    writer.finish().map_err(|e| e.to_string())?;
    Ok((report, written))
}

/// Replays a capture against `opts.addr`. Returns the run report plus
/// the capture's seed and any damage the loader repaired.
pub fn replay(
    capture_path: &Path,
    opts: &ClientOptions,
) -> Result<(RunReport, capture::RecoveredCapture), String> {
    let recovered = capture::recover(capture_path).map_err(|e| e.to_string())?;
    let requests: Vec<GenRequest> = recovered
        .records
        .iter()
        .map(|r| GenRequest {
            arrival_offset_us: r.arrival_offset_us,
            deadline_ms: r.deadline_ms,
            line: r.line.clone(),
        })
        .collect();
    let report = run_requests(&requests, opts, None).map_err(|e| e.to_string())?;
    Ok((report, recovered))
}

/// Renders `BENCH_serve.json`. `label` names the run (`"record"`,
/// `"replay"`); the `p99_latency_us` field is the CI gate's tracked
/// figure.
pub fn report_json(label: &str, seed: u64, mode: Mode, report: &RunReport) -> String {
    let mut j = String::from("{\n");
    j.push_str(&format!("  \"run\": \"{label}\",\n"));
    j.push_str(&format!("  \"seed\": {seed},\n"));
    j.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        match mode {
            Mode::Open => "open",
            Mode::Closed => "closed",
        }
    ));
    j.push_str(&format!("  \"sent\": {},\n", report.sent));
    j.push_str(&format!("  \"ok\": {},\n", report.ok));
    j.push_str(&format!(
        "  \"rank_responses\": {},\n",
        report.rank_responses
    ));
    j.push_str(&format!(
        "  \"shed_first_attempt\": {},\n",
        report.shed_first
    ));
    j.push_str(&format!("  \"retries\": {},\n", report.retries));
    j.push_str(&format!(
        "  \"retry_exhausted\": {},\n",
        report.retry_exhausted
    ));
    j.push_str(&format!("  \"exhausted\": {},\n", report.exhausted));
    j.push_str(&format!("  \"errors\": {},\n", report.errors));
    j.push_str(&format!(
        "  \"behind_schedule\": {},\n",
        report.behind_schedule
    ));
    let secs = report.duration_us as f64 / 1e6;
    j.push_str(&format!("  \"duration_s\": {secs:.3},\n"));
    let rps = if secs > 0.0 {
        report.sent as f64 / secs
    } else {
        0.0
    };
    j.push_str(&format!("  \"throughput_rps\": {rps:.1},\n"));
    j.push_str("  \"tiers\": {");
    for (i, (tier, n)) in report.tiers.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        j.push_str(&format!("\"{tier}\": {n}"));
    }
    j.push_str("},\n");
    j.push_str(&format!(
        "  \"p50_latency_us\": {},\n",
        report.latency_percentile_us(0.50)
    ));
    j.push_str(&format!(
        "  \"p90_latency_us\": {},\n",
        report.latency_percentile_us(0.90)
    ));
    j.push_str(&format!(
        "  \"p99_latency_us\": {},\n",
        report.latency_percentile_us(0.99)
    ));
    j.push_str(&format!(
        "  \"rank_digest\": \"{:016x}\"\n",
        report.rank_digest
    ));
    j.push_str("}\n");
    j
}

/// Boots an in-process server over `g` on a free port, calls `f` with
/// its address, then shuts it down. The default when `repsim bench
/// serve` is given no `--addr`: every run gets a fresh server, which
/// is exactly what replay bit-identity needs.
pub fn with_local_server<T>(
    g: &Graph,
    queue_cap: usize,
    f: impl FnOnce(&str) -> T,
) -> Result<T, String> {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    static BOOT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "repsim-bench-serve-{}-{}",
        std::process::id(),
        BOOT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let port_file = dir.join("port");
    let cfg = repsim_serve::ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        queue_cap,
        port_file: Some(port_file.clone()),
        ..repsim_serve::ServeConfig::default()
    };
    let shutdown = AtomicBool::new(false);
    let deadline = Instant::now() + Duration::from_secs(10);
    let out = std::thread::scope(|s| {
        let (shutdown_ref, cfg_ref) = (&shutdown, &cfg);
        let server = s.spawn(move || repsim_serve::run(g, cfg_ref, shutdown_ref));
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                let text = text.trim().to_owned();
                if !text.is_empty() {
                    break Ok(text);
                }
            }
            if Instant::now() > deadline || server.is_finished() {
                break Err("server did not bind within 10s".to_owned());
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        let out = addr.map(|a| f(&a));
        shutdown.store(true, Ordering::SeqCst);
        out
    });
    let _ = std::fs::remove_dir_all(&dir);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use repsim_graph::GraphBuilder;

    /// The serve crate's MAS-like fixture: confs, papers, domains.
    fn mas_like() -> Graph {
        let mut b = GraphBuilder::new();
        let conf = b.entity_label("conf");
        let paper = b.entity_label("paper");
        let dom = b.entity_label("dom");
        let confs: Vec<_> = (0..3).map(|i| b.entity(conf, &format!("c{i}"))).collect();
        let doms: Vec<_> = (0..2).map(|i| b.entity(dom, &format!("d{i}"))).collect();
        for (i, (c, d)) in [(0, 0), (0, 1), (1, 0), (2, 1), (0, 0), (1, 1)]
            .iter()
            .enumerate()
        {
            let p = b.entity(paper, &format!("p{i}"));
            b.edge(p, confs[*c]).unwrap();
            b.edge(p, doms[*d]).unwrap();
        }
        b.build()
    }

    fn quick_cfg() -> WorkloadConfig {
        WorkloadConfig {
            seed: 7,
            requests: 40,
            rate_per_s: 0.0,
            zipf_exponent: 1.0,
            mutate_ratio: 0.25,
            deadlines_ms: vec![250],
            k: 3,
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let g = mas_like();
        let cfg = quick_cfg();
        let a = generate(&g, "conf paper dom", &cfg).unwrap();
        let b = generate(&g, "conf paper dom", &cfg).unwrap();
        assert_eq!(a, b);
        let other = generate(
            &g,
            "conf paper dom",
            &WorkloadConfig {
                seed: 8,
                ..quick_cfg()
            },
        )
        .unwrap();
        assert_ne!(a, other, "different seed, different workload");
    }

    #[test]
    fn generation_mixes_ranks_and_mutation_churn() {
        let g = mas_like();
        let reqs = generate(&g, "conf paper dom", &quick_cfg()).unwrap();
        let ranks = reqs.iter().filter(|r| r.line.contains("\"rank\"")).count();
        let mutates = reqs
            .iter()
            .filter(|r| r.line.contains("\"mutate\""))
            .count();
        assert_eq!(ranks + mutates, reqs.len());
        assert!(ranks > 0 && mutates > 0, "{ranks} ranks, {mutates} mutates");
        // Churn is well-formed: every add_edge names the entity the
        // preceding add_entity created.
        assert!(reqs.iter().any(|r| r.line.contains("add_entity")));
        for r in &reqs {
            assert!(r.line.contains("\"deadline_ms\":250"), "{}", r.line);
        }
        // Arrival offsets are monotone (zero rate → all zero).
        assert!(reqs
            .windows(2)
            .all(|w| w[0].arrival_offset_us <= w[1].arrival_offset_us));
    }

    #[test]
    fn unknown_labels_are_errors() {
        let g = mas_like();
        assert!(generate(&g, "venue paper", &quick_cfg()).is_err());
        assert!(generate(&g, "conf", &quick_cfg()).is_err());
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let report = RunReport {
            latencies_us: (1..=100).rev().collect(),
            ..RunReport::default()
        };
        assert_eq!(report.latency_percentile_us(0.50), 50);
        assert_eq!(report.latency_percentile_us(0.99), 99);
        assert_eq!(report.latency_percentile_us(1.0), 100);
        assert_eq!(RunReport::default().latency_percentile_us(0.5), 0);
    }

    #[test]
    fn record_then_replay_twice_is_bit_identical() {
        let g = mas_like();
        let cfg = WorkloadConfig {
            seed: 11,
            requests: 30,
            rate_per_s: 0.0,
            zipf_exponent: 1.0,
            mutate_ratio: 0.2,
            deadlines_ms: vec![],
            k: 3,
        };
        let reqs = generate(&g, "conf paper dom", &cfg).unwrap();
        let dir = std::env::temp_dir().join(format!("repsim-bench-e2e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cap = dir.join("t.rsimcap");

        let (rec_report, written) = with_local_server(&g, 64, |addr| {
            let opts = ClientOptions {
                addr: addr.to_owned(),
                mode: Mode::Closed,
                ..ClientOptions::default()
            };
            record(&reqs, cfg.seed, &opts, &cap)
        })
        .unwrap()
        .unwrap();
        assert_eq!(rec_report.sent, 30);
        assert_eq!(written, 30, "uncontended run admits everything");
        assert!(rec_report.rank_responses > 0);

        let mut digests = Vec::new();
        for _ in 0..2 {
            let (rep, recovered) = with_local_server(&g, 64, |addr| {
                let opts = ClientOptions {
                    addr: addr.to_owned(),
                    mode: Mode::Closed,
                    ..ClientOptions::default()
                };
                replay(&cap, &opts)
            })
            .unwrap()
            .unwrap();
            assert_eq!(recovered.seed, 11);
            assert_eq!(recovered.records.len(), 30);
            assert_eq!(rep.ok + rep.exhausted + rep.errors, 30);
            digests.push(rep.rank_digest);
        }
        assert_eq!(
            digests[0], digests[1],
            "same capture, fresh servers: rank responses must be bit-identical"
        );
        assert_eq!(
            digests[0], rec_report.rank_digest,
            "replay reproduces the recorded rankings"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_json_carries_the_gate_figure() {
        let mut report = RunReport {
            sent: 10,
            ok: 9,
            rank_responses: 8,
            shed_first: 1,
            retries: 2,
            latencies_us: vec![100, 200, 300],
            rank_digest: 0xabcd,
            duration_us: 1_000_000,
            ..RunReport::default()
        };
        report.tiers.insert("exact".to_owned(), 8);
        let j = report_json("replay", 11, Mode::Open, &report);
        let v = json::parse(&j).unwrap();
        assert_eq!(v.get("p99_latency_us").and_then(Json::as_num), Some(300.0));
        assert_eq!(
            v.get("rank_digest").and_then(Json::as_str),
            Some("000000000000abcd")
        );
        assert_eq!(v.get("retries").and_then(Json::as_num), Some(2.0));
        assert_eq!(
            v.get("shed_first_attempt").and_then(Json::as_num),
            Some(1.0)
        );
        assert_eq!(
            v.get("tiers")
                .and_then(|t| t.get("exact"))
                .and_then(Json::as_num),
            Some(8.0)
        );
    }
}
