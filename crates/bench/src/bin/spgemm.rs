//! SpGEMM benchmark binary: times informative commuting-matrix builds
//! across a thread sweep and reports the chain plan the DP chose, writing
//! machine-readable results to `BENCH_spgemm.json` (CI uploads it as an
//! artifact; the `paper` scale is the headline speedup measurement).
//!
//! ```text
//! cargo run --release -p repsim-bench --bin spgemm -- \
//!     [--scale tiny|small|paper] [--threads 1,2,4,8] [--reps 3] [-o FILE]
//! ```

// Benchmark/reproduction binaries are operator-run tools, not library
// surface: a failed setup step should abort loudly, so the workspace
// panic-freedom lints are relaxed for this file.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::time::Instant;

use repsim_datasets::citations::{self, CitationConfig};
use repsim_graph::biadjacency::biadjacency;
use repsim_metawalk::commuting::informative_commuting_with;
use repsim_metawalk::MetaWalk;
use repsim_sparse::chain::{plan_chain, ChainStats};
use repsim_sparse::Parallelism;

/// The benched meta-walk: three citation hops, each needing the
/// informative diagonal correction — the heaviest commuting build the
/// citation fixtures exercise.
const WALK: &str = "paper cite paper cite paper cite paper";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = "tiny".to_owned();
    let mut out = "BENCH_spgemm.json".to_owned();
    let mut reps = 3usize;
    let mut threads_arg: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .clone()
        };
        match a.as_str() {
            "--scale" => scale = take("--scale"),
            "--out" | "-o" => out = take("--out"),
            "--reps" => reps = take("--reps").parse().expect("--reps expects a number"),
            "--threads" => threads_arg = Some(take("--threads")),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let cfg = match scale.as_str() {
        "tiny" => CitationConfig::tiny(),
        "small" => CitationConfig::small(),
        "paper" => CitationConfig::paper_scale(),
        other => panic!("unknown scale {other:?} (tiny|small|paper)"),
    };
    let g = citations::dblp(&cfg);
    let mw = MetaWalk::parse_in(&g, WALK).expect("parseable walk");

    let available = Parallelism::available().threads();
    let threads: Vec<usize> = match threads_arg {
        Some(list) => list
            .split(',')
            .map(|t| t.trim().parse().expect("--threads expects numbers"))
            .collect(),
        None => {
            let mut t = vec![1, 2, 4];
            if !t.contains(&available) {
                t.push(available);
            }
            t.retain(|&n| n >= 1);
            t.dedup();
            t
        }
    };

    // The raw biadjacency chain for the walk, to report what the DP picks.
    let labels: Vec<_> = mw.steps().iter().map(|s| s.label()).collect();
    let mats: Vec<_> = labels
        .windows(2)
        .map(|pair| biadjacency(&g, pair[0], pair[1]))
        .collect();
    let stats: Vec<ChainStats> = mats.iter().map(ChainStats::of).collect();
    let plan = plan_chain(&stats);

    // Metrics-only observability: a NullSink flips recording on so the
    // SpGEMM kernel's per-phase histograms accumulate, without buffering
    // a trace. Timed builds pay the (sub-percent) recording overhead
    // uniformly across the thread sweep.
    let obs_sink: std::sync::Arc<dyn repsim_obs::Sink> = std::sync::Arc::new(repsim_obs::NullSink);
    repsim_obs::install(std::sync::Arc::clone(&obs_sink));
    repsim_obs::Registry::global().reset();
    let sym_hist = repsim_obs::Registry::global().histogram("repsim.sparse.spgemm.symbolic_ns");
    let num_hist = repsim_obs::Registry::global().histogram("repsim.sparse.spgemm.numeric_ns");

    // Reference build: serial, correctness anchor for the sweep.
    let serial = informative_commuting_with(&g, &mw, Parallelism::serial());
    let mut sweep = Vec::new();
    let mut all_match = true;
    for &t in &threads {
        let par = Parallelism::with_threads(t);
        let m = informative_commuting_with(&g, &mw, par); // warm-up
        all_match &= m == serial;
        let mut best_ms = f64::INFINITY;
        let mut total_ms = 0.0;
        let (sym0, num0) = (sym_hist.sum(), num_hist.sum());
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let m = informative_commuting_with(&g, &mw, par);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(m);
            best_ms = best_ms.min(ms);
            total_ms += ms;
        }
        // Mean per-build phase time: histogram-sum delta over the timed
        // reps (all SpGEMM products of the chain, both phases).
        let per_rep = 1e6 * reps.max(1) as f64;
        let symbolic_ms = (sym_hist.sum() - sym0) as f64 / per_rep;
        let numeric_ms = (num_hist.sum() - num0) as f64 / per_rep;
        sweep.push((
            t,
            best_ms,
            total_ms / reps.max(1) as f64,
            symbolic_ms,
            numeric_ms,
        ));
        repsim_obs::log_info!(
            "repsim.bench.spgemm",
            "threads={t:>3}  best {best_ms:9.3} ms  symbolic {symbolic_ms:.3} ms  numeric {numeric_ms:.3} ms"
        );
    }
    repsim_obs::remove_sink(&obs_sink);
    let serial_best = sweep
        .iter()
        .find(|&&(t, ..)| t == 1)
        .map(|&(_, best, ..)| best);
    let parallel_best = sweep
        .iter()
        .filter(|&&(t, ..)| t > 1)
        .map(|&(_, best, ..)| best)
        .fold(f64::INFINITY, f64::min);
    let speedup = match serial_best {
        Some(s) if parallel_best.is_finite() => s / parallel_best,
        _ => 1.0,
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    json.push_str("  \"dataset\": \"citations-dblp\",\n");
    json.push_str(&format!("  \"meta_walk\": \"{WALK}\",\n"));
    json.push_str(&format!("  \"papers\": {},\n", cfg.papers));
    json.push_str(&format!("  \"result_nnz\": {},\n", serial.nnz()));
    json.push_str("  \"chain\": {\n");
    json.push_str(&format!("    \"order\": \"{}\",\n", plan.order.render()));
    json.push_str(&format!("    \"est_flops\": {:.1},\n", plan.est_flops));
    json.push_str(&format!("    \"est_nnz\": {:.1}\n", plan.est_nnz));
    json.push_str("  },\n");
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"available_threads\": {available},\n"));
    json.push_str("  \"sweep\": [\n");
    for (i, &(t, best, mean, symbolic, numeric)) in sweep.iter().enumerate() {
        let comma = if i + 1 < sweep.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"threads\": {t}, \"best_ms\": {best:.3}, \"mean_ms\": {mean:.3}, \
             \"symbolic_ms\": {symbolic:.3}, \"numeric_ms\": {numeric:.3}}}{comma}\n"
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup_over_serial\": {speedup:.3},\n"));
    json.push_str(&format!("  \"parallel_matches_serial\": {all_match}\n"));
    json.push_str("}\n");
    std::fs::write(&out, &json).expect("write bench json");
    println!("{json}");
    assert!(all_match, "parallel build diverged from serial");
}
