//! SpGEMM benchmark binary: times informative commuting-matrix builds
//! across a thread sweep and reports the chain plan the DP chose, writing
//! machine-readable results to `BENCH_spgemm.json` (CI uploads it as an
//! artifact; the `paper` scale is the headline speedup measurement).
//!
//! ```text
//! cargo run --release -p repsim-bench --bin spgemm -- \
//!     [--scale tiny|small|paper] [--threads 1,2,4,8] [--reps 3] [-o FILE] \
//!     [--accumulator adaptive|dense|sparse] [--compact-csr auto|off|on] \
//!     [--check BASELINE.json] [--tolerance 0.20]
//! ```
//!
//! `--accumulator` / `--compact-csr` force the numeric-phase policy knobs
//! (default: adaptive selection and automatic operand compaction).
//! `--check` compares the serial numeric ns/flop of this run against the
//! `serial_numeric_ns_per_flop` field of a previously committed baseline
//! JSON and exits non-zero on a regression beyond `--tolerance`
//! (fractional, default 0.20) — the CI perf gate runs this at a fixed
//! small scale.

// Benchmark/reproduction binaries are operator-run tools, not library
// surface: a failed setup step should abort loudly, so the workspace
// panic-freedom lints are relaxed for this file.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::time::Instant;

use repsim_datasets::citations::{self, CitationConfig};
use repsim_graph::biadjacency::biadjacency;
use repsim_metawalk::commuting::informative_commuting_with;
use repsim_metawalk::MetaWalk;
use repsim_sparse::chain::{plan_chain, ChainStats};
use repsim_sparse::{Accumulator, CompactMode, Parallelism};

/// The benched meta-walk: three citation hops, each needing the
/// informative diagonal correction — the heaviest commuting build the
/// citation fixtures exercise.
const WALK: &str = "paper cite paper cite paper cite paper";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = "tiny".to_owned();
    let mut out = "BENCH_spgemm.json".to_owned();
    let mut reps = 3usize;
    let mut threads_arg: Option<String> = None;
    let mut accumulator = "adaptive".to_owned();
    let mut compact = "auto".to_owned();
    let mut check: Option<String> = None;
    let mut tolerance = 0.20f64;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .clone()
        };
        match a.as_str() {
            "--scale" => scale = take("--scale"),
            "--out" | "-o" => out = take("--out"),
            "--reps" => reps = take("--reps").parse().expect("--reps expects a number"),
            "--threads" => threads_arg = Some(take("--threads")),
            "--accumulator" => accumulator = take("--accumulator"),
            "--compact-csr" => compact = take("--compact-csr"),
            "--check" => check = Some(take("--check")),
            "--tolerance" => {
                tolerance = take("--tolerance")
                    .parse()
                    .expect("--tolerance expects a fraction");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    repsim_sparse::set_accumulator(match accumulator.as_str() {
        "adaptive" => Accumulator::Adaptive,
        "dense" => Accumulator::Dense,
        "sparse" => Accumulator::Sparse,
        other => panic!("unknown accumulator {other:?} (adaptive|dense|sparse)"),
    });
    repsim_sparse::set_compact_mode(match compact.as_str() {
        "auto" => CompactMode::Auto,
        "off" => CompactMode::Off,
        "on" => CompactMode::On,
        other => panic!("unknown compact-csr mode {other:?} (auto|off|on)"),
    });

    let cfg = match scale.as_str() {
        "tiny" => CitationConfig::tiny(),
        "small" => CitationConfig::small(),
        "paper" => CitationConfig::paper_scale(),
        other => panic!("unknown scale {other:?} (tiny|small|paper)"),
    };
    let g = citations::dblp(&cfg);
    let mw = MetaWalk::parse_in(&g, WALK).expect("parseable walk");

    let available = Parallelism::available().threads();
    let threads: Vec<usize> = match threads_arg {
        Some(list) => list
            .split(',')
            .map(|t| t.trim().parse().expect("--threads expects numbers"))
            .collect(),
        None => {
            let mut t = vec![1, 2, 4];
            if !t.contains(&available) {
                t.push(available);
            }
            t.retain(|&n| n >= 1);
            t.dedup();
            t
        }
    };

    // The raw biadjacency chain for the walk, to report what the DP picks.
    let labels: Vec<_> = mw.steps().iter().map(|s| s.label()).collect();
    let mats: Vec<_> = labels
        .windows(2)
        .map(|pair| biadjacency(&g, pair[0], pair[1]))
        .collect();
    let stats: Vec<ChainStats> = mats.iter().map(ChainStats::of).collect();
    let plan = plan_chain(&stats);

    // Metrics-only observability: a NullSink flips recording on so the
    // SpGEMM kernel's per-phase histograms accumulate, without buffering
    // a trace. Timed builds pay the (sub-percent) recording overhead
    // uniformly across the thread sweep.
    let obs_sink: std::sync::Arc<dyn repsim_obs::Sink> = std::sync::Arc::new(repsim_obs::NullSink);
    repsim_obs::install(std::sync::Arc::clone(&obs_sink));
    repsim_obs::Registry::global().reset();
    let sym_hist = repsim_obs::Registry::global().histogram("repsim.sparse.spgemm.symbolic_ns");
    let num_hist = repsim_obs::Registry::global().histogram("repsim.sparse.spgemm.numeric_ns");
    let flop_hist = repsim_obs::Registry::global().histogram("repsim.sparse.spgemm.flops");
    let dense_rows =
        repsim_obs::Registry::global().counter("repsim.sparse.spgemm.numeric.dense_rows");
    let sparse_rows =
        repsim_obs::Registry::global().counter("repsim.sparse.spgemm.numeric.sparse_rows");
    let tile_count =
        repsim_obs::Registry::global().counter("repsim.sparse.spgemm.numeric.tile_count");

    // Reference build: serial, correctness anchor for the sweep. The
    // accumulator-routing counters are sampled over exactly this build.
    let (kr0, ks0, kt0) = (dense_rows.get(), sparse_rows.get(), tile_count.get());
    let serial = informative_commuting_with(&g, &mw, Parallelism::serial());
    let kernel_rows = (
        dense_rows.get() - kr0,
        sparse_rows.get() - ks0,
        tile_count.get() - kt0,
    );
    let mut sweep = Vec::new();
    let mut all_match = true;
    for &t in &threads {
        let par = Parallelism::with_threads(t);
        let m = informative_commuting_with(&g, &mw, par); // warm-up
        all_match &= m == serial;
        let mut best_ms = f64::INFINITY;
        let mut total_ms = 0.0;
        let mut best_numeric_ns = u64::MAX;
        let (sym0, num0, flop0) = (sym_hist.sum(), num_hist.sum(), flop_hist.sum());
        for _ in 0..reps.max(1) {
            let rep_num0 = num_hist.sum();
            let start = Instant::now();
            let m = informative_commuting_with(&g, &mw, par);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(m);
            best_ms = best_ms.min(ms);
            total_ms += ms;
            best_numeric_ns = best_numeric_ns.min(num_hist.sum() - rep_num0);
        }
        // Mean per-build phase time: histogram-sum delta over the timed
        // reps (all SpGEMM products of the chain, both phases). Flops are
        // deterministic per build, so the delta / reps is the per-build
        // multiply-add count and ns/flop normalises phase time by work.
        let per_rep = 1e6 * reps.max(1) as f64;
        let symbolic_ms = (sym_hist.sum() - sym0) as f64 / per_rep;
        let numeric_ms = (num_hist.sum() - num0) as f64 / per_rep;
        let flops = (flop_hist.sum() - flop0) as f64 / reps.max(1) as f64;
        let sym_ns_per_flop = if flops > 0.0 {
            symbolic_ms * 1e6 / flops
        } else {
            0.0
        };
        let num_ns_per_flop = if flops > 0.0 {
            numeric_ms * 1e6 / flops
        } else {
            0.0
        };
        // Best (not mean) rep for the gate figure: on noisy shared
        // hardware the fastest rep tracks the code's true cost while the
        // mean tracks the neighbors.
        let best_num_ns_per_flop = if flops > 0.0 {
            best_numeric_ns as f64 / flops
        } else {
            0.0
        };
        sweep.push((
            t,
            best_ms,
            total_ms / reps.max(1) as f64,
            symbolic_ms,
            numeric_ms,
            flops,
            sym_ns_per_flop,
            num_ns_per_flop,
            best_num_ns_per_flop,
        ));
        repsim_obs::log_info!(
            "repsim.bench.spgemm",
            "threads={t:>3}  best {best_ms:9.3} ms  symbolic {symbolic_ms:.3} ms ({sym_ns_per_flop:.4} ns/flop)  numeric {numeric_ms:.3} ms ({num_ns_per_flop:.4} ns/flop)"
        );
    }
    repsim_obs::remove_sink(&obs_sink);
    let serial_best = sweep
        .iter()
        .find(|&&(t, ..)| t == 1)
        .map(|&(_, best, ..)| best);
    let parallel_best = sweep
        .iter()
        .filter(|&&(t, ..)| t > 1)
        .map(|&(_, best, ..)| best)
        .fold(f64::INFINITY, f64::min);
    let speedup = match serial_best {
        Some(s) if parallel_best.is_finite() => s / parallel_best,
        _ => 1.0,
    };

    // Serial best-rep numeric ns/flop is the CI gate's tracked figure: it
    // is the single-thread cost of the phase this crate optimises,
    // normalised by deterministic work and taken from the fastest rep so
    // shared-hardware noise doesn't trip the gate.
    let serial_num_ns_per_flop = sweep
        .iter()
        .find(|&&(t, ..)| t == 1)
        .map_or(0.0, |&(.., best_npf)| best_npf);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    json.push_str("  \"dataset\": \"citations-dblp\",\n");
    json.push_str(&format!("  \"accumulator\": \"{accumulator}\",\n"));
    json.push_str(&format!("  \"compact_csr\": \"{compact}\",\n"));
    json.push_str(&format!("  \"meta_walk\": \"{WALK}\",\n"));
    json.push_str(&format!("  \"papers\": {},\n", cfg.papers));
    json.push_str(&format!("  \"result_nnz\": {},\n", serial.nnz()));
    json.push_str("  \"chain\": {\n");
    json.push_str(&format!("    \"order\": \"{}\",\n", plan.order.render()));
    json.push_str(&format!("    \"est_flops\": {:.1},\n", plan.est_flops));
    json.push_str(&format!("    \"est_nnz\": {:.1}\n", plan.est_nnz));
    json.push_str("  },\n");
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"available_threads\": {available},\n"));
    json.push_str("  \"kernel\": {\n");
    json.push_str(&format!("    \"dense_rows\": {},\n", kernel_rows.0));
    json.push_str(&format!("    \"sparse_rows\": {},\n", kernel_rows.1));
    json.push_str(&format!("    \"tile_count\": {}\n", kernel_rows.2));
    json.push_str("  },\n");
    json.push_str("  \"sweep\": [\n");
    for (i, &(t, best, mean, symbolic, numeric, flops, sym_npf, num_npf, best_npf)) in
        sweep.iter().enumerate()
    {
        let comma = if i + 1 < sweep.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"threads\": {t}, \"best_ms\": {best:.3}, \"mean_ms\": {mean:.3}, \
             \"symbolic_ms\": {symbolic:.3}, \"numeric_ms\": {numeric:.3}, \
             \"flops\": {flops:.0}, \"symbolic_ns_per_flop\": {sym_npf:.4}, \
             \"numeric_ns_per_flop\": {num_npf:.4}, \
             \"best_numeric_ns_per_flop\": {best_npf:.4}}}{comma}\n"
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"serial_numeric_ns_per_flop\": {serial_num_ns_per_flop:.4},\n"
    ));
    json.push_str(&format!("  \"speedup_over_serial\": {speedup:.3},\n"));
    json.push_str(&format!("  \"parallel_matches_serial\": {all_match}\n"));
    json.push_str("}\n");
    std::fs::write(&out, &json).expect("write bench json");
    println!("{json}");
    assert!(all_match, "parallel build diverged from serial");

    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path:?}: {e}"));
        let expected =
            extract_number(&baseline, "serial_numeric_ns_per_flop").unwrap_or_else(|| {
                panic!("baseline {baseline_path:?} lacks serial_numeric_ns_per_flop")
            });
        let limit = expected * (1.0 + tolerance);
        println!(
            "perf gate: serial numeric {serial_num_ns_per_flop:.4} ns/flop \
             vs baseline {expected:.4} (limit {limit:.4}, tolerance {tolerance:.2})"
        );
        assert!(
            serial_num_ns_per_flop > 0.0,
            "perf gate: no serial sweep entry — include threads=1 when using --check"
        );
        if serial_num_ns_per_flop > limit {
            eprintln!(
                "perf gate FAILED: numeric phase regressed {:.1}% over baseline",
                (serial_num_ns_per_flop / expected - 1.0) * 100.0
            );
            std::process::exit(1);
        }
        println!("perf gate passed");
    }
}

/// Pulls the number following `"key":` out of a flat JSON document. The
/// baseline files are written by this binary, so a substring scan is
/// enough — no JSON parser dependency needed.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json.get(at..)?;
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest.get(..end)?.trim().parse().ok()
}
