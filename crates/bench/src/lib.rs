#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::indexing_slicing
    )
)]
//! Shared fixtures for the Criterion benchmarks.
//!
//! Benchmarks operate on the `tiny`/`small` dataset presets so `cargo
//! bench` completes in minutes; the benched code paths are exactly those
//! behind the paper's tables (see DESIGN.md's bench index).
//!
//! [`serve_load`] is different in kind: not a Criterion bench but the
//! serving-path workload generator and capture/replay client behind
//! `repsim bench serve`.

pub mod serve_load;

use repsim_datasets::citations::{self, CitationConfig};
use repsim_datasets::mas::{self, MasConfig};
use repsim_datasets::movies::{self, MoviesConfig};
use repsim_graph::Graph;

/// The tiny movies database (IMDb form, with characters).
pub fn movies_tiny() -> Graph {
    movies::imdb(&MoviesConfig::tiny())
}

/// The small movies database (IMDb form, with characters).
pub fn movies_small() -> Graph {
    movies::imdb(&MoviesConfig::small())
}

/// The small character-free movies database.
pub fn movies_small_no_chars() -> Graph {
    movies::imdb_no_chars(&MoviesConfig::small())
}

/// The tiny citation database in DBLP form.
pub fn citations_tiny_dblp() -> Graph {
    citations::dblp(&CitationConfig::tiny())
}

/// The small citation database in DBLP form.
pub fn citations_small_dblp() -> Graph {
    citations::dblp(&CitationConfig::small())
}

/// The small citation database in SNAP form.
pub fn citations_small_snap() -> Graph {
    citations::snap(&CitationConfig::small())
}

/// The tiny MAS database (Figure 5a form).
pub fn mas_tiny() -> Graph {
    mas::mas(&MasConfig::tiny()).0
}
