//! Algorithm 1's meta-walk set generation and FD discovery as the label
//! count grows — the §5.2 complexity discussion (exponential in |L| in the
//! worst case, cheap in practice because label counts are small).

// Benchmarks are developer tooling: setup failures should abort loudly,
// so the workspace panic-freedom lints are relaxed for this file.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repsim_core::find_meta_walk_set;
use repsim_graph::{Graph, GraphBuilder};
use repsim_metawalk::FdSet;
use std::hint::black_box;

/// A chain-schema database with `n_labels` entity labels where label `i`
/// functionally determines label `i+1` — the FD-dense worst case for
/// pattern detection.
fn chain_db(n_labels: usize, fanout: usize) -> Graph {
    let mut b = GraphBuilder::new();
    let labels: Vec<_> = (0..n_labels)
        .map(|i| b.entity_label(&format!("l{i}")))
        .collect();
    // Level i has fanout^(n_labels-1-i) nodes; node j at level i links to
    // node j/fanout at level i+1.
    let mut level_sizes = Vec::with_capacity(n_labels);
    for i in 0..n_labels {
        level_sizes.push(fanout.pow((n_labels - 1 - i) as u32));
    }
    let nodes: Vec<Vec<_>> = (0..n_labels)
        .map(|i| {
            (0..level_sizes[i])
                .map(|j| b.entity(labels[i], &format!("v{i}_{j}")))
                .collect()
        })
        .collect();
    for i in 0..n_labels - 1 {
        for j in 0..level_sizes[i] {
            b.edge(nodes[i][j], nodes[i + 1][j / fanout])
                .expect("fresh");
        }
    }
    b.build()
}

fn bench_fd_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("metawalk_gen/fd-discovery");
    for n_labels in [3usize, 4, 5] {
        let g = chain_db(n_labels, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n_labels), &g, |b, g| {
            b.iter(|| black_box(FdSet::discover(g, 3)))
        });
    }
    group.finish();
}

fn bench_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("metawalk_gen/algorithm1");
    for n_labels in [3usize, 4, 5] {
        let g = chain_db(n_labels, 3);
        let fds = FdSet::discover(&g, 3);
        let query = g.labels().get("l0").expect("first label");
        group.bench_with_input(
            BenchmarkId::from_parameter(n_labels),
            &(&g, &fds),
            |b, (g, fds)| b.iter(|| black_box(find_meta_walk_set(g, fds, query, n_labels + 1))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fd_discovery, bench_algorithm1);
criterion_main!(benches);
