//! Applying and inverting each catalog transformation (§4.2, §5.1).

// Benchmarks are developer tooling: setup failures should abort loudly,
// so the workspace panic-freedom lints are relaxed for this file.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use criterion::{criterion_group, criterion_main, Criterion};
use repsim_bench::{citations_small_snap, movies_small, movies_small_no_chars};
use repsim_datasets::bibliographic::{self, BibliographicConfig};
use repsim_datasets::courses::{self, CourseConfig};
use repsim_transform::catalog;
use std::hint::black_box;

fn bench_reorganizing(c: &mut Criterion) {
    let mut group = c.benchmark_group("transforms/reorganizing");
    let imdb = movies_small();
    group.bench_function("imdb2fb (triangle→star)", |b| {
        b.iter(|| black_box(catalog::imdb2fb().apply(&imdb).expect("applies")))
    });
    let fb = catalog::imdb2fb().apply(&imdb).expect("applies");
    group.bench_function("fb2imdb (star→triangle)", |b| {
        b.iter(|| black_box(catalog::fb2imdb().apply(&fb).expect("applies")))
    });
    let imdb_nc = movies_small_no_chars();
    group.bench_function("imdb2ng (group+reify)", |b| {
        b.iter(|| black_box(catalog::imdb2ng().apply(&imdb_nc).expect("applies")))
    });
    let snap = citations_small_snap();
    group.bench_function("snap2dblp (reify)", |b| {
        b.iter(|| black_box(catalog::snap2dblp().apply(&snap).expect("applies")))
    });
    let dblp = catalog::snap2dblp().apply(&snap).expect("applies");
    group.bench_function("dblp2snap (collapse)", |b| {
        b.iter(|| black_box(catalog::dblp2snap().apply(&dblp).expect("applies")))
    });
    group.finish();
}

fn bench_rearranging(c: &mut Criterion) {
    let mut group = c.benchmark_group("transforms/rearranging");
    let dblp = bibliographic::dblp(&BibliographicConfig::small());
    group.bench_function("dblp2sigm (pull-up)", |b| {
        b.iter(|| black_box(catalog::dblp2sigm().apply(&dblp).expect("FDs hold")))
    });
    let sigm = catalog::dblp2sigm().apply(&dblp).expect("FDs hold");
    group.bench_function("sigm2dblp (push-down)", |b| {
        b.iter(|| black_box(catalog::sigm2dblp().apply(&sigm).expect("applies")))
    });
    let wsu = courses::wsu(&CourseConfig::paper_scale());
    group.bench_function("wsu2alch (pull-up)", |b| {
        b.iter(|| black_box(catalog::wsu2alch().apply(&wsu).expect("FDs hold")))
    });
    group.finish();
}

criterion_group!(benches, bench_reorganizing, bench_rearranging);
criterion_main!(benches);
