//! Per-query latency of each similarity algorithm — the runtime behind
//! Tables 1–4 (one rank call per query per representation).

// Benchmarks are developer tooling: setup failures should abort loudly,
// so the workspace panic-freedom lints are relaxed for this file.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repsim_baselines::ranking::SimilarityAlgorithm;
use repsim_baselines::{CommonNeighbors, Katz, PathSim, Rwr, SimRank, SimRankMc};
use repsim_bench::{citations_tiny_dblp, movies_small, movies_tiny};
use repsim_core::RPathSim;
use repsim_graph::Graph;
use repsim_metawalk::MetaWalk;
use std::hint::black_box;

fn query_of(g: &Graph) -> (repsim_graph::NodeId, repsim_graph::LabelId) {
    let film = g.labels().get("film").expect("movies");
    (g.nodes_of_label(film)[0], film)
}

fn bench_rank_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms/rank");
    for (scale, g) in [("tiny", movies_tiny()), ("small", movies_small())] {
        let (q, film) = query_of(&g);
        let mw = MetaWalk::parse_in(&g, "film actor film").expect("parseable");

        let mut rwr = Rwr::new(&g);
        group.bench_with_input(BenchmarkId::new("rwr", scale), &q, |b, &q| {
            b.iter(|| black_box(rwr.rank(q, film, 10)))
        });

        let mut katz = Katz::new(&g);
        group.bench_with_input(BenchmarkId::new("katz", scale), &q, |b, &q| {
            b.iter(|| black_box(katz.rank(q, film, 10)))
        });

        let mut cn = CommonNeighbors::new(&g);
        group.bench_with_input(BenchmarkId::new("common-neighbors", scale), &q, |b, &q| {
            b.iter(|| black_box(cn.rank(q, film, 10)))
        });

        let mut ps = PathSim::new(&g, mw.clone());
        group.bench_with_input(BenchmarkId::new("pathsim", scale), &q, |b, &q| {
            b.iter(|| black_box(ps.rank(q, film, 10)))
        });

        let mut rps = RPathSim::new(&g, mw);
        group.bench_with_input(BenchmarkId::new("rpathsim", scale), &q, |b, &q| {
            b.iter(|| black_box(rps.rank(q, film, 10)))
        });

        // SimRank's cost is the one-off matrix; the per-query rank after
        // warm-up is what Tables 1–4 pay per query.
        let mut sr = SimRank::new(&g);
        let _ = sr.rank(q, film, 1); // warm the cache
        group.bench_with_input(BenchmarkId::new("simrank-warm", scale), &q, |b, &q| {
            b.iter(|| black_box(sr.rank(q, film, 10)))
        });

        let mut mc = SimRankMc::new(&g, 7);
        group.bench_with_input(BenchmarkId::new("simrank-mc", scale), &q, |b, &q| {
            b.iter(|| black_box(mc.rank(q, film, 10)))
        });
    }
    group.finish();
}

fn bench_build_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms/build");
    group.sample_size(10);
    let g = citations_tiny_dblp();
    group.bench_function("simrank-exact-matrix", |b| {
        b.iter(|| {
            let mut sr = SimRank::new(&g);
            black_box(sr.score_matrix().nrows())
        })
    });
    group.bench_function("simrank-mc-fingerprints", |b| {
        b.iter(|| black_box(SimRankMc::new(&g, 7)))
    });
    let mw = MetaWalk::parse_in(&g, "paper cite paper cite paper").expect("parseable");
    group.bench_function("rpathsim-matrix", |b| {
        b.iter(|| black_box(RPathSim::new(&g, mw.clone())))
    });
    group.finish();
}

criterion_group!(benches, bench_rank_latency, bench_build_cost);
criterion_main!(benches);
