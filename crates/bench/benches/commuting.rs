//! Commuting-matrix construction across meta-walk lengths and modes —
//! the core machinery behind every (R-)PathSim score (§4.3, §5.2).

// Benchmarks are developer tooling: setup failures should abort loudly,
// so the workspace panic-freedom lints are relaxed for this file.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repsim_bench::{citations_small_dblp, citations_small_snap, mas_tiny};
use repsim_metawalk::commuting::{informative_commuting, plain_commuting};
use repsim_metawalk::MetaWalk;
use std::hint::black_box;

fn bench_citation_walks(c: &mut Criterion) {
    let dblp = citations_small_dblp();
    let snap = citations_small_snap();
    let mut group = c.benchmark_group("commuting/citations");
    let cases = [
        ("dblp-2hop", &dblp, "paper cite paper cite paper"),
        ("snap-2hop", &snap, "paper paper paper"),
    ];
    for (name, g, walk) in cases {
        let mw = MetaWalk::parse_in(g, walk).expect("parseable");
        group.bench_with_input(BenchmarkId::new("plain", name), &mw, |b, mw| {
            b.iter(|| black_box(plain_commuting(g, mw)))
        });
        group.bench_with_input(BenchmarkId::new("informative", name), &mw, |b, mw| {
            b.iter(|| black_box(informative_commuting(g, mw)))
        });
    }
    group.finish();
}

fn bench_star_walks(c: &mut Criterion) {
    let g = mas_tiny();
    let mut group = c.benchmark_group("commuting/star");
    for (name, walk) in [
        ("plain-kw", "conf paper dom kw dom paper conf"),
        ("star-kw", "conf *paper dom kw dom *paper conf"),
    ] {
        let mw = MetaWalk::parse_in(&g, walk).expect("parseable");
        group.bench_function(name, |b| {
            b.iter(|| black_box(informative_commuting(&g, &mw)))
        });
    }
    group.finish();
}

fn bench_walk_length(c: &mut Criterion) {
    let g = citations_small_dblp();
    let mut group = c.benchmark_group("commuting/length");
    for hops in 1..=3usize {
        let mut walk = String::from("paper");
        for _ in 0..hops {
            walk.push_str(" cite paper");
        }
        let mw = MetaWalk::parse_in(&g, &walk).expect("parseable");
        group.bench_with_input(BenchmarkId::from_parameter(hops), &mw, |b, mw| {
            b.iter(|| black_box(informative_commuting(&g, mw)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_citation_walks,
    bench_star_walks,
    bench_walk_length
);
criterion_main!(benches);
