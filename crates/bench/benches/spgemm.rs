//! The SpGEMM kernel itself: two-phase serial vs row-band parallel, and
//! blind left-fold vs DP-planned chain evaluation, on the small citation
//! fixture's hop matrices.

// Benchmarks are developer tooling: setup failures should abort loudly,
// so the workspace panic-freedom lints are relaxed for this file.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repsim_bench::citations_small_dblp;
use repsim_graph::biadjacency::biadjacency;
use repsim_metawalk::MetaWalk;
use repsim_sparse::chain::spmm_chain_with_threads;
use repsim_sparse::ops::spmm;
use repsim_sparse::par::spmm_par;
use repsim_sparse::Csr;
use std::hint::black_box;

/// The paper→cite→paper hop matrix of the small citation fixture — the
/// building block every commuting build multiplies.
fn hop() -> Csr {
    let g = citations_small_dblp();
    let mw = MetaWalk::parse_in(&g, "paper cite paper").expect("parseable");
    let labels: Vec<_> = mw.steps().iter().map(|s| s.label()).collect();
    let a = biadjacency(&g, labels[0], labels[1]);
    let b = biadjacency(&g, labels[1], labels[2]);
    spmm(&a, &b)
}

fn bench_spmm_threads(c: &mut Criterion) {
    let hop = hop();
    let mut group = c.benchmark_group("spgemm/hop-squared");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(spmm_par(&hop, &hop, t)))
        });
    }
    group.finish();
}

fn bench_chain_order(c: &mut Criterion) {
    let hop = hop();
    let chain = [&hop, &hop, &hop];
    let mut group = c.benchmark_group("spgemm/chain");
    group.sample_size(10);
    group.bench_function("left-fold", |b| {
        b.iter(|| black_box(chain[1..].iter().fold(hop.clone(), |acc, m| spmm(&acc, m))))
    });
    group.bench_function("planned-1-thread", |b| {
        b.iter(|| black_box(spmm_chain_with_threads(&chain, 1)))
    });
    group.bench_function("planned-4-threads", |b| {
        b.iter(|| black_box(spmm_chain_with_threads(&chain, 4)))
    });
    group.finish();
}

criterion_group!(benches, bench_spmm_threads, bench_chain_order);
criterion_main!(benches);
