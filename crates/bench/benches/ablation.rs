//! Ablations of DESIGN.md's design choices:
//!
//! * exact SimRank vs the Monte-Carlo fingerprint estimator (accuracy is
//!   tested in `tests/`; here: latency);
//! * full informative commuting chain vs a cached-matrix re-query
//!   (PathSim's "pre-compute short walks, concatenate at query time"
//!   optimization, §4.3's closing paragraph);
//! * walk counting by matrix product vs explicit enumeration (why the
//!   commuting-matrix formulation exists at all).

// Benchmarks are developer tooling: setup failures should abort loudly,
// so the workspace panic-freedom lints are relaxed for this file.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use criterion::{criterion_group, criterion_main, Criterion};
use repsim_baselines::ranking::SimilarityAlgorithm;
use repsim_baselines::{SimRank, SimRankMc};
use repsim_bench::{citations_small_dblp, citations_tiny_dblp, movies_tiny};
use repsim_metawalk::commuting::{informative_commuting, CommutingCache};
use repsim_metawalk::{walk, MetaWalk};
use std::hint::black_box;

fn bench_simrank_variants(c: &mut Criterion) {
    let g = movies_tiny();
    let film = g.labels().get("film").expect("movies");
    let q = g.nodes_of_label(film)[0];
    let mut group = c.benchmark_group("ablation/simrank");
    group.sample_size(10);
    group.bench_function("exact-end-to-end", |b| {
        b.iter(|| {
            let mut sr = SimRank::new(&g);
            black_box(sr.rank(q, film, 10))
        })
    });
    group.bench_function("exact-4-threads", |b| {
        b.iter(|| {
            let mut sr = SimRank::with_threads(&g, 4);
            black_box(sr.rank(q, film, 10))
        })
    });
    group.bench_function("mc-end-to-end", |b| {
        b.iter(|| {
            let mut sr = SimRankMc::new(&g, 7);
            black_box(sr.rank(q, film, 10))
        })
    });
    group.finish();
}

fn bench_query_engine(c: &mut Criterion) {
    use repsim_core::{QueryEngine, RPathSim};
    let g = citations_tiny_dblp();
    let paper = g.labels().get("paper").expect("papers");
    let q = g.nodes_of_label(paper)[0];
    let half = MetaWalk::parse_in(&g, "paper cite paper cite paper").expect("parseable");
    let mut group = c.benchmark_group("ablation/query-engine");
    group.bench_function("full-closure-matrix", |b| {
        b.iter(|| {
            let mut rps = RPathSim::new(&g, half.symmetric_closure());
            black_box(rps.rank(q, paper, 10))
        })
    });
    group.bench_function("half-matrix-engine", |b| {
        b.iter(|| {
            let mut eng = QueryEngine::new(&g, half.clone());
            black_box(eng.rank(q, paper, 10))
        })
    });
    group.finish();
}

fn bench_cache_vs_recompute(c: &mut Criterion) {
    let g = citations_tiny_dblp();
    let mw = MetaWalk::parse_in(&g, "paper cite paper cite paper").expect("parseable");
    let mut group = c.benchmark_group("ablation/commuting-cache");
    group.bench_function("recompute-per-query", |b| {
        b.iter(|| black_box(informative_commuting(&g, &mw)))
    });
    group.bench_function("cached-re-query", |b| {
        let mut cache = CommutingCache::new();
        let _ = cache.informative(&g, &mw);
        b.iter(|| black_box(cache.informative(&g, &mw).nnz()))
    });
    group.finish();
}

fn bench_matrix_vs_enumeration(c: &mut Criterion) {
    let g = citations_tiny_dblp();
    let mw = MetaWalk::parse_in(&g, "paper cite paper cite paper").expect("parseable");
    let mut group = c.benchmark_group("ablation/counting");
    group.sample_size(10);
    group.bench_function("matrix", |b| {
        b.iter(|| black_box(informative_commuting(&g, &mw)))
    });
    group.bench_function("enumeration", |b| {
        b.iter(|| {
            let total: usize = walk::instances(&g, &mw)
                .iter()
                .filter(|w| w.is_informative(&g))
                .count();
            black_box(total)
        })
    });
    group.finish();
}

fn bench_incremental_maintenance(c: &mut Criterion) {
    use repsim_graph::GraphBuilder;
    use repsim_metawalk::incremental::IncrementalCommuting;

    let g = citations_small_dblp();
    let mw = MetaWalk::parse_in(&g, "paper cite paper cite paper").expect("parseable");
    let paper = g.labels().get("paper").expect("papers");
    let cite = g.labels().get("cite").expect("cites");
    // One extra paper-cite edge as the update under measurement.
    let g2 = {
        let mut b = GraphBuilder::from_graph(&g);
        let p = g.nodes_of_label(paper)[0];
        let target = g
            .nodes_of_label(cite)
            .iter()
            .copied()
            .find(|&c| !g.has_edge(p, c))
            .expect("some non-adjacent cite node");
        b.edge(p, target).expect("fresh");
        b.build()
    };
    let mut group = c.benchmark_group("ablation/incremental");
    group.sample_size(20);
    group.bench_function("recompute-after-edge", |b| {
        b.iter(|| black_box(informative_commuting(&g2, &mw)))
    });
    group.bench_function("delta-propagate-edge", |b| {
        b.iter_batched(
            || IncrementalCommuting::new(&g, mw.clone()),
            |mut inc| {
                inc.apply_edge_change(&g2, paper, cite);
                black_box(inc.matrix().nnz())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simrank_variants,
    bench_query_engine,
    bench_incremental_maintenance,
    bench_cache_vs_recompute,
    bench_matrix_vs_enumeration
);
criterion_main!(benches);
