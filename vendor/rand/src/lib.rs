//! Offline stand-in for the `rand` crate.
//!
//! The build container for this repository has no network access, so the
//! real `rand` cannot be fetched from crates.io. This crate implements the
//! small slice of the rand 0.9 API the workspace actually uses — seeded
//! `StdRng`, `random`/`random_range`/`random_bool`, and slice shuffling —
//! on top of xoshiro256++ seeded with SplitMix64. It is wired in via a
//! path dependency in the workspace manifest.
//!
//! Determinism is the only contract the workspace relies on (every
//! generator is seeded and tests assert *statistical* properties, never
//! exact streams), so matching the upstream ChaCha12 byte stream is not
//! required.

/// Concrete random number generators.
pub mod rngs {
    /// A deterministic, seedable generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start at the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        StdRng { s }
    }
}

/// Types producible by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64_raw() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64_raw() as u128) << 64) | rng.next_u64_raw() as u128
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64_raw() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64_raw() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Debiased multiply-shift would be overkill for the spans
                // used here (all far below 2^32); modulo bias is < 2^-32.
                self.start + (rng.next_u64_raw() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64_raw() as $t;
                }
                lo + (rng.next_u64_raw() % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = Standard::from_rng(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// One raw 64-bit draw; the basis for every other method.
    fn next_u64_raw(&mut self) -> u64;

    /// A uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit: f64 = self.random();
        unit < p
    }
}

impl Rng for StdRng {
    fn next_u64_raw(&mut self) -> u64 {
        self.next_u64()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64_raw(&mut self) -> u64 {
        (**self).next_u64_raw()
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64_raw() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.random_range(0.5..2.5);
            assert!((0.5..2.5).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
