//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use crate::TestRng;

/// Acceptable size specifications for [`vec`].
pub trait IntoSizeRange {
    /// The inclusive-lo, exclusive-hi bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

/// A strategy producing `Vec`s of values drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

/// `vec(element, sizes)`: vectors with length drawn from `sizes`.
pub fn vec<S: Strategy>(element: S, sizes: impl IntoSizeRange) -> VecStrategy<S> {
    let (lo, hi) = sizes.bounds();
    assert!(lo < hi, "empty size range");
    VecStrategy { element, lo, hi }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.below(self.lo, self.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
