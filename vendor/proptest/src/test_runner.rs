//! Test-case outcomes (subset of `proptest::test_runner`).

use std::fmt;

/// Why a test case failed.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Upstream-compatible alias of [`TestCaseError::fail`].
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The result type of a property-test body.
pub type TestCaseResult = Result<(), TestCaseError>;
