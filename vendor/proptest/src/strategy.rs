//! Value-generation strategies (subset of `proptest::strategy`).

use crate::TestRng;

/// A generator of random values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among type-erased strategies.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds the union; `choices` must be non-empty.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Union(choices)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(0, self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Regex-subset string strategies: a `&str` *is* a strategy producing
/// matching `String`s, as in upstream proptest.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
