//! Generation of strings matching a small regex subset.
//!
//! Supported syntax (the subset the workspace's fuzz tests use):
//! literal characters, `\w` (word character), `\PC` (any non-control
//! character), `[a-z0-9_]` character classes, `(a|b|c)` alternation
//! groups, and the postfix repetitions `{m,n}`, `{n}`, `?`, `*`, `+`
//! (`*`/`+` capped at 8 repeats).

use crate::TestRng;

#[derive(Clone, Debug)]
enum Atom {
    /// A literal character.
    Lit(char),
    /// A set of candidate characters (from `\w`, `\PC`, or `[...]`).
    Class(Vec<char>),
    /// `(alt|alt|alt)`.
    Group(Vec<Vec<Node>>),
}

#[derive(Clone, Debug)]
struct Node {
    atom: Atom,
    /// Inclusive repetition bounds.
    min: usize,
    max: usize,
}

fn word_chars() -> Vec<char> {
    let mut v: Vec<char> = Vec::new();
    v.extend('a'..='z');
    v.extend('A'..='Z');
    v.extend('0'..='9');
    v.push('_');
    v
}

fn printable_chars() -> Vec<char> {
    // `\PC`: anything outside the Unicode "control" category. Printable
    // ASCII plus a couple of multibyte characters keeps the fuzz surface
    // honest without needing Unicode tables.
    let mut v: Vec<char> = (' '..='~').collect();
    v.extend(['é', 'λ', '→', '中']);
    v
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            chars: pattern.chars().collect(),
            pos: 0,
            pattern,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn fail(&self, what: &str) -> ! {
        panic!(
            "unsupported regex {:?} at position {}: {what}",
            self.pattern, self.pos
        );
    }

    /// Parses a sequence of atoms until end or a stop character (`|`, `)`).
    fn sequence(&mut self) -> Vec<Node> {
        let mut out = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.atom();
            let (min, max) = self.repetition();
            out.push(Node { atom, min, max });
        }
        out
    }

    fn atom(&mut self) -> Atom {
        match self.next().expect("sequence checked peek") {
            '\\' => match self.next() {
                Some('w') => Atom::Class(word_chars()),
                Some('P') => {
                    // Only `\PC` (non-control) is supported.
                    match self.next() {
                        Some('C') => Atom::Class(printable_chars()),
                        _ => self.fail("only \\PC is supported after \\P"),
                    }
                }
                Some('d') => Atom::Class(('0'..='9').collect()),
                Some(
                    c @ ('.' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '?' | '*' | '+' | '\\'),
                ) => Atom::Lit(c),
                _ => self.fail("unsupported escape"),
            },
            '[' => {
                let mut set = Vec::new();
                loop {
                    match self.next() {
                        None => self.fail("unterminated class"),
                        Some(']') => break,
                        Some(lo) => {
                            if self.peek() == Some('-')
                                && self.chars.get(self.pos + 1).copied() != Some(']')
                            {
                                self.next();
                                let hi = self.next().unwrap_or_else(|| self.fail("bad range"));
                                set.extend(lo..=hi);
                            } else {
                                set.push(lo);
                            }
                        }
                    }
                }
                if set.is_empty() {
                    self.fail("empty class");
                }
                Atom::Class(set)
            }
            '(' => {
                let mut alts = vec![self.sequence()];
                while self.peek() == Some('|') {
                    self.next();
                    alts.push(self.sequence());
                }
                match self.next() {
                    Some(')') => Atom::Group(alts),
                    _ => self.fail("unterminated group"),
                }
            }
            '.' => Atom::Class(printable_chars()),
            c => Atom::Lit(c),
        }
    }

    /// Parses an optional `{m,n}` / `{n}` / `?` / `*` / `+` suffix.
    fn repetition(&mut self) -> (usize, usize) {
        match self.peek() {
            Some('{') => {
                self.next();
                let mut lo = String::new();
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    lo.push(self.next().expect("digit"));
                }
                let min: usize = lo.parse().unwrap_or_else(|_| self.fail("bad bound"));
                let max = if self.peek() == Some(',') {
                    self.next();
                    let mut hi = String::new();
                    while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        hi.push(self.next().expect("digit"));
                    }
                    hi.parse().unwrap_or_else(|_| self.fail("bad bound"))
                } else {
                    min
                };
                match self.next() {
                    Some('}') => (min, max),
                    _ => self.fail("unterminated repetition"),
                }
            }
            Some('?') => {
                self.next();
                (0, 1)
            }
            Some('*') => {
                self.next();
                (0, 8)
            }
            Some('+') => {
                self.next();
                (1, 8)
            }
            _ => (1, 1),
        }
    }
}

fn emit(nodes: &[Node], rng: &mut TestRng, out: &mut String) {
    for node in nodes {
        let count = rng.below(node.min, node.max + 1);
        for _ in 0..count {
            match &node.atom {
                Atom::Lit(c) => out.push(*c),
                Atom::Class(set) => out.push(set[rng.below(0, set.len())]),
                Atom::Group(alts) => {
                    let alt = &alts[rng.below(0, alts.len())];
                    emit(alt, rng, out);
                }
            }
        }
    }
}

/// Generates one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser::new(pattern);
    let nodes = parser.sequence();
    if parser.pos != parser.chars.len() {
        parser.fail("trailing characters (unsupported syntax?)");
    }
    let mut out = String::new();
    emit(&nodes, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string-tests", 0)
    }

    #[test]
    fn literals_and_classes() {
        let mut r = rng();
        assert_eq!(
            generate_matching("label a entity", &mut r),
            "label a entity"
        );
        for _ in 0..50 {
            let s = generate_matching("v[0-9]{1,3}", &mut r);
            assert!(s.starts_with('v') && (2..=4).contains(&s.len()), "{s:?}");
            assert!(s[1..].chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn groups_and_optionals() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate_matching("x(a|bb)?", &mut r);
            assert!(["x", "xa", "xbb"].contains(&s.as_str()), "{s:?}");
        }
    }

    #[test]
    fn word_and_printable() {
        let mut r = rng();
        for _ in 0..50 {
            let w = generate_matching("\\w{1,8}", &mut r);
            assert!((1..=8).contains(&w.chars().count()), "{w:?}");
            let p = generate_matching("\\PC{0,40}", &mut r);
            assert!(p.chars().count() <= 40);
            assert!(p.chars().all(|c| !c.is_control()), "{p:?}");
        }
    }
}
