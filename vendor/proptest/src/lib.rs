//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the real `proptest`
//! cannot be fetched. This crate implements the subset of the v1 API used
//! by the workspace's property tests: the [`proptest!`] macro, range /
//! tuple / `Just` / collection / regex-string strategies, `prop_map`,
//! `prop_oneof!`, and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * no shrinking — a failing case reports its inputs and panics;
//! * generation is seeded per test from the test body's case index, so
//!   runs are deterministic;
//! * regex strategies support the subset actually used in this repo:
//!   literals, `\w`, `\PC`, `[a-z0-9]` classes, `(a|b)` groups, and the
//!   `{m,n}` / `?` repetitions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod strategy;
pub mod test_runner;

pub mod collection;
pub mod string;

/// Mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::string;
    }
}

/// Per-test configuration (subset: case count only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// A deterministic RNG for one test case.
    pub fn deterministic(test_name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
        ))
    }

    /// A uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.0.random()
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        if lo >= hi {
            return lo;
        }
        self.0.random_range(lo..hi)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.0.random()
    }
}

/// Runs the proptest-style test body for `cases` cases.
///
/// `gen` produces the inputs (already debug-rendered for reporting) and
/// `run` executes the body. Used by the [`proptest!`] expansion; not part
/// of the public proptest API.
pub fn run_cases<I>(
    test_name: &str,
    config: &ProptestConfig,
    mut gen: impl FnMut(&mut TestRng) -> I,
    mut run: impl FnMut(&I) -> test_runner::TestCaseResult,
    render: impl Fn(&I) -> String,
) {
    for case in 0..config.cases as u64 {
        let mut rng = TestRng::deterministic(test_name, case);
        let input = gen(&mut rng);
        if let Err(e) = run(&input) {
            panic!(
                "proptest case {case}/{} failed: {e}\ninputs: {}",
                config.cases,
                render(&input)
            );
        }
    }
}

/// The macro that declares property tests (subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    stringify!($name),
                    &config,
                    |rng| ($( $crate::strategy::Strategy::generate(&($strat), rng) ),+ ,),
                    |input| {
                        let ($(ref $arg),+ ,) = *input;
                        $(let $arg = ::std::clone::Clone::clone($arg);)+
                        (|| -> $crate::test_runner::TestCaseResult {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })()
                    },
                    |input| format!("{:#?}", input),
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` with an optional trailing message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {:?} == {:?}: {}",
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert_ne!(a, b)` with an optional trailing message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {:?} != {:?}: {}",
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

/// Uniform choice among heterogeneous strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps(x in 1u8..5, n in 2usize..7, v in prop::collection::vec(0u8..4, 1..6)) {
            prop_assert!((1..5).contains(&x));
            prop_assert!((2..7).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn tuples_and_oneof(
            t in (0u8..3, 1usize..4),
            s in prop_oneof![Just("a".to_owned()), "b{1,3}", Just("c".to_owned())],
        ) {
            prop_assert!(t.0 < 3 && (1..4).contains(&t.1));
            prop_assert!(s == "a" || s == "c" || s.chars().all(|c| c == 'b'));
        }

        #[test]
        fn regexes(id in "[0-9]{1,3}", word in "\\w{1,8}", printable in "\\PC{0,20}") {
            prop_assert!((1..=3).contains(&id.len()));
            prop_assert!(id.chars().all(|c| c.is_ascii_digit()));
            prop_assert!((1..=8).contains(&word.len()));
            // Chars, not bytes: \PC includes multi-byte printables.
            prop_assert!(printable.chars().count() <= 20);
            prop_assert!(printable.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0u8..4) {
                prop_assert!(x < 2, "boom at {}", x);
            }
        }
        inner();
    }
}
