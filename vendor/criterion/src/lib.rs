//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the real `criterion`
//! cannot be fetched. This crate implements the subset of the 0.5 API the
//! workspace's benches use — `criterion_group!`/`criterion_main!`,
//! benchmark groups, `bench_function`/`bench_with_input`, `Bencher::iter`
//! and `iter_batched`, `BenchmarkId`, and `sample_size` — with a simple
//! measure-and-print harness: each benchmark is warmed up, timed over
//! `sample_size` samples, and reported as mean ns/iter on stdout.
//!
//! There is no statistical analysis, HTML report, or `--save-baseline`;
//! the harness exists so `cargo bench` compiles and produces comparable
//! wall-clock numbers in this offline environment.

use std::fmt;
use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted, not interpreted).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id that is just a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Conversions into a printable benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean duration of one iteration, filled by `iter*`.
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, reporting the mean over the sample budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warm-up to fault in caches/allocations.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }

    /// Times `routine` over inputs built by `setup` (setup time excluded).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = total / self.samples as u32;
    }
}

fn run_one(full_name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: samples.max(1),
        mean: Duration::ZERO,
    };
    f(&mut b);
    println!(
        "bench: {full_name:<60} {:>12.1} ns/iter ({} samples)",
        b.mean.as_nanos() as f64,
        samples.max(1)
    );
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benches a closure.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_name());
        run_one(&full, self.sample_size, f);
        self
    }

    /// Benches a closure over one explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_name());
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in this harness).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benches a closure outside any group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into_name(), 10, f);
        self
    }
}

/// Declares a group runner function, as in criterion 0.5.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); this
            // simple harness runs everything unconditionally.
            $($group();)+
        }
    };
}

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;
