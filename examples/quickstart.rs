//! Quickstart: build a small movie database, ask for similar films, and
//! see why counting only informative walks matters.
//!
//! Run with `cargo run --example quickstart`.

// Examples favor brevity over error plumbing, so the workspace
// panic-freedom lints are relaxed for this file.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use repsim::prelude::*;

fn main() {
    // 1. Build a database: labels first, then entities and edges.
    let mut b = GraphBuilder::new();
    let film = b.entity_label("film");
    let actor = b.entity_label("actor");
    let genre = b.entity_label("genre");

    let matrix = b.entity(film, "The Matrix");
    let john_wick = b.entity(film, "John Wick");
    let speed = b.entity(film, "Speed");
    let inception = b.entity(film, "Inception");

    let keanu = b.entity(actor, "Keanu Reeves");
    let bullock = b.entity(actor, "Sandra Bullock");
    let dicaprio = b.entity(actor, "Leonardo DiCaprio");

    let scifi = b.entity(genre, "sci-fi");
    let action = b.entity(genre, "action");

    for (f, a) in [
        (matrix, keanu),
        (john_wick, keanu),
        (speed, keanu),
        (speed, bullock),
        (inception, dicaprio),
    ] {
        b.edge(f, a).expect("fresh edge");
    }
    for (f, g) in [
        (matrix, scifi),
        (matrix, action),
        (john_wick, action),
        (speed, action),
        (inception, scifi),
        (inception, action),
    ] {
        b.edge(f, g).expect("fresh edge");
    }
    let g = b.build();
    println!("database: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // 2. Similarity over an explicit relationship: films sharing actors.
    let by_actor = MetaWalk::parse_in(&g, "film actor film").expect("labels exist");
    let mut rps = RPathSim::new(&g, by_actor);
    println!("\nfilms similar to The Matrix by shared actors:");
    for &(n, score) in rps.rank(matrix, film, 5).entries() {
        println!("  {:<12} {score:.3}", g.value_of(n).expect("entity"));
    }

    // 3. Aggregate over several relationships when the user has no
    //    meta-walk in mind.
    let walks = vec![
        MetaWalk::parse_in(&g, "film actor film").expect("parseable"),
        MetaWalk::parse_in(&g, "film genre film").expect("parseable"),
    ];
    let mut agg = AggregatedScorer::new(&g, CountingMode::Informative, walks);
    println!("\nfilms similar to The Matrix, aggregated over actors + genres:");
    for &(n, score) in agg.rank(matrix, film, 5).entries() {
        println!("  {:<12} {score:.3}", g.value_of(n).expect("entity"));
    }

    // 4. Explain an answer: which walks witness the similarity?
    let by_actor = MetaWalk::parse_in(&g, "film actor film").expect("labels exist");
    println!("\nwhy is John Wick similar to The Matrix?");
    for ev in repsim::core::explain::explain(&g, &by_actor, matrix, john_wick, 5) {
        println!("  {}", ev.rendered);
    }

    // 5. Compare with a random-walk baseline.
    let mut rwr = Rwr::new(&g);
    println!("\nRWR's answers for the same query:");
    for &(n, score) in rwr.rank(matrix, film, 5).entries() {
        println!("  {:<12} {score:.4}", g.value_of(n).expect("entity"));
    }
    println!(
        "\nUnlike RWR, the R-PathSim scores above would come out identical if\n\
         this database were restructured (say, actors grouped under cast\n\
         nodes) — that is the representation-independence property; run the\n\
         `representation_independence` example to see it checked."
    );
}
