//! Movie similarity across three real-world representations of the same
//! catalog: IMDb triangles, Freebase starring nodes, and Niagara cast
//! groupings (Figures 1–2).
//!
//! Run with `cargo run --example movie_similarity`.

// Examples favor brevity over error plumbing, so the workspace
// panic-freedom lints are relaxed for this file.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use repsim::datasets::movies::{self, MoviesConfig};
use repsim::prelude::*;

fn show_top(
    title: &str,
    g: &Graph,
    alg: &mut dyn SimilarityAlgorithm,
    query: NodeId,
    label: LabelId,
) {
    println!("{title}");
    for &(n, score) in alg.rank(query, label, 3).entries() {
        println!("    {:<12} {score:.4}", g.value_of(n).expect("entity"));
    }
}

fn main() {
    let cfg = MoviesConfig::tiny();
    let imdb = movies::imdb_no_chars(&cfg);
    let niagara = catalog::imdb2ng().apply(&imdb).expect("applies");
    let freebase = catalog::imdb2fb_no_chars().apply(&imdb).expect("applies");
    let map_ng = EntityMap::between(&imdb, &niagara);
    let map_fb = EntityMap::between(&imdb, &freebase);

    println!(
        "IMDb:     {:>4} nodes / {:>4} edges\nFreebase: {:>4} nodes / {:>4} edges\nNiagara:  {:>4} nodes / {:>4} edges\n",
        imdb.num_nodes(), imdb.num_edges(),
        freebase.num_nodes(), freebase.num_edges(),
        niagara.num_nodes(), niagara.num_edges(),
    );

    let film = imdb.labels().get("film").expect("films");
    let film_ng = niagara.labels().get("film").expect("films");
    let film_fb = freebase.labels().get("film").expect("films");
    let query = imdb.entity_by_name("film", "film00000").expect("generated");
    let q_ng = map_ng.map(query).expect("bijection");
    let q_fb = map_fb.map(query).expect("bijection");
    println!("query: which films are most similar to film00000?\n");

    println!("— RWR (restart 0.8): the answers depend on the representation —");
    show_top("  IMDb:", &imdb, &mut Rwr::new(&imdb), query, film);
    show_top(
        "  Freebase:",
        &freebase,
        &mut Rwr::new(&freebase),
        q_fb,
        film_fb,
    );
    show_top(
        "  Niagara:",
        &niagara,
        &mut Rwr::new(&niagara),
        q_ng,
        film_ng,
    );

    println!("\n— R-PathSim over \"films sharing actors\": identical everywhere —");
    let mw_imdb = MetaWalk::parse_in(&imdb, "film actor film").expect("parseable");
    let mw_fb =
        MetaWalk::parse_in(&freebase, "film starring actor starring film").expect("parseable");
    let mw_ng = MetaWalk::parse_in(&niagara, "film cast actor cast film").expect("parseable");
    show_top(
        "  IMDb:",
        &imdb,
        &mut RPathSim::new(&imdb, mw_imdb),
        query,
        film,
    );
    show_top(
        "  Freebase:",
        &freebase,
        &mut RPathSim::new(&freebase, mw_fb),
        q_fb,
        film_fb,
    );
    show_top(
        "  Niagara:",
        &niagara,
        &mut RPathSim::new(&niagara, mw_ng),
        q_ng,
        film_ng,
    );

    println!(
        "\nThe three R-PathSim lists agree entity-for-entity and score-for-score\n\
         (Theorem 4.3); the RWR lists usually do not. Table 1's numbers\n\
         quantify this over 100-query workloads: `cargo run --release -p\n\
         repsim-repro --bin table1`."
    );
}
