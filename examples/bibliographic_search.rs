//! Conference similarity search on the MAS-shaped bibliographic database:
//! \*-labels, FD discovery, and Algorithm 1's automatic meta-walk sets
//! (§5.2, §6.2).
//!
//! Run with `cargo run --example bibliographic_search`.

// Examples favor brevity over error plumbing, so the workspace
// panic-freedom lints are relaxed for this file.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use repsim::datasets::mas::{self, MasConfig};
use repsim::prelude::*;

fn main() {
    let (g, truth) = mas::mas(&MasConfig::tiny());
    println!(
        "MAS database: {} nodes, {} edges, {} conferences in {} domains\n",
        g.num_nodes(),
        g.num_edges(),
        truth.conf_values().count(),
        truth.num_domains(),
    );

    // 1. Discover the functional dependencies from the instance.
    let fds = FdSet::discover(&g, 3);
    println!("discovered FDs:");
    for fd in fds.fds() {
        println!(
            "  {} → {}   via ({})",
            g.labels().name(fd.lhs()),
            g.labels().name(fd.rhs()),
            fd.via().display(g.labels())
        );
    }
    for chain in fds.chains() {
        let names: Vec<&str> = chain.labels.iter().map(|&l| g.labels().name(l)).collect();
        println!("  maximal chain: {}", names.join(" ≺ "));
    }

    // 2. Algorithm 1: the meta-walk set for conference queries.
    let conf = g.labels().get("conf").expect("conf label");
    let set = find_meta_walk_set(&g, &fds, conf, 4);
    println!("\nAlgorithm 1's meta-walk set for `conf` queries:");
    for mw in &set {
        println!("  {}", mw.display(g.labels()));
    }

    // 3. Search: similar conferences to conf000, three ways.
    let query = g.entity_by_name("conf", "conf000").expect("generated");
    let show = |name: &str, list: &RankedList| {
        println!("\n{name}");
        for &(n, score) in list.entries().iter().take(5) {
            let v = g.value_of(n).expect("entity");
            let rel = match truth.relevance("conf000", v) {
                2 => "similar",
                1 => "quite-similar",
                _ => "least-similar",
            };
            println!("    {v:<10} {score:.3}  [{rel}]");
        }
    };

    let kw_walk = MetaWalk::parse_in(&g, "conf *paper dom kw dom *paper conf").expect("parseable");
    let mut by_keywords = RPathSim::new(&g, kw_walk);
    show(
        "by domain keywords (R-PathSim, *-labels):",
        &by_keywords.rank(query, conf, 5),
    );

    let cite_walk = MetaWalk::parse_in(&g, "conf paper citation paper conf").expect("parseable");
    let mut by_citations = RPathSim::new(&g, cite_walk);
    show(
        "by direct citations (R-PathSim):",
        &by_citations.rank(query, conf, 5),
    );

    let mut aggregated = AggregatedScorer::new(&g, CountingMode::Informative, set);
    show(
        "aggregated over Algorithm 1's set:",
        &aggregated.rank(query, conf, 5),
    );

    println!(
        "\nThe bracketed ground-truth levels come from the generator's domain\n\
         structure — §6.2 scores these lists with nDCG; run `cargo run\n\
         --release -p repsim-repro --bin effectiveness` for the full table."
    );
}
