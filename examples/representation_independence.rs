//! An executable Definition 2: which algorithms survive which
//! transformations, checked query by query.
//!
//! Run with `cargo run --example representation_independence`.

// Examples favor brevity over error plumbing, so the workspace
// panic-freedom lints are relaxed for this file.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use repsim::core::independence::check_workload;
use repsim::datasets::citations::{self, CitationConfig};
use repsim::datasets::courses::{self, CourseConfig};
use repsim::eval::spec::AlgorithmSpec;
use repsim::eval::workload::Workload;
use repsim::prelude::*;

/// Fraction of queries whose top-10 answers coincide across the
/// transformation (1.0 = representation independent on this workload).
fn agreement(
    g: &Graph,
    tg: &Graph,
    map: &EntityMap,
    spec_d: &AlgorithmSpec,
    spec_t: &AlgorithmSpec,
    label: &str,
    n: usize,
) -> f64 {
    let l = g.labels().get(label).expect("label exists");
    let queries = Workload::Random { seed: 41 }.queries(g, l, n);
    let mut a = spec_d.build(g);
    let mut b = spec_t.build(tg);
    let verdicts = check_workload(g, tg, &|x| map.map(x), a.as_mut(), b.as_mut(), &queries, 10);
    verdicts.iter().filter(|v| v.is_independent()).count() as f64 / verdicts.len() as f64
}

fn main() {
    println!("Definition 2, measured: fraction of queries with identical top-10");
    println!("answers across the transformation (1.00 = independent).\n");

    // Relationship reorganizing: DBLP ↔ SNAP.
    let dblp = citations::dblp(&CitationConfig::tiny());
    let (snap, map) = apply_with_map(&*catalog::dblp2snap(), &dblp).expect("applies");
    println!("DBLP2SNAP (relationship reorganizing), 20 paper queries:");
    let rows: Vec<(&str, AlgorithmSpec, AlgorithmSpec)> = vec![
        ("RWR", AlgorithmSpec::Rwr, AlgorithmSpec::Rwr),
        ("SimRank", AlgorithmSpec::SimRank, AlgorithmSpec::SimRank),
        ("Katz", AlgorithmSpec::Katz, AlgorithmSpec::Katz),
        (
            "CommonNbrs",
            AlgorithmSpec::CommonNeighbors,
            AlgorithmSpec::CommonNeighbors,
        ),
        (
            "PathSim",
            AlgorithmSpec::PathSim {
                meta_walk: "paper cite paper cite paper".into(),
            },
            AlgorithmSpec::PathSim {
                meta_walk: "paper paper paper".into(),
            },
        ),
        (
            "R-PathSim",
            AlgorithmSpec::RPathSim {
                meta_walk: "paper cite paper cite paper".into(),
            },
            AlgorithmSpec::RPathSim {
                meta_walk: "paper paper paper".into(),
            },
        ),
    ];
    for (name, d, t) in &rows {
        let frac = agreement(&dblp, &snap, &map, d, t, "paper", 20);
        println!("  {name:<11} {frac:.2}");
    }

    // Entity rearranging: WSU ↔ Alchemy.
    let wsu = courses::wsu(&CourseConfig::paper_scale());
    let (alch, map) = apply_with_map(&*catalog::wsu2alch(), &wsu).expect("FDs hold");
    println!("\nWSU2ALCH (entity rearranging), 20 course queries:");
    let rows: Vec<(&str, AlgorithmSpec, AlgorithmSpec)> = vec![
        ("RWR", AlgorithmSpec::Rwr, AlgorithmSpec::Rwr),
        ("SimRank", AlgorithmSpec::SimRank, AlgorithmSpec::SimRank),
        (
            "PathSim",
            AlgorithmSpec::PathSim {
                meta_walk: "course offer subject offer course".into(),
            },
            AlgorithmSpec::PathSim {
                meta_walk: "course subject course".into(),
            },
        ),
        (
            "R-PathSim",
            AlgorithmSpec::RPathSim {
                meta_walk: "course *offer subject *offer course".into(),
            },
            AlgorithmSpec::RPathSim {
                meta_walk: "course subject course".into(),
            },
        ),
    ];
    for (name, d, t) in &rows {
        let frac = agreement(&wsu, &alch, &map, d, t, "course", 20);
        println!("  {name:<11} {frac:.2}");
    }

    println!(
        "\nR-PathSim's 1.00 rows are Theorems 4.3 and 5.2; every other row is\n\
         the instability the paper's Tables 1-4 quantify with Kendall's tau."
    );
}
